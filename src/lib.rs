//! # aimes-repro — facade over the AIMES reproduction workspace
//!
//! A Rust reproduction of *"Integrating Abstractions to Enhance the
//! Execution of Distributed Applications"* (Turilli et al., IPDPS 2016).
//! This crate re-exports the whole workspace under one name so the
//! examples and integration tests can depend on a single crate; library
//! users normally depend on the individual crates instead.
//!
//! Layer map (bottom-up):
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`sim`] | `aimes-sim` | deterministic discrete-event engine |
//! | [`workload`] | `aimes-workload` | distributions + background load |
//! | [`cluster`] | `aimes-cluster` | batch-system simulator (FCFS/EASY) |
//! | [`saga`] | `aimes-saga` | interoperability job API + adaptors |
//! | [`skeleton`] | `aimes-skeleton` | application skeletons |
//! | [`bundle`] | `aimes-bundle` | resource bundles (query/monitor/predict) |
//! | [`fault`] | `aimes-fault` | deterministic fault injection + recovery policies |
//! | [`pilot`] | `aimes-pilot` | pilot system (managers, binding, agents) |
//! | [`strategy`] | `aimes-strategy` | execution strategies + derivation |
//! | [`middleware`] | `aimes` | integrated middleware + experiment lab |
//! | [`analytics`] | `aimes-analytics` | post-mortem session analytics |

pub use aimes as middleware;
pub use aimes_analytics as analytics;
pub use aimes_bundle as bundle;
pub use aimes_cluster as cluster;
pub use aimes_fault as fault;
pub use aimes_pilot as pilot;
pub use aimes_saga as saga;
pub use aimes_sim as sim;
pub use aimes_skeleton as skeleton;
pub use aimes_strategy as strategy;
pub use aimes_workload as workload;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // One symbol per layer: compile-time check that the facade covers
        // the whole stack.
        let _ = crate::sim::SimTime::ZERO;
        let _ = crate::workload::Distribution::Constant { value: 1.0 };
        let _ = crate::cluster::ClusterConfig::test("x", 1);
        let _ = crate::saga::SagaJobState::New;
        let _ = crate::skeleton::paper_task_counts();
        let _ = crate::bundle::QueryMode::OnDemand;
        let _ = crate::pilot::PilotState::New;
        let _ = crate::strategy::ExecutionStrategy::paper_early();
        let _ = crate::middleware::RunOptions::default();
        let _ = crate::fault::FaultSpec::none();
        let _ = crate::analytics::DEFAULT_EPSILON_SECS;
    }
}
