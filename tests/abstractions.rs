//! Cross-abstraction integration: consistency between what one layer
//! promises and what the next layer observes.

use aimes_repro::bundle::{Bundle, QueryMode};
use aimes_repro::cluster::{Cluster, ClusterConfig, JobRequest};
use aimes_repro::middleware::paper;
use aimes_repro::middleware::ttc::interval_union;
use aimes_repro::sim::{SimDuration, SimTime, Simulation, Tracer};
use aimes_repro::skeleton::{paper_bag, SkeletonApp, TaskDurationSpec};
use aimes_repro::strategy::{AppInfo, ExecutionManager, ExecutionStrategy};

#[test]
fn app_info_matches_generated_application() {
    let cfg = paper_bag(128, TaskDurationSpec::Gaussian);
    let app = SkeletonApp::generate(&cfg, &mut aimes_repro::sim::SimRng::new(5)).unwrap();
    let info = AppInfo::from_skeleton(&app);
    assert_eq!(info.n_tasks, 128);
    assert_eq!(info.max_concurrent_cores, 128);
    // The info's mean must equal the actual sample mean.
    let sample_mean = app.total_work().as_secs() / app.tasks().len() as f64;
    assert!((info.mean_task_duration.as_secs() - sample_mean).abs() < 1e-9);
    // The max is one of the sampled durations.
    assert!(app
        .tasks()
        .iter()
        .any(|t| t.duration == info.max_task_duration));
}

#[test]
fn plan_pilot_sizes_cover_the_application() {
    let cfg = paper_bag(100, TaskDurationSpec::Uniform15Min);
    let app = SkeletonApp::generate(&cfg, &mut aimes_repro::sim::SimRng::new(5)).unwrap();
    let mut bundle = Bundle::new();
    for c in paper::testbed() {
        bundle.add(Cluster::new(c));
    }
    let em = ExecutionManager::default();
    for strategy in [
        ExecutionStrategy::paper_early(),
        ExecutionStrategy::paper_late(3),
    ] {
        let plan = em
            .derive_plan(SimTime::ZERO, &app, &mut bundle, &strategy)
            .unwrap();
        let total_cores: u32 = plan.pilots.iter().map(|p| p.cores).sum();
        assert!(
            total_cores >= 100,
            "{}: pilots must jointly cover the bag",
            strategy.label()
        );
        // Walltime covers at least one full wave of the longest task.
        for p in &plan.pilots {
            assert!(p.walltime >= SimDuration::from_mins(15.0));
        }
    }
}

#[test]
fn bundle_on_demand_estimate_matches_realized_wait_in_a_static_queue() {
    // With background load absent and a frozen queue, the conservative
    // replay is exact: the estimate equals the realized start time.
    let mut sim = Simulation::with_tracer(1, Tracer::disabled());
    let cluster = Cluster::new(ClusterConfig::test("static", 64));
    let d = SimDuration::from_secs(1000.0);
    cluster.submit(&mut sim, JobRequest::background(64, d, d));
    cluster.submit(&mut sim, JobRequest::background(64, d, d));
    sim.run_until(sim.now());
    let mut bundle = Bundle::new();
    bundle.add(cluster.clone());
    let est = bundle
        .setup_times(
            sim.now(),
            64,
            SimDuration::from_secs(100.0),
            QueryMode::OnDemand,
        )
        .pop()
        .unwrap()
        .1;
    assert_eq!(est.as_secs(), 2000.0);
    // Now actually submit and measure.
    let job = cluster.submit(
        &mut sim,
        JobRequest::pilot(64, SimDuration::from_secs(100.0), "probe"),
    );
    sim.run_to_completion();
    let realized = cluster.job(job).unwrap().start_time.unwrap();
    assert_eq!(realized.as_secs(), 2000.0);
}

#[test]
fn skeleton_dag_order_is_respected_by_the_pilot_layer() {
    use aimes_repro::pilot::UnitState;
    use aimes_repro::pilot::{Binding, UnitScheduler};
    use aimes_repro::pilot::{PilotDescription, PilotManager, UmConfig, UnitManager};
    use aimes_repro::saga::Session;
    use aimes_repro::skeleton::multistage_workflow;
    use aimes_repro::workload::Distribution;
    use std::rc::Rc;

    let mut sim = Simulation::with_tracer(9, Tracer::disabled());
    let mut session = Session::new();
    session.add_resource(&sim, Cluster::new(ClusterConfig::test("r", 256)));
    let pm = PilotManager::new(Rc::new(session));
    let um = UnitManager::new(
        pm.clone(),
        UmConfig::new(Binding::Late, UnitScheduler::Backfill),
    );
    pm.submit(
        &mut sim,
        vec![PilotDescription::new("r", 32, SimDuration::from_hours(4.0))],
    );
    let cfg = multistage_workflow(
        "wf",
        &[8, 4, 2],
        Distribution::Constant { value: 120.0 },
        1.0,
        0.5,
    );
    let app = SkeletonApp::generate(&cfg, &mut aimes_repro::sim::SimRng::new(3)).unwrap();
    um.submit_units(&mut sim, app.tasks());
    let pm2 = pm.clone();
    um.on_all_done(move |sim| pm2.cancel_all(sim));
    sim.run_to_completion();
    let units = um.units();
    assert!(units.iter().all(|u| u.state == UnitState::Done));
    // Every unit started staging only after all its dependencies were done.
    for u in &units {
        let staged = u.last_time_of(UnitState::StagingInput).unwrap();
        for dep in &u.task.dependencies {
            let dep_done = units[dep.0 as usize].last_time_of(UnitState::Done).unwrap();
            assert!(
                staged >= dep_done,
                "{} staged before {} finished",
                u.id,
                dep
            );
        }
    }
}

#[test]
fn interval_union_is_exposed_for_custom_analyses() {
    let t = SimTime::from_secs;
    let u = interval_union(vec![(t(0.0), t(5.0)), (t(3.0), t(8.0))]);
    assert_eq!(u.as_secs(), 8.0);
}

#[test]
fn estimate_wait_respects_queue_priority_order() {
    use aimes_repro::cluster::QueueConfig;
    // A debug-queue job ahead of a normal job: the estimate for a new
    // default-queue submission must account for both, in priority order.
    let mut cfg = ClusterConfig::test("prio", 8);
    cfg.queues = vec![
        QueueConfig::normal(),
        QueueConfig::debug(SimDuration::from_hours(1.0), 8),
    ];
    let mut sim = Simulation::with_tracer(1, Tracer::disabled());
    let c = Cluster::new(cfg);
    let d = SimDuration::from_secs(100.0);
    c.submit(&mut sim, JobRequest::background(8, d, d)); // running 0..100
    c.submit(&mut sim, JobRequest::background(8, d, d)); // normal, queued
    c.submit(
        &mut sim,
        JobRequest::background(8, d, d).with_queue("debug"), // jumps ahead
    );
    sim.run_until(sim.now());
    // Replay order: running (ends 100), debug (100..200), normal
    // (200..300) → a new 8-core job starts at 300.
    let est = c.estimate_wait(sim.now(), 8, d).unwrap();
    assert_eq!(est.as_secs(), 300.0);
    sim.run_to_completion();
}

#[test]
fn swf_roundtrip_is_available_through_the_facade() {
    use aimes_repro::workload::{from_swf, to_swf, BackgroundWorkload, WorkloadConfig};
    let mut g = BackgroundWorkload::new(
        WorkloadConfig::production_like(),
        64,
        aimes_repro::sim::SimRng::new(4),
    );
    let jobs: Vec<_> = (0..10).map(|_| g.next_job()).collect();
    let text = to_swf(&jobs, "facade-test");
    let back = from_swf(&text).unwrap();
    assert_eq!(back.len(), 10);
}

#[test]
fn discovery_language_tailors_bundles_through_the_facade() {
    use aimes_repro::bundle::Requirement;
    let mut bundle = Bundle::new();
    for cfg in paper::testbed() {
        let mut cfg = cfg;
        cfg.workload = None;
        bundle.add(Cluster::new(cfg));
    }
    let req = Requirement::parse("total_cores >= 6144").unwrap();
    let big = bundle.tailor(SimTime::ZERO, &req);
    assert_eq!(big.resource_names(), vec!["hopper", "stampede"]);
}

#[test]
fn strategy_pruning_agrees_with_estimates() {
    // The pruning rule says late-binding pilots sized for full concurrency
    // waste resources without improving TTC: verify via the estimator
    // that the pruned variant's estimated TTC is no better than the
    // canonical late strategy's.
    use aimes_repro::strategy::{estimate, PilotSizing};
    let app = estimate::AppEstimate {
        n_tasks: 512,
        max_task_duration: SimDuration::from_mins(30.0),
        mean_task_duration: SimDuration::from_mins(15.0),
        total_staging_mb: 513.0,
    };
    let mw = estimate::MiddlewareEstimate::default();
    let canonical = ExecutionStrategy::paper_late(3);
    let mut pruned = canonical.clone();
    pruned.sizing = PilotSizing::TasksTotal;
    let waits = [SimDuration::from_secs(300.0); 3];
    let e_canon = estimate::estimate_ttc(&app, &canonical, &mw, &waits);
    let e_pruned = estimate::estimate_ttc(&app, &pruned, &mw, &waits);
    assert!(e_pruned.ttc_upper() >= e_canon.ttc_upper());
    // ...while demanding 3x the cores:
    assert_eq!(pruned.pilot_cores(512) * 3, 512 * 3);
    assert_eq!(canonical.pilot_cores(512) * 3, 513); // ceil(512/3)*3
}
