//! Profiler passivity: attaching the engine self-profiler must not
//! change observable behavior — the profiler reads the clock and counts
//! scopes, but never schedules events, draws randomness, or reorders
//! work. These tests pin that claim against the same golden digests the
//! un-profiled runs are pinned to (see `golden_journal.rs`), and bound
//! the profiler's overhead on the event-dispatch hot path.

use std::cell::RefCell;
use std::rc::Rc;

// The shipped binaries (`experiments`, `bench-report`) run under the
// counting allocator, so the overhead gate below is measured in the same
// environment they ship in — per-event cost includes the allocator shim
// on both sides of the comparison.
#[global_allocator]
static ALLOC: aimes_bench::alloc::CountingAlloc = aimes_bench::alloc::CountingAlloc;

use aimes_repro::cluster::ClusterConfig;
use aimes_repro::fault::{FaultSpec, OutageKind, OutageSpec, RecoveryPolicy};
use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, RunJournal, RunOptions};
use aimes_repro::sim::{Profiler, SimDuration, SimTime, Simulation, Tracer};
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};
use aimes_repro::strategy::ResourceSelection;

// The same pinned digests as golden_journal.rs: a profiled run must land
// on the identical bytes.
const GOLDEN_EXP1: &str = "3d15343bf1674af7";
const GOLDEN_FAULTY: &str = "978899a2c7723d7d";

fn pool() -> Vec<ClusterConfig> {
    vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
        ClusterConfig::test("three", 512),
    ]
}

/// FNV-1a 64 over the journal's JSONL serialization (same as
/// `golden_journal.rs`).
fn digest(journal: &RunJournal) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in journal.to_jsonl().as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[test]
fn profiled_exp1_journal_is_bit_identical_to_golden() {
    let app = paper_bag(32, TaskDurationSpec::Uniform15Min);
    let journal = Rc::new(RefCell::new(RunJournal::new()));
    let profiler = Profiler::new();
    let options = RunOptions {
        seed: 101,
        submit_at: SimTime::from_secs(600.0),
        journal: Some(Rc::clone(&journal)),
        profiler: Some(profiler.clone()),
        ..Default::default()
    };
    run_application(&pool(), &app, &paper::early_strategy(), &options)
        .expect("profiled run completes");
    let out = journal.borrow().clone();
    assert_eq!(
        digest(&out),
        GOLDEN_EXP1,
        "attaching the profiler changed exp1's journal bytes"
    );
    // And the profiler really was live: every dispatched event counted,
    // every subsystem left a scope.
    let report = profiler.report();
    assert!(report.engine.events_processed > 0);
    let labels: Vec<&str> = report.labels.iter().map(|l| l.label.as_str()).collect();
    for expected in ["engine.dispatch", "cluster.scheduler", "unit.manager"] {
        assert!(
            labels.contains(&expected),
            "missing label {expected}: {labels:?}"
        );
    }
}

#[test]
fn profiled_chaos_journal_is_bit_identical_to_golden() {
    // The faulty-recovery scenario exercises detection, kill ordering,
    // blacklisting, and re-planning — the paths where a non-passive
    // observer would most plausibly perturb event order.
    let mut strategy = paper::late_strategy(2);
    strategy.selection = ResourceSelection::Fixed(vec!["one".into()]);
    let faults = FaultSpec {
        outages: vec![OutageSpec {
            resource: "one".into(),
            at_secs: 300.0,
            duration_secs: 600.0,
            kind: OutageKind::Permanent,
        }],
        ..FaultSpec::none()
    };
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let journal = Rc::new(RefCell::new(RunJournal::new()));
    let options = RunOptions {
        seed: 777,
        submit_at: SimTime::from_secs(600.0),
        faults: Some(faults),
        recovery: Some(RecoveryPolicy::with_detection()),
        journal: Some(Rc::clone(&journal)),
        profiler: Some(Profiler::new()),
        ..Default::default()
    };
    run_application(&pool(), &app, &strategy, &options).expect("profiled chaos run completes");
    let out = journal.borrow().clone();
    assert_eq!(
        digest(&out),
        GOLDEN_FAULTY,
        "attaching the profiler changed the chaos journal bytes"
    );
}

/// The `engine_heartbeat` benchmark workload at reduced size: every beat
/// cancels and replaces a far-future timeout, then schedules the next
/// beat — the detector's schedule + cancel churn. Returns events/sec.
fn heartbeat_events_per_sec(profiled: bool) -> f64 {
    use aimes_repro::sim::EventId;

    fn beat(
        sim: &mut Simulation,
        timeouts: &Rc<RefCell<Vec<Option<EventId>>>>,
        chain: usize,
        remaining: u32,
        period: f64,
    ) {
        if let Some(ev) = timeouts.borrow_mut()[chain].take() {
            sim.cancel(ev);
        }
        if remaining == 0 {
            return;
        }
        let ev = sim.schedule_in(SimDuration::from_secs(period * 1000.0), |_| {});
        timeouts.borrow_mut()[chain] = Some(ev);
        let handles = Rc::clone(timeouts);
        sim.schedule_in(SimDuration::from_secs(period), move |sim| {
            beat(sim, &handles, chain, remaining - 1, period)
        });
    }

    let chains = 64usize;
    let mut sim = Simulation::with_tracer(7, Tracer::disabled());
    if profiled {
        sim.attach_profiler(Profiler::new());
    }
    let timeouts: Rc<RefCell<Vec<Option<EventId>>>> = Rc::new(RefCell::new(vec![None; chains]));
    for chain in 0..chains {
        let period = 1.0 + chain as f64 * 0.013;
        beat(&mut sim, &timeouts, chain, 4_000, period);
    }
    let start = std::time::Instant::now();
    sim.run_to_completion();
    sim.events_processed() as f64 / start.elapsed().as_secs_f64()
}

#[test]
fn profiler_overhead_on_dispatch_is_bounded() {
    // The issue's gate: engine_heartbeat events/sec with profiling within
    // 10% of disabled. Best-of-3 on each side to shed scheduler noise on
    // loaded CI hosts; the arms interleave so thermal drift hits both.
    let mut best_plain: f64 = 0.0;
    let mut best_profiled: f64 = 0.0;
    for _ in 0..3 {
        best_plain = best_plain.max(heartbeat_events_per_sec(false));
        best_profiled = best_profiled.max(heartbeat_events_per_sec(true));
    }
    println!(
        "heartbeat: plain {best_plain:.0} ev/s, profiled {best_profiled:.0} ev/s ({:.1}%)",
        100.0 * best_profiled / best_plain
    );
    assert!(
        best_profiled >= 0.90 * best_plain,
        "profiled dispatch too slow: {best_profiled:.0} ev/s vs {best_plain:.0} ev/s plain \
         ({:.1}% of plain, gate is 90%)",
        100.0 * best_profiled / best_plain
    );
}
