//! Correlated-failure domains, end to end: a cascade takes out every
//! resource the workload was planned on; proactive evacuation plus
//! checkpointed salvage must beat reactive-only recovery on paired
//! seeds, every alarm/evacuation/checkpoint/resume must be journaled,
//! and a fixed-seed cascade must replay byte-identically.

use std::cell::RefCell;
use std::rc::Rc;

use aimes_repro::cluster::ClusterConfig;
use aimes_repro::fault::{
    CascadeSpec, DomainSpec, EvacuationSpec, FaultSpec, OutageKind, OutageSpec, RecoveryPolicy,
};
use aimes_repro::middleware::{run_application, RunJournal, RunOptions, RunResult};
use aimes_repro::sim::{SimDuration, SimTime};
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};
use aimes_repro::strategy::{ExecutionStrategy, ResourceSelection, WalltimePolicy};

fn pool() -> Vec<ClusterConfig> {
    ["ca", "cb", "cc", "cd", "ce", "cf"]
        .iter()
        .map(|n| ClusterConfig::test(n, 4096))
        .collect()
}

/// All three pilots pinned inside the doomed domain: survival hinges
/// entirely on the recovery arm under test.
fn strategy() -> ExecutionStrategy {
    let mut s = ExecutionStrategy::paper_late(3);
    s.selection = ResourceSelection::Fixed(vec!["ca".into(), "cb".into(), "cc".into()]);
    s.walltime = WalltimePolicy::FixedSecs(6 * 3600);
    s
}

/// Zone-a (the workload's whole footprint) goes down in a cascade; the
/// spread is slow enough that the alarm leads the later deaths.
fn cascade_faults() -> FaultSpec {
    FaultSpec {
        cascade: Some(CascadeSpec {
            domains: vec![
                DomainSpec {
                    name: "zone-a".into(),
                    members: vec!["ca".into(), "cb".into(), "cc".into()],
                },
                DomainSpec {
                    name: "zone-b".into(),
                    members: vec!["cd".into(), "ce".into(), "cf".into()],
                },
            ],
            trigger: OutageSpec {
                resource: "ca".into(),
                at_secs: 300.0,
                duration_secs: 0.0,
                kind: OutageKind::Permanent,
            },
            propagation_chance: 1.0,
            propagation_delay_secs: (120.0, 900.0),
        }),
        ..FaultSpec::none()
    }
}

/// Run one recovery arm on a fixed seed; return the result and the
/// journal's serialized JSONL.
fn run_arm(seed: u64, evacuate: bool, checkpoint_secs: f64) -> (RunResult, String) {
    let mut recovery = RecoveryPolicy::with_detection();
    if evacuate {
        recovery.evacuation = Some(EvacuationSpec::default());
    }
    recovery.checkpoint_interval = SimDuration::from_secs(checkpoint_secs);
    let journal = Rc::new(RefCell::new(RunJournal::new()));
    let r = run_application(
        &pool(),
        &paper_bag(16, TaskDurationSpec::Uniform15Min),
        &strategy(),
        &RunOptions {
            seed,
            submit_at: SimTime::from_secs(600.0),
            faults: Some(cascade_faults()),
            recovery: Some(recovery),
            journal: Some(journal.clone()),
            ..Default::default()
        },
    )
    .expect("the run survives the cascade");
    let jsonl = journal.borrow().to_jsonl();
    (r, jsonl)
}

fn count_events(jsonl: &str, tag: &str) -> usize {
    jsonl
        .lines()
        .filter(|l| l.contains(&format!("\"type\":\"{tag}\"")))
        .count()
}

#[test]
fn evacuation_with_checkpoints_beats_reactive_recovery_on_paired_seeds() {
    for seed in [2016, 523] {
        let (reactive, _) = run_arm(seed, false, 0.0);
        let (evac, jsonl) = run_arm(seed, true, 120.0);

        // Both arms complete the bag, but the proactive arm redoes
        // strictly less work.
        assert_eq!(reactive.units_done, 16, "seed {seed}: reactive arm");
        assert_eq!(evac.units_done, 16, "seed {seed}: evac+ckpt arm");
        assert!(
            evac.wasted_core_hours < reactive.wasted_core_hours,
            "seed {seed}: evac+ckpt wasted {} >= reactive wasted {}",
            evac.wasted_core_hours,
            reactive.wasted_core_hours
        );
        assert!(evac.salvaged_core_hours > 0.0, "seed {seed}: no salvage");
        // The reactive arm salvages nothing and never alarms.
        assert_eq!(reactive.salvaged_core_hours, 0.0);
        assert_eq!(reactive.domain_alarms, 0);
        assert_eq!(reactive.evacuation_lead_secs, None);

        // The proactive machinery actually engaged, and the alarm led
        // the first completed drain by a measurable interval.
        assert!(evac.domain_alarms >= 1, "seed {seed}: no domain alarm");
        assert!(evac.evacuations >= 1, "seed {seed}: no completed drain");
        let lead = evac
            .evacuation_lead_secs
            .expect("an alarm and a drain give a lead time");
        assert!(lead > 0.0, "seed {seed}: lead {lead} not positive");

        // Every alarm, drain, checkpoint, and resume is journaled.
        assert_eq!(
            count_events(&jsonl, "DomainAlarm") as u64,
            evac.domain_alarms,
            "seed {seed}"
        );
        assert_eq!(
            count_events(&jsonl, "Evacuation") as u64,
            evac.evacuations,
            "seed {seed}"
        );
        assert!(count_events(&jsonl, "Checkpoint") >= 1, "seed {seed}");
        assert!(
            count_events(&jsonl, "ResumeFromCheckpoint") >= 1,
            "seed {seed}"
        );
    }
}

#[test]
fn fixed_seed_cascade_replays_byte_identically() {
    let (a, jsonl_a) = run_arm(777, true, 120.0);
    let (b, jsonl_b) = run_arm(777, true, 120.0);
    assert_eq!(jsonl_a, jsonl_b, "journals diverged across invocations");
    assert_eq!(a.wasted_core_hours, b.wasted_core_hours);
    assert_eq!(a.salvaged_core_hours, b.salvaged_core_hours);
    assert_eq!(a.evacuation_lead_secs, b.evacuation_lead_secs);
    assert_eq!(a.breakdown.ttc, b.breakdown.ttc);
}

#[test]
fn salvage_split_partitions_wasted_core_hours_in_the_result() {
    // The result's wasted/salvaged split is exact: together they equal
    // what the same run reports with checkpointing off (same cascade,
    // same evacuations, only the salvage attribution differs) only in
    // spirit — here we check the internal consistency instead: salvage
    // never exceeds what the checkpointed run aborted.
    let (evac, _) = run_arm(2016, true, 120.0);
    assert!(evac.wasted_core_hours >= 0.0);
    assert!(evac.salvaged_core_hours >= 0.0);
    let (plain, _) = run_arm(2016, true, 0.0);
    // With checkpointing off nothing is salvaged.
    assert_eq!(plain.salvaged_core_hours, 0.0);
}
