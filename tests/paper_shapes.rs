//! Statistical shape checks: the paper's headline findings must hold in
//! the reproduction (over a handful of seeds — these are smoke-level
//! statistical tests; the full regeneration lives in the `experiments`
//! binary).

use aimes_repro::middleware::experiment::{run_experiment, ExperimentConfig};
use aimes_repro::middleware::paper;
use aimes_repro::skeleton::TaskDurationSpec;

fn config(
    id: &str,
    strategy: aimes_repro::strategy::ExecutionStrategy,
    spec: TaskDurationSpec,
    sizes: Vec<u32>,
    reps: usize,
) -> ExperimentConfig {
    ExperimentConfig {
        id: id.into(),
        description: String::new(),
        strategy,
        duration_spec: spec,
        task_counts: sizes,
        repetitions: reps,
        base_seed: 2016,
        resources: paper::testbed(),
        submit_window_hours: (4.0, 16.0),
    }
}

/// Paper finding 1 (Fig. 2): late binding over three pilots beats early
/// binding on one pilot, on average, at scale.
#[test]
fn late_binding_beats_early_binding_on_average() {
    let sizes = vec![512];
    let early = run_experiment(&config(
        "early",
        paper::early_strategy(),
        TaskDurationSpec::Uniform15Min,
        sizes.clone(),
        6,
    ));
    let late = run_experiment(&config(
        "late",
        paper::late_strategy(3),
        TaskDurationSpec::Uniform15Min,
        sizes,
        6,
    ));
    let e = &early.points[0];
    let l = &late.points[0];
    assert!(e.errors.is_empty() && l.errors.is_empty());
    assert!(
        l.ttc.mean < e.ttc.mean,
        "late {} should beat early {}",
        l.ttc.mean,
        e.ttc.mean
    );
}

/// Paper finding 2 (Fig. 4): the run-to-run variance of early binding is
/// much larger than late binding's (single-resource Tw variability vs
/// min over three resources).
#[test]
fn early_binding_has_larger_variance() {
    let sizes = vec![256];
    let early = run_experiment(&config(
        "early",
        paper::early_strategy(),
        TaskDurationSpec::Uniform15Min,
        sizes.clone(),
        8,
    ));
    let late = run_experiment(&config(
        "late",
        paper::late_strategy(3),
        TaskDurationSpec::Uniform15Min,
        sizes,
        8,
    ));
    let e = &early.points[0];
    let l = &late.points[0];
    assert!(
        e.tw.stdev > l.tw.stdev,
        "early Tw stdev {} vs late {}",
        e.tw.stdev,
        l.tw.stdev
    );
}

/// Paper finding 3 (Fig. 3): Tw dominates early-binding TTC; Ts stays a
/// small fraction by experimental design and grows with task count.
#[test]
fn tw_dominates_and_ts_scales_with_tasks() {
    let r = run_experiment(&config(
        "early",
        paper::early_strategy(),
        TaskDurationSpec::Uniform15Min,
        vec![64, 512],
        6,
    ));
    let p64 = &r.points[0];
    let p512 = &r.points[1];
    // Ts proportional to task count (1 MB in, 2 KB out per task through a
    // serialized origin channel): ~8x between 64 and 512.
    let ratio = p512.ts.mean / p64.ts.mean;
    assert!(
        (6.0..10.0).contains(&ratio),
        "Ts should scale ~8x, got {ratio}"
    );
    // Ts remains a small share of TTC.
    assert!(p512.ts.mean < 0.25 * p512.ttc.mean);
    // Averaged over runs, waiting exceeds computing for early binding on
    // the saturated pool.
    assert!(
        p512.tw.mean > 0.3 * p512.ttc.mean,
        "Tw {} should be a large share of TTC {}",
        p512.tw.mean,
        p512.ttc.mean
    );
}

/// Paper discussion (§IV-A): late binding with a single pilot behaves
/// like early binding on one pilot — the pruning rule's justification.
#[test]
fn late_single_pilot_close_to_early_single_pilot() {
    let sizes = vec![64];
    let reps = 6;
    let early = run_experiment(&config(
        "early",
        paper::early_strategy(),
        TaskDurationSpec::Uniform15Min,
        sizes.clone(),
        reps,
    ));
    // Late with one pilot, sized for all tasks (strategy-space corner).
    let mut late1 = paper::late_strategy(1);
    late1.sizing = aimes_repro::strategy::PilotSizing::TasksTotal;
    late1.walltime = aimes_repro::strategy::WalltimePolicy::SingleShot;
    let late = run_experiment(&config(
        "late1",
        late1,
        TaskDurationSpec::Uniform15Min,
        sizes,
        reps,
    ));
    let e = &early.points[0];
    let l = &late.points[0];
    // Same sizing, same walltime, same pool: the Tx components must agree
    // closely (both run everything in one wave on one pilot).
    assert!(
        (e.tx.mean - l.tx.mean).abs() / e.tx.mean < 0.1,
        "early Tx {} vs late-1p Tx {}",
        e.tx.mean,
        l.tx.mean
    );
}

/// The min-over-k mechanism: with k pilots the first activation is the
/// minimum of k per-resource waits, so mean first-activation wait must
/// not increase with k.
#[test]
fn first_activation_wait_shrinks_with_more_pilots() {
    let mut means = Vec::new();
    for k in [1u32, 3] {
        let mut strategy = paper::late_strategy(k.max(2));
        if k == 1 {
            strategy = paper::late_strategy(2);
            strategy.pilot_count = 1; // single pilot, late machinery
        }
        let r = run_experiment(&config(
            &format!("k{k}"),
            strategy,
            TaskDurationSpec::Uniform15Min,
            vec![128],
            8,
        ));
        means.push(r.points[0].tw.mean);
    }
    assert!(
        means[1] <= means[0] * 1.1,
        "Tw with 3 pilots ({}) should not exceed 1 pilot ({})",
        means[1],
        means[0]
    );
}
