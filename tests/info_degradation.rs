//! Degraded-information execution, end to end: when the info channel
//! lies or goes dark, runs complete through the fallback ladder, every
//! fallback is journaled and counted, and fixed-seed degraded runs stay
//! byte-identical. A fault-free run must show zero fallbacks and no
//! `info_fallback` journal entries — the degradation machinery is
//! invisible until faults ask for it.

use std::cell::RefCell;
use std::rc::Rc;

use aimes_repro::bundle::InfoConfig;
use aimes_repro::cluster::ClusterConfig;
use aimes_repro::fault::{FaultSpec, InfoBlackoutSpec, InfoFaultSpec};
use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, JournalEvent, RunJournal, RunOptions, RunResult};
use aimes_repro::sim::SimTime;
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};

fn pool() -> Vec<ClusterConfig> {
    vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
        ClusterConfig::test("three", 512),
    ]
}

/// A streaming (non-oracle) information plane: cached answers live for
/// five minutes, stale ones serve for an hour.
fn streaming_info() -> InfoConfig {
    InfoConfig {
        base_refresh_secs: 300.0,
        ..InfoConfig::default()
    }
}

fn degraded_faults() -> FaultSpec {
    FaultSpec {
        info: InfoFaultSpec {
            corrupt_chance: 0.25,
            unavailable_chance: 0.25,
            blackouts: vec![InfoBlackoutSpec {
                resource: "one".into(),
                at_secs: 0.0,
                duration_secs: 3600.0,
            }],
        },
        ..FaultSpec::none()
    }
}

fn run(seed: u64, info: InfoConfig, faults: Option<FaultSpec>) -> (RunResult, RunJournal) {
    let app = paper_bag(32, TaskDurationSpec::Uniform15Min);
    let journal = Rc::new(RefCell::new(RunJournal::new()));
    let r = run_application(
        &pool(),
        &app,
        &paper::late_strategy(3),
        &RunOptions {
            seed,
            submit_at: SimTime::from_secs(600.0),
            faults,
            journal: Some(Rc::clone(&journal)),
            info,
            ..Default::default()
        },
    )
    .expect("degraded-information runs still complete");
    let out = journal.borrow().clone();
    (r, out)
}

fn fallback_entries(journal: &RunJournal) -> usize {
    journal
        .entries()
        .iter()
        .filter(|e| matches!(e.event, JournalEvent::InfoFallback { .. }))
        .count()
}

#[test]
fn fault_free_runs_never_fall_back() {
    let (r, journal) = run(101, streaming_info(), None);
    assert_eq!(r.units_done, 32);
    assert_eq!(r.info_fallbacks, 0, "healthy channel: no ladder descents");
    assert_eq!(r.stale_decision_secs, 0.0);
    assert_eq!(fallback_entries(&journal), 0, "no info_fallback entries");
}

#[test]
fn degraded_runs_complete_and_account_for_every_fallback() {
    let (r, journal) = run(2024, streaming_info(), Some(degraded_faults()));
    assert_eq!(r.units_done, 32, "degradation must not lose work");
    assert!(
        r.info_fallbacks > 0,
        "a 25%/25% corrupt/unavailable channel plus a blackout must descend the ladder"
    );
    assert_eq!(
        fallback_entries(&journal) as u64,
        r.info_fallbacks,
        "every counted fallback is journaled, and vice versa"
    );
    // TTC stays bounded: conservative defaults slow selection down, they
    // do not hang it.
    assert!(r.breakdown.ttc.as_hours() < 48.0);
}

#[test]
fn fixed_seed_degraded_runs_are_byte_identical() {
    let (r1, j1) = run(777, streaming_info(), Some(degraded_faults()));
    let (r2, j2) = run(777, streaming_info(), Some(degraded_faults()));
    assert_eq!(
        j1.to_jsonl(),
        j2.to_jsonl(),
        "same seed, same degradation: the journal must not wobble"
    );
    assert_eq!(r1.info_fallbacks, r2.info_fallbacks);
    assert_eq!(r1.stale_decision_secs, r2.stale_decision_secs);
}

#[test]
fn total_blackout_degrades_gracefully_to_the_static_floor() {
    // Every resource's channel is dark from before submission: no live
    // measurement ever answers. The run still plans (static floor), still
    // finishes, and every decision is visible in the journal.
    let blackout = FaultSpec {
        info: InfoFaultSpec {
            blackouts: vec![InfoBlackoutSpec {
                resource: "*".into(),
                at_secs: 0.0,
                duration_secs: 1e9,
            }],
            ..InfoFaultSpec::default()
        },
        ..FaultSpec::none()
    };
    let (r, journal) = run(31337, streaming_info(), Some(blackout));
    assert_eq!(r.units_done, 32);
    assert!(r.info_fallbacks > 0, "blackout forces the ladder down");
    assert!(fallback_entries(&journal) > 0);
    assert!(
        r.breakdown.ttc.as_hours() < 48.0,
        "blind selection is slower, not unbounded"
    );
}
