//! Worker-count invariance: the vendored rayon shim is a real scoped-
//! thread pool, and nothing observable may depend on how many workers it
//! runs. Each simulation owns its seed and its whole `Rc` world, results
//! come back in input order, and aggregation is sequential — so the same
//! campaign at 1 worker and at 4 workers must produce byte-identical
//! journals and byte-identical `ExperimentResult` JSON. These tests pin
//! that, plus the fact that >1 worker genuinely means >1 OS thread.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Mutex;

use aimes_repro::cluster::ClusterConfig;
use aimes_repro::fault::{FaultSpec, OutageKind, OutageSpec, RecoveryPolicy};
use aimes_repro::middleware::experiment::{run_experiment, ExperimentConfig};
use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, RunJournal, RunOptions};
use aimes_repro::sim::SimTime;
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};
use rayon::prelude::*;

/// Serializes tests that reconfigure the global worker count.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the pool pinned to `n` workers, then reset to auto.
fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("configure pool");
    let out = f();
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .expect("reset pool");
    out
}

/// FNV-1a 64 over the journal's JSONL serialization (same helper as the
/// golden-journal suite): sensitive to any byte-level change.
fn digest(journal: &RunJournal) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in journal.to_jsonl().as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn small_experiment() -> ExperimentConfig {
    ExperimentConfig {
        id: "pool-invariance".into(),
        description: "worker-count invariance probe".into(),
        strategy: aimes_repro::strategy::ExecutionStrategy::paper_late(2),
        duration_spec: TaskDurationSpec::Gaussian,
        task_counts: vec![8, 16],
        repetitions: 4,
        base_seed: 4242,
        resources: ["one", "two", "three"]
            .iter()
            .map(|n| ClusterConfig::test(n, 512))
            .collect(),
        submit_window_hours: (0.1, 0.5),
    }
}

/// One journaling chaos run per seed — the kind of per-seed loop the
/// ablation sweeps fan out — returning the journal's digest.
fn chaos_digest(seed: u64) -> String {
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let pool = vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
    ];
    let journal = Rc::new(RefCell::new(RunJournal::new()));
    run_application(
        &pool,
        &app,
        &paper::late_strategy(2),
        &RunOptions {
            seed,
            submit_at: SimTime::from_secs(600.0),
            faults: Some(FaultSpec {
                outages: vec![OutageSpec {
                    resource: "one".into(),
                    at_secs: 300.0,
                    duration_secs: 600.0,
                    kind: OutageKind::Permanent,
                }],
                ..FaultSpec::none()
            }),
            recovery: Some(RecoveryPolicy::with_detection()),
            journal: Some(journal.clone()),
            ..Default::default()
        },
    )
    .expect("chaos run recovers");
    let d = digest(&journal.borrow());
    d
}

#[test]
fn pool_runs_on_multiple_threads_in_input_order() {
    // Each item sleeps so the OS interleaves workers even on a one-core
    // host; >1 distinct ThreadId proves the pool is not sequential.
    let items: Vec<u32> = (0..16).collect();
    let out: Vec<(u32, std::thread::ThreadId)> = with_workers(4, || {
        items
            .par_iter()
            .map(|&i| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                (i * 3, std::thread::current().id())
            })
            .collect()
    });
    let values: Vec<u32> = out.iter().map(|(v, _)| *v).collect();
    assert_eq!(values, (0..16).map(|i| i * 3).collect::<Vec<_>>());
    let distinct: std::collections::HashSet<_> = out.iter().map(|(_, id)| *id).collect();
    assert!(distinct.len() >= 2, "expected >1 worker thread");
}

#[test]
fn experiment_result_json_is_identical_across_worker_counts() {
    let cfg = small_experiment();
    let json_1 = with_workers(1, || {
        serde_json::to_string(&run_experiment(&cfg)).expect("serialize")
    });
    let json_4 = with_workers(4, || {
        serde_json::to_string(&run_experiment(&cfg)).expect("serialize")
    });
    assert_eq!(json_1, json_4, "worker count leaked into results");
}

#[test]
fn pool_stats_account_every_item_and_all_wall_time() {
    let items: Vec<u32> = (0..24).collect();
    let stats = with_workers(3, || {
        rayon::reset_pool_stats();
        let _: Vec<u32> = items
            .par_iter()
            .map(|&i| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                i
            })
            .collect();
        rayon::pool_stats()
    });
    assert_eq!(stats.invocations, 1);
    assert_eq!(stats.workers.len(), 3);
    // Every input item is claimed by exactly one worker.
    assert_eq!(stats.items(), items.len() as u64);
    // Per-worker busy + idle spans the pool invocation's wall time: a
    // worker is either running an item or waiting for the merge. The
    // bound is loose (scheduling noise) but two-sided.
    for (w, ws) in stats.workers.iter().enumerate() {
        let span = ws.busy_secs + ws.idle_secs;
        assert!(
            span <= stats.wall_secs + 1e-3,
            "worker {w}: busy {} + idle {} exceeds wall {}",
            ws.busy_secs,
            ws.idle_secs,
            stats.wall_secs
        );
        assert!(
            span >= 0.5 * stats.wall_secs,
            "worker {w}: busy {} + idle {} covers too little of wall {}",
            ws.busy_secs,
            ws.idle_secs,
            stats.wall_secs
        );
        let frac = ws.busy_fraction();
        assert!((0.0..=1.0).contains(&frac), "busy fraction {frac}");
    }
    assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
}

#[test]
fn pool_stats_are_well_formed_at_one_worker() {
    let items: Vec<u32> = (0..8).collect();
    let stats = with_workers(1, || {
        rayon::reset_pool_stats();
        let _: Vec<u32> = items.par_iter().map(|&i| i + 1).collect();
        rayon::pool_stats()
    });
    assert_eq!(stats.invocations, 1);
    // The sequential fast path books the whole batch on worker 0 with no
    // idle time and no wasted cursor fetches.
    assert_eq!(stats.workers.len(), 1);
    assert_eq!(stats.workers[0].items, items.len() as u64);
    assert_eq!(stats.workers[0].idle_secs, 0.0);
    assert_eq!(stats.cursor_overshoots, 0);
    assert_eq!(stats.items(), items.len() as u64);
}

#[test]
fn pool_stats_accumulate_across_invocations_until_reset() {
    let stats = with_workers(2, || {
        rayon::reset_pool_stats();
        for _ in 0..3 {
            let _: Vec<u32> = (0..10u32)
                .collect::<Vec<_>>()
                .par_iter()
                .map(|&i| i)
                .collect();
        }
        rayon::pool_stats()
    });
    assert_eq!(stats.invocations, 3);
    assert_eq!(stats.items(), 30);
    rayon::reset_pool_stats();
    let fresh = rayon::pool_stats();
    assert_eq!(fresh.invocations, 0);
    assert_eq!(fresh.items(), 0);
    assert!(fresh.workers.is_empty());
}

#[test]
fn journal_digests_are_identical_across_worker_counts() {
    let seeds: Vec<u64> = vec![11, 42, 20160523, 777];
    let sequential: Vec<String> = seeds.iter().map(|&s| chaos_digest(s)).collect();
    let pooled_1: Vec<String> =
        with_workers(1, || seeds.par_iter().map(|&s| chaos_digest(s)).collect());
    let pooled_4: Vec<String> =
        with_workers(4, || seeds.par_iter().map(|&s| chaos_digest(s)).collect());
    assert_eq!(sequential, pooled_1);
    assert_eq!(sequential, pooled_4, "worker count leaked into journals");
}
