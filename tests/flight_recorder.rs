//! The always-on flight recorder, end to end: a chaos run that dies must
//! leave a checksummed post-mortem dump on disk whose retained tail
//! reconstructs the run's last N events exactly — byte-for-byte the same
//! JSON lines the full journal holds for those events. A Declared-Dead
//! verdict dumps too, even when the run ultimately succeeds.

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

use aimes_repro::cluster::ClusterConfig;
use aimes_repro::fault::{FaultSpec, OutageKind, OutageSpec, RecoveryPolicy};
use aimes_repro::middleware::paper;
use aimes_repro::middleware::{
    run_application, RecorderSnapshot, RunError, RunJournal, RunOptions,
};
use aimes_repro::sim::{SimDuration, SimTime};
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};
use aimes_repro::strategy::ResourceSelection;

/// A fresh per-test dump directory under the cargo-managed tmpdir.
fn dump_dir(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(test);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn interrupted_run_dumps_a_verifiable_snapshot_matching_the_journal_tail() {
    let dir = dump_dir("interrupted");
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let pool = vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
    ];
    let journal = Rc::new(RefCell::new(RunJournal::new()));
    let capacity = 16;
    let err = run_application(
        &pool,
        &app,
        &paper::late_strategy(2),
        &RunOptions {
            seed: 4242,
            submit_at: SimTime::from_secs(600.0),
            interrupt_at: Some(SimDuration::from_secs(900.0)),
            journal: Some(journal.clone()),
            recorder_capacity: capacity,
            recorder_dump_dir: Some(dir.clone()),
            ..Default::default()
        },
    )
    .expect_err("the run is killed mid-flight");
    assert!(matches!(err, RunError::Interrupted { .. }), "got {err}");

    // The dump exists, parses, and passes its own checksum + contiguity
    // verification (from_text runs both).
    let path = dir.join("flight-4242-interrupted.txt");
    let text = std::fs::read_to_string(&path).expect("dump written on interrupt");
    let snap = RecorderSnapshot::from_text(&text).expect("dump verifies");
    assert_eq!(snap.reason, "interrupted");
    assert!(!snap.events.is_empty(), "the ring saw the run's events");
    assert!(snap.events.len() <= capacity);

    // The tail reconstructs the journal's last N events exactly: same
    // count, same order, byte-identical JSON per event.
    let journal = journal.borrow();
    let entries = journal.entries();
    assert_eq!(snap.total_events, entries.len() as u64);
    let tail = &entries[entries.len() - snap.events.len()..];
    for (rec, entry) in snap.events.iter().zip(tail) {
        let expect = serde_json::to_string(&entry.event).unwrap();
        assert_eq!(
            rec.what, expect,
            "recorder line diverged at seq {}",
            rec.seq
        );
        // The dump format keeps millisecond precision.
        assert!((rec.at_secs - entry.at_secs).abs() < 0.001);
    }
}

#[test]
fn declared_dead_verdict_dumps_even_when_the_run_recovers() {
    // The detection scenario: "one" dies silently, heartbeats stop, the
    // detector declares it dead, and the run re-plans onto "two" and
    // finishes. Success — but the Declared-Dead verdict still left a
    // post-mortem snapshot for diagnosis.
    let dir = dump_dir("declared-dead");
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let pool = vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
    ];
    let mut strategy = paper::late_strategy(1);
    strategy.selection = ResourceSelection::Fixed(vec!["one".into()]);
    let r = run_application(
        &pool,
        &app,
        &strategy,
        &RunOptions {
            seed: 13,
            submit_at: SimTime::from_secs(600.0),
            faults: Some(FaultSpec {
                outages: vec![OutageSpec {
                    resource: "one".into(),
                    at_secs: 300.0,
                    duration_secs: 600.0,
                    kind: OutageKind::Permanent,
                }],
                ..FaultSpec::none()
            }),
            recovery: Some(RecoveryPolicy::with_detection()),
            recorder_dump_dir: Some(dir.clone()),
            ..Default::default()
        },
    )
    .expect("detection recovers the run");
    assert_eq!(r.units_done, 16);

    let path = dir.join("flight-13-declared-dead-one.txt");
    let text = std::fs::read_to_string(&path).expect("verdict dumped a snapshot");
    let snap = RecorderSnapshot::from_text(&text).expect("dump verifies");
    assert_eq!(snap.reason, "declared-dead-one");
    assert!(!snap.events.is_empty());
}

#[test]
fn domain_alarm_dumps_a_snapshot_naming_the_domain_and_its_members() {
    // A cascade inside zone-a raises a domain alarm; the alarm is a dump
    // reason, and the snapshot header carries the alarmed domain plus its
    // member resources (the filename keeps a sanitized form of both).
    use aimes_repro::fault::{CascadeSpec, DomainSpec, EvacuationSpec};
    let dir = dump_dir("domain-alarm");
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let pool = vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
        ClusterConfig::test("three", 512),
    ];
    let mut strategy = paper::late_strategy(2);
    strategy.selection = ResourceSelection::Fixed(vec!["one".into(), "two".into()]);
    let mut recovery = RecoveryPolicy::with_detection();
    recovery.evacuation = Some(EvacuationSpec::default());
    let r = run_application(
        &pool,
        &app,
        &strategy,
        &RunOptions {
            seed: 31,
            submit_at: SimTime::from_secs(600.0),
            faults: Some(FaultSpec {
                cascade: Some(CascadeSpec {
                    domains: vec![
                        DomainSpec {
                            name: "zone-a".into(),
                            members: vec!["one".into(), "two".into()],
                        },
                        DomainSpec {
                            name: "zone-b".into(),
                            members: vec!["three".into()],
                        },
                    ],
                    trigger: OutageSpec {
                        resource: "one".into(),
                        at_secs: 300.0,
                        duration_secs: 0.0,
                        kind: OutageKind::Permanent,
                    },
                    propagation_chance: 1.0,
                    propagation_delay_secs: (600.0, 900.0),
                }),
                ..FaultSpec::none()
            }),
            recovery: Some(recovery),
            recorder_dump_dir: Some(dir.clone()),
            ..Default::default()
        },
    )
    .expect("evacuation rides out the cascade");
    assert_eq!(r.units_done, 16);
    assert!(r.domain_alarms >= 1, "the cascade must raise an alarm");

    // Reason chars outside [a-zA-Z0-9-] collapse to '-' in the filename;
    // the snapshot itself keeps the free-form reason with the raw
    // domain + member list.
    let path = dir.join("flight-31-domain-alarm-zone-a-members-one-two.txt");
    let text = std::fs::read_to_string(&path).expect("alarm dumped a snapshot");
    let snap = RecorderSnapshot::from_text(&text).expect("dump verifies");
    assert_eq!(snap.reason, "domain-alarm-zone-a members=one,two");
    assert!(!snap.events.is_empty());
}

#[test]
fn run_tag_disambiguates_dump_filenames_on_shared_seed_and_dir() {
    // Paired-seed ablation arms share both the seed and the dump dir;
    // each arm's run_tag must keep its post-mortem from overwriting the
    // other's. Same interrupted run, two tags, one directory.
    let dir = dump_dir("tagged");
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let pool = vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
    ];
    for tag in ["arm-a/r0", "arm-b-r0"] {
        let err = run_application(
            &pool,
            &app,
            &paper::late_strategy(2),
            &RunOptions {
                seed: 4242,
                submit_at: SimTime::from_secs(600.0),
                interrupt_at: Some(SimDuration::from_secs(900.0)),
                recorder_dump_dir: Some(dir.clone()),
                run_tag: Some(tag.into()),
                ..Default::default()
            },
        )
        .expect_err("the run is killed mid-flight");
        assert!(matches!(err, RunError::Interrupted { .. }));
    }

    // Tags sanitize like reasons ('/' → '-') and prefix the seed.
    for name in [
        "flight-arm-a-r0-4242-interrupted.txt",
        "flight-arm-b-r0-4242-interrupted.txt",
    ] {
        let text = std::fs::read_to_string(dir.join(name)).expect(name);
        let snap = RecorderSnapshot::from_text(&text).expect("dump verifies");
        assert_eq!(snap.reason, "interrupted");
    }
    // No temp files left behind, and no tag-less collision file.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.contains(".tmp-") || n == "flight-4242-interrupted.txt")
        .collect();
    assert!(leftovers.is_empty(), "unexpected files: {leftovers:?}");
}

#[test]
fn no_dump_dir_means_no_files_and_no_failure() {
    // The recorder stays purely in memory when no dump dir is set: the
    // same interrupted run neither errors on the dump path nor writes
    // anywhere.
    let app = paper_bag(8, TaskDurationSpec::Uniform15Min);
    let pool = vec![ClusterConfig::test("one", 256)];
    let err = run_application(
        &pool,
        &app,
        &paper::early_strategy(),
        &RunOptions {
            seed: 7,
            submit_at: SimTime::from_secs(600.0),
            interrupt_at: Some(SimDuration::from_secs(300.0)),
            ..Default::default()
        },
    )
    .expect_err("interrupted");
    assert!(matches!(err, RunError::Interrupted { .. }));
}

#[test]
fn zero_recorder_capacity_is_rejected_before_the_run_starts() {
    let app = paper_bag(8, TaskDurationSpec::Uniform15Min);
    let pool = vec![ClusterConfig::test("one", 256)];
    let err = run_application(
        &pool,
        &app,
        &paper::early_strategy(),
        &RunOptions {
            recorder_capacity: 0,
            ..Default::default()
        },
    )
    .expect_err("zero ring must be rejected");
    assert!(
        matches!(err, RunError::InvalidRecorderConfig(_)),
        "got {err}"
    );
}
