//! Fault-injection + self-healing integration: deterministic outage
//! schedules through the full middleware stack, pilot replacement,
//! re-planning after permanent resource loss, and typed errors when
//! recovery is disabled. The acceptance bar: faults never hang a run —
//! they either heal or surface as a typed [`RunError`].

use aimes_repro::cluster::ClusterConfig;
use aimes_repro::fault::{FaultSpec, OutageKind, OutageSpec, RecoveryPolicy, StagingFault};
use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, RunError, RunOptions};
use aimes_repro::sim::{SimDuration, SimTime};
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};
use aimes_repro::strategy::ResourceSelection;
use proptest::prelude::*;

fn pool() -> Vec<ClusterConfig> {
    vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
    ]
}

/// One 16-task bag pinned to resource "one" so outages there are fatal
/// without recovery.
fn pinned_strategy() -> aimes_repro::strategy::ExecutionStrategy {
    let mut strategy = paper::late_strategy(1);
    strategy.selection = ResourceSelection::Fixed(vec!["one".into()]);
    strategy
}

fn outage_spec(kind: OutageKind) -> FaultSpec {
    FaultSpec {
        outages: vec![OutageSpec {
            resource: "one".into(),
            at_secs: 300.0,
            duration_secs: 600.0,
            kind,
        }],
        ..FaultSpec::none()
    }
}

fn opts(seed: u64, faults: FaultSpec, recovery: Option<RecoveryPolicy>) -> RunOptions {
    RunOptions {
        seed,
        submit_at: SimTime::from_secs(600.0),
        faults: Some(faults),
        recovery,
        ..Default::default()
    }
}

#[test]
fn outage_mid_run_heals_via_replacement_pilot() {
    // The outage at t+300 s kills the only pilot mid-execution; the
    // self-healing layer submits a replacement, the interrupted units
    // restart on it, and the whole bag completes.
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let r = run_application(
        &pool(),
        &app,
        &pinned_strategy(),
        &opts(
            11,
            outage_spec(OutageKind::Outage),
            Some(RecoveryPolicy::default()),
        ),
    )
    .unwrap();
    assert_eq!(r.units_done, 16);
    assert_eq!(r.units_failed, 0);
    assert!(r.restarts > 0, "killed units must have restarted");
    assert!(r.replacements > 0, "a replacement pilot must have launched");
    assert!(r.mean_recovery_secs > 0.0);
    assert!(
        r.breakdown.tr.as_secs() > 0.0,
        "recovery overhead must show up in the TTC decomposition"
    );
    assert!(
        r.wasted_core_hours > 0.0,
        "the aborted first attempts burned allocation"
    );
}

#[test]
fn same_outage_without_recovery_surfaces_typed_error() {
    // Identical schedule, recovery off: the pilot dies, nothing replaces
    // it, and the run reports PilotsDrained instead of hanging.
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let err = run_application(
        &pool(),
        &app,
        &pinned_strategy(),
        &opts(11, outage_spec(OutageKind::Outage), None),
    )
    .unwrap_err();
    assert!(matches!(err, RunError::PilotsDrained { .. }), "{err}");
    assert!(err.contains("drained"), "{err}");
}

#[test]
fn permanent_loss_replans_onto_survivors() {
    // Resource "one" is decommissioned mid-run. With re-planning on, the
    // middleware re-derives the strategy over the survivors and finishes
    // on "two" — no pilot-level replacement needed (one layer owns it).
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let r = run_application(
        &pool(),
        &app,
        &pinned_strategy(),
        &opts(
            13,
            outage_spec(OutageKind::Permanent),
            Some(RecoveryPolicy::default()),
        ),
    )
    .unwrap();
    assert_eq!(r.units_done, 16);
    assert_eq!(r.replans, 1, "exactly one re-plan after the loss");
    assert_eq!(
        r.replacements, 0,
        "re-planning owns cross-resource recovery"
    );
    assert!(r.restarts > 0);
}

#[test]
fn permanent_loss_reroutes_replacement_when_replan_disabled() {
    // Same loss, but the policy delegates to the pilot layer: the
    // replacement pilot is rerouted off the blacklisted resource.
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let r = run_application(
        &pool(),
        &app,
        &pinned_strategy(),
        &opts(
            13,
            outage_spec(OutageKind::Permanent),
            Some(RecoveryPolicy {
                replan_on_resource_loss: false,
                ..RecoveryPolicy::default()
            }),
        ),
    )
    .unwrap();
    assert_eq!(r.units_done, 16);
    assert_eq!(r.replans, 0);
    assert!(r.replacements > 0, "the pilot layer must have rerouted");
}

#[test]
fn permanent_loss_without_recovery_is_resource_lost() {
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let err = run_application(
        &pool(),
        &app,
        &pinned_strategy(),
        &opts(13, outage_spec(OutageKind::Permanent), None),
    )
    .unwrap_err();
    match &err {
        RunError::ResourceLost { resource, .. } => assert_eq!(resource, "one"),
        other => panic!("expected ResourceLost, got {other}"),
    }
    assert!(err.contains("lost"), "{err}");
}

#[test]
fn launch_failure_blacklist_triggers_replan() {
    // No scheduled outage at all: resource "one" simply eats pilot
    // launches (injected permanent submission failures) until the pilot
    // manager blacklists it. With re-planning enabled the pilot layer
    // deliberately does not reroute — the middleware must hear about the
    // blacklist and re-derive the strategy over "two", or the pool drains
    // with recovery nominally on.
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let faults = FaultSpec {
        launch_permanent_chance: 0.7,
        ..FaultSpec::none()
    };
    let r = run_application(
        &pool(),
        &app,
        &pinned_strategy(),
        &opts(0, faults.clone(), Some(RecoveryPolicy::default())),
    )
    .unwrap();
    assert_eq!(r.units_done, 16);
    assert!(r.replans >= 1, "blacklisting must trigger a re-plan");
    assert!(
        r.replacements > 0,
        "on-resource replacements were attempted"
    );
    // Same schedule, recovery off: the lone pilot's launch fails, nothing
    // replaces it, and the run ends in a typed error instead of hanging.
    let err =
        run_application(&pool(), &app, &pinned_strategy(), &opts(0, faults, None)).unwrap_err();
    assert!(matches!(err, RunError::PilotsDrained { .. }), "{err}");
}

#[test]
fn invalid_fault_spec_is_rejected_up_front() {
    // An empty random-outage duration range used to be silently widened;
    // now the run refuses to start on a spec it cannot honour.
    let app = paper_bag(8, TaskDurationSpec::Uniform15Min);
    let faults = FaultSpec {
        random_outages_per_resource: 1.0,
        random_outage_duration_secs: (100.0, 100.0),
        ..FaultSpec::none()
    };
    let err =
        run_application(&pool(), &app, &pinned_strategy(), &opts(1, faults, None)).unwrap_err();
    assert!(matches!(err, RunError::InvalidFaultSpec(_)), "{err}");
    assert!(err.contains("invalid fault spec"), "{err}");
}

#[test]
fn staging_degradation_stretches_the_run() {
    // A 90 % bandwidth cut over the input-staging phase slows TTC.
    let app = paper_bag(64, TaskDurationSpec::Uniform15Min);
    let strategy = paper::late_strategy(2);
    let degraded = FaultSpec {
        staging: Some(StagingFault {
            at_secs: 0.0,
            duration_secs: 3600.0,
            bandwidth_factor: 0.02,
        }),
        ..FaultSpec::none()
    };
    let clean =
        run_application(&pool(), &app, &strategy, &opts(17, FaultSpec::none(), None)).unwrap();
    let slow = run_application(&pool(), &app, &strategy, &opts(17, degraded, None)).unwrap();
    assert_eq!(slow.units_done, 64);
    assert!(
        slow.breakdown.ttc > clean.breakdown.ttc,
        "degraded {:?} vs clean {:?}",
        slow.breakdown.ttc,
        clean.breakdown.ttc
    );
}

#[test]
fn noop_fault_spec_and_recovery_policy_leave_runs_untouched() {
    // A no-op spec plus a recovery policy must replay the exact legacy
    // event streams: fault support is free when unused.
    let app = paper_bag(32, TaskDurationSpec::Gaussian);
    let strategy = paper::late_strategy(2);
    let legacy = run_application(
        &paper::testbed(),
        &app,
        &strategy,
        &RunOptions {
            seed: 23,
            submit_at: SimTime::from_secs(4.0 * 3600.0),
            ..Default::default()
        },
    )
    .unwrap();
    let gated = run_application(
        &paper::testbed(),
        &app,
        &strategy,
        &RunOptions {
            seed: 23,
            submit_at: SimTime::from_secs(4.0 * 3600.0),
            faults: Some(FaultSpec::none()),
            recovery: Some(RecoveryPolicy::default()),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(legacy.breakdown, gated.breakdown);
    assert_eq!(legacy.pilot_setup_secs, gated.pilot_setup_secs);
    assert_eq!(legacy.resources_used, gated.resources_used);
    assert_eq!(gated.replacements, 0);
    assert_eq!(gated.breakdown.tr, SimDuration::ZERO);
}

#[test]
fn identical_seeds_identical_recovery_traces() {
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let faults = FaultSpec {
        unit_failure_chance: 0.2,
        ..outage_spec(OutageKind::Outage)
    };
    let run = || {
        run_application(
            &pool(),
            &app,
            &pinned_strategy(),
            &opts(29, faults.clone(), Some(RecoveryPolicy::default())),
        )
    };
    // Whether this schedule heals or drains the pool, the replay must
    // follow the identical trajectory.
    match (run(), run()) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.breakdown, b.breakdown);
            assert_eq!(a.restarts, b.restarts);
            assert_eq!(a.replacements, b.replacements);
            assert_eq!(a.wasted_core_hours, b.wasted_core_hours);
            assert_eq!(a.mean_recovery_secs, b.mean_recovery_secs);
        }
        (Err(a), Err(b)) => assert_eq!(a, b),
        (a, b) => panic!("diverging replays: {a:?} vs {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random fault schedules: the run either completes with every unit
    /// accounted for (retry bounds respected) or surfaces a typed error —
    /// and the same seed always reproduces the same outcome.
    #[test]
    fn random_fault_schedules_never_hang_or_lose_units(
        seed in 0u64..1_000,
        unit_chance in 0.0f64..0.35,
        outages_per_resource in 0.0f64..1.5,
    ) {
        let app = paper_bag(8, TaskDurationSpec::Uniform15Min);
        let strategy = paper::late_strategy(2);
        let faults = FaultSpec {
            random_outages_per_resource: outages_per_resource,
            random_outage_duration_secs: (300.0, 900.0),
            horizon_secs: 4.0 * 3600.0,
            unit_failure_chance: unit_chance,
            ..FaultSpec::none()
        };
        let run = || run_application(
            &pool(),
            &app,
            &strategy,
            &opts(seed, faults.clone(), Some(RecoveryPolicy::default())),
        );
        let first = run();
        match &first {
            Ok(r) => {
                // No unit lost: every one of the 8 ends terminal.
                prop_assert_eq!(r.units_done + r.units_failed, 8);
                // Retry bound: at most max_attempts (3) restarts per unit.
                prop_assert!(r.restarts <= 3 * 8, "restarts {}", r.restarts);
            }
            Err(e) => {
                prop_assert!(
                    matches!(
                        e,
                        RunError::PilotsDrained { .. }
                            | RunError::ResourceLost { .. }
                            | RunError::DeadlineExceeded { .. }
                    ),
                    "unexpected error class: {e}"
                );
            }
        }
        // Identical seed → identical recovery trace.
        let second = run();
        match (&first, &second) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.breakdown, &b.breakdown);
                prop_assert_eq!(a.restarts, b.restarts);
                prop_assert_eq!(a.replacements, b.replacements);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            _ => prop_assert!(false, "one run succeeded, the replay failed"),
        }
    }
}
