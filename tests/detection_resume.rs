//! Failure detection and journal-based resume through the full
//! middleware stack: signal-driven recovery (no oracle), detector false
//! positives under heartbeat delay, and — the crash-consistency bar —
//! a run killed mid-flight and resumed from its torn journal reaching a
//! TTC bit-identical to the same-seed uninterrupted run, across random
//! fault schedules.

use std::cell::RefCell;
use std::rc::Rc;

use aimes_repro::cluster::ClusterConfig;
use aimes_repro::fault::{FaultSpec, HeartbeatDelaySpec, OutageKind, OutageSpec, RecoveryPolicy};
use aimes_repro::middleware::paper;
use aimes_repro::middleware::{
    resume_application, run_application, RunError, RunJournal, RunOptions,
};
use aimes_repro::sim::{SimDuration, SimTime};
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};
use aimes_repro::strategy::ResourceSelection;
use proptest::prelude::*;

fn pool() -> Vec<ClusterConfig> {
    vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
    ]
}

/// One 16-task bag pinned to resource "one" so faults there matter.
fn pinned_strategy() -> aimes_repro::strategy::ExecutionStrategy {
    let mut strategy = paper::late_strategy(1);
    strategy.selection = ResourceSelection::Fixed(vec!["one".into()]);
    strategy
}

fn opts(seed: u64, faults: FaultSpec, recovery: Option<RecoveryPolicy>) -> RunOptions {
    RunOptions {
        seed,
        submit_at: SimTime::from_secs(600.0),
        faults: Some(faults),
        recovery,
        ..Default::default()
    }
}

#[test]
fn heartbeat_delay_causes_false_suspicion_but_no_replacement() {
    // A slow WAN window delays heartbeats by 200 s — past the 150 s
    // suspicion threshold but short of the 300 s declaration threshold.
    // The detector must suspect, then stand down when the late heartbeat
    // lands: a false positive with no client-visible consequences.
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let faults = FaultSpec {
        heartbeat_delays: vec![HeartbeatDelaySpec {
            resource: "one".into(),
            at_secs: 120.0,
            duration_secs: 600.0,
            delay_secs: 200.0,
        }],
        ..FaultSpec::none()
    };
    let r = run_application(
        &pool(),
        &app,
        &pinned_strategy(),
        &opts(17, faults, Some(RecoveryPolicy::with_detection())),
    )
    .unwrap();
    assert_eq!(r.units_done, 16, "a slow link must not lose work");
    assert!(
        r.false_suspicions >= 1,
        "the delayed heartbeats must trip the suspicion threshold"
    );
    assert_eq!(
        r.replacements, 0,
        "a suspicion that recovers must not launch a replacement"
    );
    assert_eq!(r.replans, 0, "nor re-derive the strategy");
}

#[test]
fn detection_driven_recovery_matches_oracle_outcome() {
    // Same permanent loss, two recovery modes. The oracle reacts at the
    // injection instant; the detector pays a Td measured from missed
    // heartbeats. Both must finish the whole bag, and the detector's
    // extra cost must be visible as Td in the TTC decomposition.
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let faults = FaultSpec {
        outages: vec![OutageSpec {
            resource: "one".into(),
            at_secs: 300.0,
            duration_secs: 600.0,
            kind: OutageKind::Permanent,
        }],
        ..FaultSpec::none()
    };
    let oracle = run_application(
        &pool(),
        &app,
        &pinned_strategy(),
        &opts(19, faults.clone(), Some(RecoveryPolicy::default())),
    )
    .unwrap();
    let detected = run_application(
        &pool(),
        &app,
        &pinned_strategy(),
        &opts(19, faults, Some(RecoveryPolicy::with_detection())),
    )
    .unwrap();
    assert_eq!(oracle.units_done, 16);
    assert_eq!(detected.units_done, 16);
    assert_eq!(oracle.breakdown.td, SimDuration::ZERO);
    assert!(
        detected.breakdown.td > SimDuration::ZERO,
        "detection latency must appear in the decomposition"
    );
    assert!(detected.mean_detection_secs > 0.0);
    assert!(
        detected.breakdown.ttc >= oracle.breakdown.ttc,
        "noticing late can never beat the oracle"
    );
}

/// Run a scenario three ways — uninterrupted baseline, interrupted at
/// `interrupt_secs` with a journal, then resumed from the torn journal —
/// and require the resumed outcome to be bit-identical to the baseline.
fn check_resume_determinism(
    seed: u64,
    faults: &FaultSpec,
    interrupt_secs: f64,
    torn_tail_chars: usize,
) {
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let recovery = Some(RecoveryPolicy::with_detection());
    let baseline = run_application(
        &pool(),
        &app,
        &pinned_strategy(),
        &opts(seed, faults.clone(), recovery.clone()),
    );

    let journal = Rc::new(RefCell::new(RunJournal::new()));
    let mut interrupted_opts = opts(seed, faults.clone(), recovery);
    interrupted_opts.journal = Some(journal.clone());
    interrupted_opts.interrupt_at = Some(SimDuration::from_secs(interrupt_secs));
    let interrupted = run_application(&pool(), &app, &pinned_strategy(), &interrupted_opts);

    match interrupted {
        Err(RunError::Interrupted { .. }) => {
            // Crash-consistency: tear the journal's tail as a mid-append
            // crash would, keep the valid prefix, resume from it.
            let mut text = journal.borrow().to_jsonl();
            let cut = text.len().saturating_sub(torn_tail_chars);
            text.truncate(cut);
            let recovered = RunJournal::from_jsonl(&text);
            let resumed = resume_application(
                &pool(),
                &app,
                &pinned_strategy(),
                &interrupted_opts,
                &recovered,
            );
            match (&baseline, &resumed) {
                (Ok(b), Ok(r)) => {
                    assert_eq!(
                        b.breakdown, r.breakdown,
                        "resumed TTC decomposition must be bit-identical"
                    );
                    assert_eq!(b.units_done, r.units_done);
                    assert_eq!(b.replans, r.replans);
                    assert_eq!(b.false_suspicions, r.false_suspicions);
                }
                (Err(b), Err(r)) => {
                    assert_eq!(b.to_string(), r.to_string(), "errors must replay too");
                }
                _ => panic!(
                    "baseline and resume disagree on the outcome: \
                     baseline {baseline:?} vs resumed {resumed:?}"
                ),
            }
        }
        // The run finished (or failed for real) before the interrupt
        // fired; it must then agree with the baseline outright.
        Ok(r) => {
            let b = baseline.expect("interrupted arm succeeded, baseline must too");
            assert_eq!(b.breakdown, r.breakdown);
        }
        Err(e) => {
            let b = baseline.expect_err("interrupted arm failed, baseline must too");
            assert_eq!(b.to_string(), e.to_string());
        }
    }
}

#[test]
fn resume_after_midflight_kill_replays_to_identical_ttc() {
    let faults = FaultSpec {
        outages: vec![OutageSpec {
            resource: "one".into(),
            at_secs: 300.0,
            duration_secs: 600.0,
            kind: OutageKind::Permanent,
        }],
        ..FaultSpec::none()
    };
    check_resume_determinism(23, &faults, 700.0, 10);
}

/// Proptest depth: shallow by default so `cargo test` stays fast for the
/// edit-compile loop; the chaos-smoke CI job sets `AIMES_FULL_PROPTEST=1`
/// to run the full-depth sweep.
fn proptest_cases() -> u32 {
    match std::env::var("AIMES_FULL_PROPTEST") {
        Ok(v) if !v.is_empty() && v != "0" => 256,
        _ => 8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]

    /// The crash-consistency invariant under *random* fault schedules:
    /// whatever the faults did, killing the run mid-flight and resuming
    /// from the torn journal reproduces the uninterrupted outcome
    /// exactly — same TTC decomposition bit-for-bit, or the same error.
    #[test]
    fn resume_is_deterministic_across_random_fault_schedules(
        seed in 0u64..1000,
        unit_failure in 0.0f64..0.3,
        outages_per_resource in 0.0f64..1.5,
        permanent_loss in any::<bool>(),
        interrupt_secs in 150.0f64..2500.0,
        torn_tail_chars in 0usize..60,
    ) {
        let faults = FaultSpec {
            unit_failure_chance: unit_failure,
            random_outages_per_resource: outages_per_resource,
            random_outage_duration_secs: (120.0, 600.0),
            horizon_secs: 2400.0,
            outages: if permanent_loss {
                vec![OutageSpec {
                    resource: "one".into(),
                    at_secs: 300.0,
                    duration_secs: 600.0,
                    kind: OutageKind::Permanent,
                }]
            } else {
                Vec::new()
            },
            ..FaultSpec::none()
        };
        check_resume_determinism(seed, &faults, interrupt_secs, torn_tail_chars);
    }
}
