//! Failure-path integration: pilot death, unit restarts, unplannable
//! strategies, and deadline handling through the full middleware stack.

use aimes_repro::cluster::ClusterConfig;
use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, RunOptions};
use aimes_repro::sim::{SimDuration, SimTime};
use aimes_repro::skeleton::{bag_of_tasks, paper_bag, TaskDurationSpec};
use aimes_repro::strategy::{ExecutionStrategy, PilotSizing, ResourceSelection};
use aimes_repro::workload::Distribution;

fn opts(seed: u64) -> RunOptions {
    RunOptions {
        seed,
        submit_at: SimTime::from_secs(4.0 * 3600.0),
        ..Default::default()
    }
}

#[test]
fn unplannable_strategy_is_reported_not_hung() {
    // 6 pilots wanted, 5 resources exist.
    let app = paper_bag(64, TaskDurationSpec::Uniform15Min);
    let mut strategy = paper::late_strategy(5);
    strategy.pilot_count = 6;
    let err = run_application(&paper::testbed(), &app, &strategy, &opts(1)).unwrap_err();
    assert!(err.contains("qualify"), "{err}");
}

#[test]
fn round_robin_into_short_pilots_restarts_units() {
    // Explicitly under-requested walltimes (FixedSecs) force pilot death
    // mid-execution under round robin: 16 tasks of 1800 s on two 4-core
    // pilots need four 1800 s waves, but each pilot lives only 2500 s —
    // the second wave is interrupted. Units restart but no pilot remains,
    // so the run ends in a reported error, never a hang.
    let pool: Vec<ClusterConfig> = vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
    ];
    let app = bag_of_tasks(
        "long-tasks",
        16,
        Distribution::Constant { value: 1800.0 },
        1.0,
        0.002,
    );
    let mut strategy = ExecutionStrategy::paper_late(2);
    strategy.scheduler = aimes_repro::pilot::UnitScheduler::RoundRobin;
    strategy.sizing = PilotSizing::Fixed(4);
    strategy.walltime = aimes_repro::strategy::WalltimePolicy::FixedSecs(2500);
    let err = run_application(&pool, &app, &strategy, &opts(2)).unwrap_err();
    assert!(
        err.contains("drained") || err.contains("deadline"),
        "expected a surfaced failure, got: {err}"
    );
}

#[test]
fn backfill_avoids_walltime_violations_entirely() {
    // Same pool, same app, but the AIMES backfill scheduler refuses to
    // place tasks that cannot finish in the remaining walltime.
    let pool: Vec<ClusterConfig> = vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
    ];
    let app = bag_of_tasks(
        "long-tasks",
        16,
        Distribution::Constant { value: 1800.0 },
        1.0,
        0.002,
    );
    let mut strategy = ExecutionStrategy::paper_late(2);
    strategy.sizing = PilotSizing::Fixed(8);
    let r = run_application(&pool, &app, &strategy, &opts(3)).unwrap();
    assert_eq!(r.units_done, 16);
    assert_eq!(r.restarts, 0, "backfill never schedules into doomed pilots");
}

#[test]
fn fixed_selection_on_nonexistent_resource_errors() {
    let app = paper_bag(8, TaskDurationSpec::Uniform15Min);
    let mut strategy = paper::late_strategy(2);
    strategy.selection = ResourceSelection::Fixed(vec!["atlantis".into()]);
    let err = run_application(&paper::testbed(), &app, &strategy, &opts(4)).unwrap_err();
    assert!(err.contains("unknown resource"), "{err}");
}

#[test]
fn deadline_guard_fires_instead_of_hanging() {
    // A pool so small the application cannot finish in time: one 8-core
    // machine, 64 tasks x 15 min → 2 h minimum, deadline 30 min.
    let pool = vec![ClusterConfig::test("tiny", 8)];
    let app = paper_bag(64, TaskDurationSpec::Uniform15Min);
    let mut strategy = ExecutionStrategy::paper_late(2);
    strategy.pilot_count = 1;
    strategy.sizing = PilotSizing::Fixed(8);
    let err = run_application(
        &pool,
        &app,
        &strategy,
        &RunOptions {
            seed: 5,
            submit_at: SimTime::from_secs(60.0),
            deadline: SimDuration::from_mins(30.0),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("deadline"), "{err}");
}

#[test]
fn saturated_pool_still_completes_within_generous_deadline() {
    // The real testbed at a busy instant — large app, must still finish.
    let app = paper_bag(2048, TaskDurationSpec::Gaussian);
    let r = run_application(&paper::testbed(), &app, &paper::late_strategy(3), &opts(6)).unwrap();
    assert_eq!(r.units_done + r.units_failed, 2048);
    assert_eq!(r.units_failed, 0);
}
