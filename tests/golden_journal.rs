//! Golden-journal determinism: fixed-seed runs of the paper experiments
//! (and one faulty recovery run) must produce byte-identical journals —
//! across repeated runs in one process, across processes (the per-process
//! `HashMap` hash seed must never reach scheduler inputs or journals),
//! and across the incremental-scheduler optimizations in this tree. The
//! digests below were captured from the minimal deterministically-ordered
//! implementation; any optimization that changes them changed observable
//! behavior, not just speed.

use std::cell::RefCell;
use std::rc::Rc;

use aimes_repro::cluster::ClusterConfig;
use aimes_repro::fault::{FaultSpec, OutageKind, OutageSpec, RecoveryPolicy};
use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, RunJournal, RunOptions};
use aimes_repro::sim::SimTime;
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};
use aimes_repro::strategy::ResourceSelection;

fn pool() -> Vec<ClusterConfig> {
    vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
        ClusterConfig::test("three", 512),
    ]
}

/// FNV-1a 64 over the journal's JSONL serialization: cheap, dependency-
/// free, and sensitive to any byte-level change in entry content/order.
fn digest(journal: &RunJournal) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in journal.to_jsonl().as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn run_with_journal(
    strategy: &aimes_repro::strategy::ExecutionStrategy,
    spec: TaskDurationSpec,
    n_tasks: u32,
    seed: u64,
    faults: Option<FaultSpec>,
    recovery: Option<RecoveryPolicy>,
) -> RunJournal {
    let app = paper_bag(n_tasks, spec);
    let journal = Rc::new(RefCell::new(RunJournal::new()));
    let options = RunOptions {
        seed,
        submit_at: SimTime::from_secs(600.0),
        faults,
        recovery,
        journal: Some(Rc::clone(&journal)),
        ..Default::default()
    };
    run_application(&pool(), &app, strategy, &options).expect("golden run completes");
    let out = journal.borrow().clone();
    out
}

fn exp1_journal() -> RunJournal {
    // Experiment-1 shape: constant 15-minute tasks, early binding.
    run_with_journal(
        &paper::early_strategy(),
        TaskDurationSpec::Uniform15Min,
        32,
        101,
        None,
        None,
    )
}

fn exp4_journal() -> RunJournal {
    // Experiment-4 shape: Gaussian durations, late binding over 3 pilots.
    run_with_journal(
        &paper::late_strategy(3),
        TaskDurationSpec::Gaussian,
        32,
        404,
        None,
        None,
    )
}

fn faulty_recovery_journal() -> RunJournal {
    // A permanent outage on the pinned resource, detected (not oracled)
    // and recovered — exercises kill ordering, blacklist, and re-plan
    // paths, all of which are journal-visible.
    let mut strategy = paper::late_strategy(2);
    strategy.selection = ResourceSelection::Fixed(vec!["one".into()]);
    let faults = FaultSpec {
        outages: vec![OutageSpec {
            resource: "one".into(),
            at_secs: 300.0,
            duration_secs: 600.0,
            kind: OutageKind::Permanent,
        }],
        ..FaultSpec::none()
    };
    run_with_journal(
        &strategy,
        TaskDurationSpec::Uniform15Min,
        16,
        777,
        Some(faults),
        Some(RecoveryPolicy::with_detection()),
    )
}

// Recaptured when the journal schema gained pilot placement (resource,
// cores) and unit core counts for post-mortem analytics: the event
// *sequence* is unchanged, but entries serialize with the extra fields.
const GOLDEN_EXP1: &str = "3d15343bf1674af7";
const GOLDEN_EXP4: &str = "858928bcee50a118";
const GOLDEN_FAULTY: &str = "978899a2c7723d7d";

fn check_golden(label: &str, journal: &RunJournal, expected: &str) {
    assert!(!journal.is_empty(), "{label}: journal must not be empty");
    journal.verify().expect("journal integrity");
    let got = digest(journal);
    assert_eq!(
        got, expected,
        "{label}: journal digest drifted (got {got}, pinned {expected}) — \
         an optimization changed observable scheduling behavior"
    );
}

#[test]
fn exp1_journal_matches_golden_digest() {
    check_golden("exp1", &exp1_journal(), GOLDEN_EXP1);
}

#[test]
fn exp4_journal_matches_golden_digest() {
    check_golden("exp4", &exp4_journal(), GOLDEN_EXP4);
}

#[test]
fn faulty_recovery_journal_matches_golden_digest() {
    check_golden("faulty-recovery", &faulty_recovery_journal(), GOLDEN_FAULTY);
}

#[test]
fn recorder_on_journal_is_bit_identical_to_golden() {
    // The flight recorder is always on, but this pins the stronger claim:
    // even with a deliberately tiny ring (constant rotation, every event
    // serialized into it) the journal digest is unchanged — recording is
    // strictly passive, no events, no RNG draws.
    let mut strategy = paper::late_strategy(2);
    strategy.selection = ResourceSelection::Fixed(vec!["one".into()]);
    let faults = FaultSpec {
        outages: vec![OutageSpec {
            resource: "one".into(),
            at_secs: 300.0,
            duration_secs: 600.0,
            kind: OutageKind::Permanent,
        }],
        ..FaultSpec::none()
    };
    let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
    let journal = Rc::new(RefCell::new(RunJournal::new()));
    let options = RunOptions {
        seed: 777,
        submit_at: SimTime::from_secs(600.0),
        faults: Some(faults),
        recovery: Some(RecoveryPolicy::with_detection()),
        journal: Some(Rc::clone(&journal)),
        recorder_capacity: 8,
        ..Default::default()
    };
    run_application(&pool(), &app, &strategy, &options).expect("golden run completes");
    let out = journal.borrow().clone();
    check_golden("faulty-recovery+recorder", &out, GOLDEN_FAULTY);
}

#[test]
fn same_seed_runs_produce_identical_journals() {
    // Two fresh executions in the same process: any dependence on
    // allocation addresses, map iteration order, or leftover state shows
    // up as a byte difference here. Cross-process stability (varying
    // hash seeds) is covered by the pinned digests above.
    let a = faulty_recovery_journal();
    let b = faulty_recovery_journal();
    assert_eq!(
        a.to_jsonl(),
        b.to_jsonl(),
        "same-seed journals diverged within one process"
    );
    let c = exp4_journal();
    let d = exp4_journal();
    assert_eq!(c.to_jsonl(), d.to_jsonl());
}
