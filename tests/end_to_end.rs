//! End-to-end integration: every Table I strategy through the full stack
//! (skeleton → bundle → execution manager → pilots → SAGA → simulated
//! clusters) on the real testbed catalog.

use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, RunOptions};
use aimes_repro::sim::SimTime;
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};

fn opts(seed: u64) -> RunOptions {
    RunOptions {
        seed,
        submit_at: SimTime::from_secs(8.0 * 3600.0),
        ..Default::default()
    }
}

#[test]
fn all_four_paper_strategies_complete_on_the_testbed() {
    let cases = [
        (paper::early_strategy(), TaskDurationSpec::Uniform15Min),
        (paper::early_strategy(), TaskDurationSpec::Gaussian),
        (paper::late_strategy(3), TaskDurationSpec::Uniform15Min),
        (paper::late_strategy(3), TaskDurationSpec::Gaussian),
    ];
    for (i, (strategy, spec)) in cases.iter().enumerate() {
        let app = paper_bag(64, *spec);
        let r = run_application(&paper::testbed(), &app, strategy, &opts(100 + i as u64))
            .unwrap_or_else(|e| panic!("case {i} failed: {e}"));
        assert_eq!(r.units_done, 64, "case {i}");
        assert_eq!(r.units_failed, 0, "case {i}");
        // Decomposition invariants.
        let b = &r.breakdown;
        assert!(b.tw <= b.ttc, "case {i}: Tw exceeds TTC");
        assert!(b.tx <= b.ttc, "case {i}: Tx exceeds TTC");
        assert!(b.ts <= b.ttc, "case {i}: Ts exceeds TTC");
        assert!(
            b.tw + b.tx + b.ts >= b.ttc,
            "case {i}: union components must cover the run (within overlap)"
        );
        // Execution of 64 x >=1 min tasks takes at least a task length.
        assert!(b.tx.as_secs() >= 60.0, "case {i}");
    }
}

#[test]
fn early_uses_one_resource_late_uses_three() {
    let app = paper_bag(32, TaskDurationSpec::Uniform15Min);
    let early =
        run_application(&paper::testbed(), &app, &paper::early_strategy(), &opts(5)).unwrap();
    assert_eq!(early.resources_used.len(), 1);
    assert_eq!(early.pilot_setup_secs.len(), 1);

    let late =
        run_application(&paper::testbed(), &app, &paper::late_strategy(3), &opts(5)).unwrap();
    let mut distinct = late.resources_used.clone();
    distinct.sort();
    distinct.dedup();
    assert_eq!(distinct.len(), 3);
}

#[test]
fn full_stack_is_deterministic() {
    let app = paper_bag(32, TaskDurationSpec::Gaussian);
    let run =
        || run_application(&paper::testbed(), &app, &paper::late_strategy(3), &opts(77)).unwrap();
    let a = run();
    let b = run();
    assert_eq!(a.breakdown, b.breakdown);
    assert_eq!(a.resources_used, b.resources_used);
    assert_eq!(a.pilot_setup_secs, b.pilot_setup_secs);
    assert_eq!(a.restarts, b.restarts);
}

#[test]
fn different_seeds_face_different_queues() {
    let app = paper_bag(32, TaskDurationSpec::Uniform15Min);
    let ttcs: Vec<f64> = (0..4)
        .map(|s| {
            run_application(&paper::testbed(), &app, &paper::late_strategy(3), &opts(s))
                .unwrap()
                .breakdown
                .ttc
                .as_secs()
        })
        .collect();
    let min = ttcs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ttcs.iter().cloned().fold(0.0, f64::max);
    assert!(max > min, "seeds should differ: {ttcs:?}");
}

#[test]
fn trace_records_full_pilot_and_unit_lifecycles() {
    let app = paper_bag(8, TaskDurationSpec::Uniform15Min);
    // trace: true exercises the instrumented path end to end.
    let r = run_application(
        &paper::testbed(),
        &app,
        &paper::late_strategy(2),
        &RunOptions {
            seed: 3,
            submit_at: SimTime::from_secs(6.0 * 3600.0),
            trace: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(r.units_done, 8);
}

#[test]
fn tiny_and_large_applications_both_work() {
    for n in [8u32, 1024] {
        let app = paper_bag(n, TaskDurationSpec::Uniform15Min);
        let r = run_application(&paper::testbed(), &app, &paper::late_strategy(3), &opts(9))
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
        assert_eq!(r.units_done as u32, n);
    }
}
