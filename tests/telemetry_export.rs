//! Telemetry exporter coverage: a fixed-seed mini-run must emit a
//! schema-valid Chrome trace (Perfetto-loadable), a metrics summary with
//! the promised families, and — because telemetry is strictly passive —
//! the exact same journal as an uninstrumented run. The golden digest at
//! the bottom pins the trace bytes: any change to span assembly, track
//! numbering, or the writer is observable, not incidental.

use std::cell::RefCell;
use std::rc::Rc;

use aimes_repro::cluster::ClusterConfig;
use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, RunJournal, RunOptions, RunResult};
use aimes_repro::sim::{SimTime, Telemetry};
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};

fn pool() -> Vec<ClusterConfig> {
    vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
    ]
}

/// FNV-1a 64 over arbitrary bytes (same digest as the golden-journal
/// suite uses for JSONL).
fn fnv(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The fixed-seed mini-run every test in this file looks at.
fn mini_run(telemetry: Option<Telemetry>) -> (RunResult, RunJournal) {
    let app = paper_bag(12, TaskDurationSpec::Uniform15Min);
    let journal = Rc::new(RefCell::new(RunJournal::new()));
    let options = RunOptions {
        seed: 7,
        submit_at: SimTime::from_secs(600.0),
        journal: Some(Rc::clone(&journal)),
        telemetry,
        ..Default::default()
    };
    let result = run_application(&pool(), &app, &paper::late_strategy(2), &options)
        .expect("mini run completes");
    let out = journal.borrow().clone();
    (result, out)
}

#[test]
fn telemetry_is_passive() {
    // Instrumentation must not schedule events or draw RNG: the journal
    // (the full causal record of the run) is byte-identical either way,
    // and so is the result.
    let (bare, bare_journal) = mini_run(None);
    let (instrumented, instrumented_journal) = mini_run(Some(Telemetry::new()));
    assert_eq!(bare_journal.to_jsonl(), instrumented_journal.to_jsonl());
    assert_eq!(bare.breakdown.ttc, instrumented.breakdown.ttc);
    assert!(bare.metrics.is_none());
    assert!(instrumented.metrics.is_some());
}

#[test]
fn metrics_summary_has_promised_families() {
    let telemetry = Telemetry::new();
    let (result, _) = mini_run(Some(telemetry));
    let summary = result.metrics.expect("telemetry attached");

    // Utilization and queue-depth timelines for every pool resource.
    for resource in ["one", "two"] {
        assert!(
            summary
                .gauges
                .contains_key(&format!("cluster.{resource}.utilization")),
            "missing utilization gauge for {resource}"
        );
        assert!(
            summary
                .gauges
                .contains_key(&format!("cluster.{resource}.queue_depth")),
            "missing queue-depth gauge for {resource}"
        );
    }

    // At least three counter families (`layer.component.metric` with the
    // component collapsed) and two histogram families.
    let family = |name: &str| {
        let parts: Vec<&str> = name.split('.').collect();
        format!("{}.{}", parts.first().unwrap(), parts.last().unwrap())
    };
    let counter_families: std::collections::BTreeSet<String> =
        summary.counters.keys().map(|k| family(k)).collect();
    assert!(
        counter_families.len() >= 3,
        "want >=3 counter families, got {counter_families:?}"
    );
    let histogram_families: std::collections::BTreeSet<String> = summary
        .histograms
        .keys()
        .map(|k| k.rsplit_once('.').unwrap().0.to_string())
        .collect();
    assert!(
        histogram_families.len() >= 2,
        "want >=2 histogram families (pilot.dwell, unit.dwell), got {histogram_families:?}"
    );

    // Dwell histograms count every unit and pilot that passed through.
    assert_eq!(summary.histograms["unit.dwell.executing"].count, 12);
    assert!(summary.histograms["unit.dwell.executing"].p50 > 0.0);
}

#[test]
fn chrome_trace_is_schema_valid() {
    let telemetry = Telemetry::new();
    let (_, _) = mini_run(Some(telemetry.clone()));
    let mut buf = Vec::new();
    telemetry.write_chrome_trace(&mut buf).expect("writes");
    let text = String::from_utf8(buf).expect("utf-8");

    let value: serde::Value = serde_json::from_str(&text).expect("valid JSON");
    let events = value
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("array");
    assert!(!events.is_empty());

    // Every metadata event declares a (pid, tid) names; collect them.
    let mut declared: std::collections::BTreeSet<(u64, u64)> = Default::default();
    let mut last_x_ts = 0u64;
    let mut n_x = 0usize;
    let mut n_c = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph field");
        let pid = e.get("pid").and_then(|p| p.as_u64()).expect("pid field");
        match ph {
            "M" => {
                let tid = e.get("tid").and_then(|t| t.as_u64()).expect("tid");
                declared.insert((pid, tid));
                declared.insert((pid, 0));
            }
            "X" => {
                n_x += 1;
                let tid = e.get("tid").and_then(|t| t.as_u64()).expect("tid");
                assert!(
                    declared.contains(&(pid, tid)),
                    "span on undeclared lane ({pid},{tid})"
                );
                let ts = e.get("ts").and_then(|t| t.as_u64()).expect("integer ts");
                let _dur = e.get("dur").and_then(|d| d.as_u64()).expect("integer dur");
                assert!(ts >= last_x_ts, "span timestamps not monotone");
                last_x_ts = ts;
                assert!(e.get("name").and_then(|n| n.as_str()).is_some());
            }
            "C" => {
                n_c += 1;
                assert!(e.get("args").and_then(|a| a.get("value")).is_some());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(n_x > 0, "no spans emitted");
    assert!(n_c > 0, "no counter samples emitted");
}

#[test]
fn unit_spans_nest_inside_their_pilot() {
    let telemetry = Telemetry::new();
    let (_, _) = mini_run(Some(telemetry.clone()));
    let spans = telemetry.spans();
    let pilots: Vec<_> = spans.iter().filter(|s| s.category == "pilot").collect();
    let units: Vec<_> = spans.iter().filter(|s| s.category == "unit").collect();
    assert!(!pilots.is_empty());
    assert_eq!(units.len(), 12);
    for u in units {
        let owner = u
            .args
            .iter()
            .find(|(k, _)| k == "pilot")
            .map(|(_, v)| v.clone())
            .expect("unit span names its pilot");
        let p = pilots
            .iter()
            .find(|p| p.lane == owner)
            .unwrap_or_else(|| panic!("no pilot span for {owner}"));
        assert_eq!(u.track, p.track, "unit rendered off its pilot's resource");
        assert!(
            p.start <= u.start && u.end <= p.end,
            "unit window [{:?},{:?}] outside pilot [{:?},{:?}]",
            u.start,
            u.end,
            p.start,
            p.end
        );
    }
}

#[test]
fn chrome_trace_golden_digest() {
    // Pins the exact trace bytes for the fixed-seed mini-run. If a change
    // to span assembly or the exporter moves this digest on purpose,
    // regenerate with:
    //   cargo test --test telemetry_export chrome_trace_golden_digest -- --nocapture
    let telemetry = Telemetry::new();
    let (_, _) = mini_run(Some(telemetry.clone()));
    let mut buf = Vec::new();
    telemetry.write_chrome_trace(&mut buf).expect("writes");
    let digest = fnv(&buf);
    println!("chrome trace digest: {digest}");
    assert_eq!(digest, "48058fe95e986534");
}

#[test]
fn csv_export_parses() {
    let telemetry = Telemetry::new();
    let (_, _) = mini_run(Some(telemetry.clone()));
    let mut buf = Vec::new();
    telemetry.write_metrics_csv(&mut buf).expect("writes");
    let text = String::from_utf8(buf).expect("utf-8");
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("metric,time_secs,value"));
    let mut rows = 0usize;
    for line in lines {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 3, "bad CSV row {line:?}");
        cols[1].parse::<f64>().expect("numeric time");
        cols[2].parse::<f64>().expect("numeric value");
        rows += 1;
    }
    assert!(rows > 0);
}
