//! Integration tests for the post-mortem analytics engine: the TTC
//! closure oracle over real middleware runs, cross-validation against the
//! typed telemetry layer, critical-path determinism (pinned digest, same
//! style as golden_journal.rs), and the regression gate tripping on an
//! artificially injected slowdown.

use std::cell::RefCell;
use std::rc::Rc;

use aimes_repro::analytics;
use aimes_repro::cluster::ClusterConfig;
use aimes_repro::fault::{FaultSpec, OutageKind, OutageSpec, RecoveryPolicy, StagingFault};
use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, RunJournal, RunOptions};
use aimes_repro::sim::{SimTime, Telemetry};
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};
use aimes_repro::strategy::ResourceSelection;

fn pool() -> Vec<ClusterConfig> {
    vec![
        ClusterConfig::test("one", 256),
        ClusterConfig::test("two", 256),
        ClusterConfig::test("three", 512),
    ]
}

struct Captured {
    journal: RunJournal,
    telemetry: Telemetry,
    ttc_secs: f64,
}

fn run_instrumented(
    strategy: &aimes_repro::strategy::ExecutionStrategy,
    spec: TaskDurationSpec,
    n_tasks: u32,
    seed: u64,
    faults: Option<FaultSpec>,
    recovery: Option<RecoveryPolicy>,
) -> Captured {
    let app = paper_bag(n_tasks, spec);
    let journal = Rc::new(RefCell::new(RunJournal::new()));
    let telemetry = Telemetry::new();
    let options = RunOptions {
        seed,
        submit_at: SimTime::from_secs(600.0),
        faults,
        recovery,
        journal: Some(Rc::clone(&journal)),
        telemetry: Some(telemetry.clone()),
        ..Default::default()
    };
    let result = run_application(&pool(), &app, strategy, &options).expect("run completes");
    let out = journal.borrow().clone();
    Captured {
        journal: out,
        telemetry,
        ttc_secs: result.breakdown.ttc.as_secs(),
    }
}

fn exp1() -> Captured {
    run_instrumented(
        &paper::early_strategy(),
        TaskDurationSpec::Uniform15Min,
        32,
        101,
        None,
        None,
    )
}

fn exp4() -> Captured {
    run_instrumented(
        &paper::late_strategy(3),
        TaskDurationSpec::Gaussian,
        32,
        404,
        None,
        None,
    )
}

fn faulty() -> Captured {
    let mut strategy = paper::late_strategy(2);
    strategy.selection = ResourceSelection::Fixed(vec!["one".into()]);
    let faults = FaultSpec {
        outages: vec![OutageSpec {
            resource: "one".into(),
            at_secs: 300.0,
            duration_secs: 600.0,
            kind: OutageKind::Permanent,
        }],
        ..FaultSpec::none()
    };
    run_instrumented(
        &strategy,
        TaskDurationSpec::Uniform15Min,
        16,
        777,
        Some(faults),
        Some(RecoveryPolicy::with_detection()),
    )
}

/// The closure oracle: on every fixed-seed scenario — both clean paper
/// experiments and the detected-fault recovery run — the exclusive
/// components must sum to the simulator-reported TTC within 1e-6.
#[test]
fn ttc_closure_holds_on_fixed_seed_runs() {
    for (label, captured) in [("exp1", exp1()), ("exp4", exp4()), ("faulty", faulty())] {
        let report = analytics::analyze(&captured.journal, analytics::DEFAULT_EPSILON_SECS)
            .expect("journal analyzes");
        let closure = report.closure.expect("run finished, closure checkable");
        assert!(
            closure.holds,
            "{label}: closure broken — components sum to {} but simulator reported {} \
             (error {})",
            closure.component_sum_secs, closure.ttc_reported_secs, closure.error_secs
        );
        // The journal's TTC claim is itself the middleware's TTC.
        assert!(
            (closure.ttc_reported_secs - captured.ttc_secs).abs() < 1e-9,
            "{label}: journal and RunResult disagree on TTC"
        );
        // The critical path tiles the run, so it must reach the same total.
        assert!(
            (report.critical_path.total_secs - captured.ttc_secs).abs() < 1e-6,
            "{label}: critical path total {} != TTC {}",
            report.critical_path.total_secs,
            captured.ttc_secs
        );
    }
}

/// Torn journals must be analyzable, announce the damage, and refuse to
/// claim closure.
#[test]
fn torn_journal_is_analyzed_leniently() {
    let captured = exp1();
    let mut text = captured.journal.to_jsonl();
    let cut = text.len() - 40;
    text.truncate(cut);
    let report =
        analytics::analyze_jsonl(&text, analytics::DEFAULT_EPSILON_SECS).expect("lenient analysis");
    assert!(report.discarded_journal_lines >= 1);
    assert!(report.closure.is_none(), "no RunFinished, no closure claim");
    assert!(!report.closure_holds());
}

/// Cross-validation against the typed telemetry layer: total executing
/// seconds derived purely from journal timelines must equal the
/// `unit.dwell.executing` histogram's sum (count × mean) recorded live by
/// the unit manager.
#[test]
fn analytics_timelines_cross_validate_telemetry() {
    for captured in [exp1(), faulty()] {
        let tl = analytics::timeline::reconstruct(&captured.journal).expect("reconstructs");
        let derived: f64 = tl
            .units
            .values()
            .map(|u| u.dwell_in(analytics::timeline::UnitPhase::Executing))
            .sum();
        let summary = captured.telemetry.summary();
        let hist = &summary.histograms["unit.dwell.executing"];
        let live = hist.mean * hist.count as f64;
        assert!(
            (derived - live).abs() <= 1e-6 * live.max(1.0),
            "journal-derived executing seconds {derived} != telemetry {live}"
        );
        // Peak executing concurrency can never exceed the unit count.
        let peak = analytics::series::executing_units(&tl).peak();
        assert!(peak >= 1.0 && peak <= f64::from(tl.n_tasks));
    }
}

/// Critical-path determinism: for a fixed seed the extracted path is
/// byte-stable, pinned by digest exactly like the golden journals. A
/// drift here means timeline reconstruction or the walk itself changed
/// observable behavior.
#[test]
fn critical_path_digests_are_pinned() {
    const GOLDEN_CP_EXP1: &str = "c55e1539195dc56a";
    const GOLDEN_CP_FAULTY: &str = "23fc2693beeb6136";
    for (label, captured, expected) in [
        ("exp1", exp1(), GOLDEN_CP_EXP1),
        ("faulty", faulty(), GOLDEN_CP_FAULTY),
    ] {
        let report = analytics::analyze(&captured.journal, analytics::DEFAULT_EPSILON_SECS)
            .expect("analyzes");
        assert!(!report.critical_path.segments.is_empty());
        assert_eq!(
            report.critical_path.digest, expected,
            "{label}: critical-path digest drifted"
        );
        // Stability within one process too.
        let again = analytics::analyze(&captured.journal, analytics::DEFAULT_EPSILON_SECS)
            .expect("analyzes");
        assert_eq!(report.critical_path, again.critical_path);
    }
}

/// The faulty run's path must actually route through the failure: a
/// recovery or detection segment, and more than one resource.
#[test]
fn faulty_critical_path_shows_the_recovery() {
    let report =
        analytics::analyze(&faulty().journal, analytics::DEFAULT_EPSILON_SECS).expect("analyzes");
    let comps: Vec<&str> = report
        .critical_path
        .segments
        .iter()
        .map(|s| s.component.as_str())
        .collect();
    assert!(
        comps.contains(&"recovery") || comps.contains(&"detection"),
        "no recovery/detection segment in {comps:?}"
    );
    let mut resources: Vec<&str> = report
        .critical_path
        .segments
        .iter()
        .map(|s| s.resource.as_str())
        .filter(|r| !r.is_empty())
        .collect();
    resources.dedup();
    assert!(
        resources.len() > 1,
        "path never left the failed resource: {resources:?}"
    );
    // Detection time must be visible in the decomposition of this run.
    assert!(report.ttc.detection_secs > 0.0);
    assert!(report.restarts > 0);
}

/// The regression gate: an artificially injected slowdown (origin uplink
/// degraded to 5 % bandwidth for the whole run) must trip `diff` at a
/// 10 % threshold, while the unperturbed run compared to itself must not.
#[test]
fn diff_flags_injected_slowdown() {
    let base = exp1();
    let slow = run_instrumented(
        &paper::early_strategy(),
        TaskDurationSpec::Uniform15Min,
        32,
        101,
        Some(FaultSpec {
            staging: Some(StagingFault {
                at_secs: 0.0,
                duration_secs: 1e9,
                bandwidth_factor: 0.05,
            }),
            ..FaultSpec::none()
        }),
        None,
    );
    let ra = analytics::analyze(&base.journal, analytics::DEFAULT_EPSILON_SECS).unwrap();
    let rb = analytics::analyze(&slow.journal, analytics::DEFAULT_EPSILON_SECS).unwrap();
    assert!(
        slow.ttc_secs > base.ttc_secs,
        "staging degradation must actually slow the run"
    );

    let clean = analytics::diff::diff(&ra, &ra.clone(), 0.10);
    assert!(!clean.is_regression(), "identical runs must pass the gate");

    let d = analytics::diff::diff(&ra, &rb, 0.10);
    assert!(d.is_regression(), "slowdown must trip the gate");
    // The slowdown is attributed to staging, not execution: with constant
    // 15-minute tasks the staging component balloons while execution time
    // is untouched, so the gate names exactly the right component.
    assert!(
        d.regressions.iter().any(|r| r == "staging"),
        "staging regression must be named: {:?}",
        d.regressions
    );
    let staging = d.deltas.iter().find(|c| c.name == "staging").unwrap();
    assert!(staging.regressed && staging.b_secs > staging.a_secs);

    // Reversed order is an improvement and must pass.
    assert!(!analytics::diff::diff(&rb, &ra, 0.10).is_regression());
}

/// Analysis reports round-trip through JSON — the contract `analyze
/// --out` and `analytics-diff` rely on.
#[test]
fn analysis_report_serializes_for_the_cli() {
    let report = analytics::analyze(&exp4().journal, analytics::DEFAULT_EPSILON_SECS).unwrap();
    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let back: analytics::AnalysisReport = serde_json::from_str(&json).expect("parses");
    assert_eq!(report, back);
    assert_eq!(back.schema, analytics::SCHEMA);
}
