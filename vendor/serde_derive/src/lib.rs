//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Built directly on `proc_macro` because the air-gapped build cannot fetch
//! `syn`/`quote`. The parser covers exactly the shapes this workspace
//! derives on — non-generic named-field structs, tuple structs, and enums
//! with unit/newtype/tuple/struct variants — plus the attribute subset in
//! use: `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(rename_all = "snake_case")]`, and `#[serde(tag = "...")]`
//! (internally tagged enums). Anything else fails loudly at compile time
//! rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Container {
    name: String,
    /// `#[serde(tag = "...")]`: internally tagged enum representation.
    tag: Option<String>,
    /// `#[serde(rename_all = "snake_case")]` on the container.
    snake_case: bool,
    data: Data,
}

enum Data {
    NamedStruct(Vec<Field>),
    /// Tuple struct with this arity (1 = newtype).
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `Some(None)` = `#[serde(default)]`; `Some(Some(path))` = callable.
    default: Option<Option<String>>,
    /// Field type is spelled `Option<...>`: missing keys read as `None`,
    /// matching real serde's implicit behaviour for options.
    is_option: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Keys (and optional string values) of one `#[serde(...)]` attribute list.
fn parse_serde_attr(group: TokenStream) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let mut iter = group.into_iter().peekable();
    while let Some(tok) = iter.next() {
        let TokenTree::Ident(key) = tok else { continue };
        let mut value = None;
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            iter.next();
            if let Some(TokenTree::Literal(lit)) = iter.next() {
                value = Some(unquote(&lit.to_string()));
            }
        }
        out.push((key.to_string(), value));
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
    }
    out
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Consume one leading attribute (`#[...]`); returns its serde keys if it
/// was a serde attribute.
fn take_attr(iter: &mut Tokens) -> Vec<(String, Option<String>)> {
    // Caller consumed '#'; bracket group follows.
    let Some(TokenTree::Group(g)) = iter.next() else {
        panic!("serde shim derive: malformed attribute");
    };
    let mut inner = g.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => match inner.next() {
            Some(TokenTree::Group(args)) => parse_serde_attr(args.stream()),
            _ => Vec::new(),
        },
        _ => Vec::new(),
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...), if present.
fn skip_visibility(iter: &mut Tokens) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Parse the fields of a `{ ... }` struct body (also used for struct
/// variants).
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let mut default = None;
        // Attributes.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            for (key, value) in take_attr(&mut iter) {
                if key == "default" {
                    default = Some(value);
                }
            }
        }
        skip_visibility(&mut iter);
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde shim derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        // Swallow the type: everything up to a comma at angle-bracket
        // depth zero. Only the head identifier matters (Option detection).
        let mut angle_depth = 0i32;
        let mut head: Option<String> = None;
        while let Some(tok) = iter.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Ident(id) if head.is_none() => head = Some(id.to_string()),
                _ => {}
            }
            iter.next();
        }
        fields.push(Field {
            name: name.to_string(),
            default,
            is_option: head.as_deref() == Some("Option"),
        });
    }
    fields
}

/// Arity of a tuple body `( ... )`: the number of comma-separated types.
fn tuple_arity(body: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    let mut pending = false;
    for tok in body {
        saw_tokens = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                pending = false;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            _ => {}
        }
        pending = true;
    }
    if pending {
        arity += 1;
    }
    if !saw_tokens {
        0
    } else {
        arity
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Variant attributes (doc comments etc.) — nothing to keep.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            take_attr(&mut iter);
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

fn parse_container(input: TokenStream) -> Container {
    let mut iter: Tokens = input.into_iter().peekable();
    let mut tag = None;
    let mut snake_case = false;

    // Container attributes, visibility, then `struct`/`enum`.
    let is_enum = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                for (key, value) in take_attr(&mut iter) {
                    match (key.as_str(), value) {
                        ("tag", Some(v)) => tag = Some(v),
                        ("rename_all", Some(v)) => {
                            assert_eq!(
                                v, "snake_case",
                                "serde shim derive: only rename_all = \"snake_case\" is supported"
                            );
                            snake_case = true;
                        }
                        _ => {}
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => {}
            None => panic!("serde shim derive: no struct/enum found"),
        }
    };

    let Some(TokenTree::Ident(name)) = iter.next() else {
        panic!("serde shim derive: missing type name");
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (type `{name}`)");
    }

    let data = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Data::Enum(parse_variants(g.stream()))
            } else {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert!(!is_enum, "serde shim derive: malformed enum body");
            Data::TupleStruct(tuple_arity(g.stream()))
        }
        other => panic!("serde shim derive: unsupported item body {other:?}"),
    };

    Container {
        name: name.to_string(),
        tag,
        snake_case,
        data,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// serde's `rename_all = "snake_case"` transformation.
fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

impl Container {
    fn variant_key(&self, variant: &str) -> String {
        if self.snake_case {
            snake(variant)
        } else {
            variant.to_string()
        }
    }
}

fn push_serialize_fields(out: &mut String, fields: &[Field], access: &str) {
    for f in fields {
        out.push_str(&format!(
            "__entries.push((\"{n}\".to_string(), ::serde::Serialize::serialize({access}{n})));\n",
            n = f.name
        ));
    }
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let mut body = String::new();
    match &c.data {
        Data::NamedStruct(fields) => {
            body.push_str(
                "let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            push_serialize_fields(&mut body, fields, "&self.");
            body.push_str("::serde::Value::Object(__entries)\n");
        }
        Data::TupleStruct(1) => {
            body.push_str("::serde::Serialize::serialize(&self.0)\n");
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            body.push_str(&format!(
                "::serde::Value::Array(vec![{}])\n",
                items.join(", ")
            ));
        }
        Data::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let key = c.variant_key(&v.name);
                match (&v.kind, &c.tag) {
                    (VariantKind::Unit, None) => {
                        body.push_str(&format!(
                            "{name}::{v} => ::serde::Value::Str(\"{key}\".to_string()),\n",
                            v = v.name
                        ));
                    }
                    (VariantKind::Unit, Some(tag)) => {
                        body.push_str(&format!(
                            "{name}::{v} => ::serde::Value::Object(vec![(\"{tag}\".to_string(), \
                             ::serde::Value::Str(\"{key}\".to_string()))]),\n",
                            v = v.name
                        ));
                    }
                    (VariantKind::Tuple(n), None) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        body.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![(\"{key}\"\
                             .to_string(), {inner})]),\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                    (VariantKind::Tuple(_), Some(_)) => panic!(
                        "serde shim derive: internally tagged tuple variant \
                         `{name}::{}` is not supported",
                        v.name
                    ),
                    (VariantKind::Struct(fields), tag) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut arm = format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __entries: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                            v = v.name,
                            binds = binds.join(", ")
                        );
                        if let Some(tag) = tag {
                            arm.push_str(&format!(
                                "__entries.push((\"{tag}\".to_string(), \
                                 ::serde::Value::Str(\"{key}\".to_string())));\n"
                            ));
                        }
                        push_serialize_fields(&mut arm, fields, "");
                        if tag.is_some() {
                            arm.push_str("::serde::Value::Object(__entries)\n}\n");
                        } else {
                            arm.push_str(&format!(
                                "::serde::Value::Object(vec![(\"{key}\".to_string(), \
                                 ::serde::Value::Object(__entries))])\n}}\n"
                            ));
                        }
                        body.push_str(&arm);
                        body.push(',');
                        body.push('\n');
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
}

/// The expression that rebuilds one named field from object `__v`.
fn field_expr(c: &Container, f: &Field) -> String {
    let fallback = match &f.default {
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
        None if f.is_option => "::std::option::Option::None".to_string(),
        None => format!(
            "return ::std::result::Result::Err(::serde::DeError::custom(\
             \"missing field `{n}` in {name}\"))",
            n = f.name,
            name = c.name
        ),
    };
    format!(
        "{n}: match __v.get(\"{n}\") {{\n\
         ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize(__x)?,\n\
         ::std::option::Option::None => {fallback},\n}}",
        n = f.name
    )
}

/// Like [`field_expr`] but reading from an arbitrary object expression.
fn variant_field_expr(c: &Container, f: &Field, source: &str) -> String {
    field_expr(c, f).replace("__v.get(", &format!("{source}.get("))
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let mut body = String::new();
    match &c.data {
        Data::NamedStruct(fields) => {
            body.push_str(&format!(
                "if __v.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::DeError::custom(format!(\
                 \"expected object for {name}, found {{}}\", __v.kind())));\n}}\n"
            ));
            let inits: Vec<String> = fields.iter().map(|f| field_expr(c, f)).collect();
            body.push_str(&format!(
                "::std::result::Result::Ok({name} {{\n{}\n}})\n",
                inits.join(",\n")
            ));
        }
        Data::TupleStruct(1) => {
            body.push_str(&format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))\n"
            ));
        }
        Data::TupleStruct(n) => {
            body.push_str(&format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError::custom(\
                 \"wrong tuple arity for {name}\"));\n}}\n"
            ));
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            body.push_str(&format!(
                "::std::result::Result::Ok({name}({}))\n",
                items.join(", ")
            ));
        }
        Data::Enum(variants) => match &c.tag {
            Some(tag) => {
                body.push_str(&format!(
                    "let __kind = __v.get(\"{tag}\").and_then(|__k| __k.as_str())\
                     .ok_or_else(|| ::serde::DeError::custom(\
                     \"missing `{tag}` tag for {name}\"))?;\n\
                     match __kind {{\n"
                ));
                for v in variants {
                    let key = c.variant_key(&v.name);
                    match &v.kind {
                        VariantKind::Unit => body.push_str(&format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        )),
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(|f| field_expr(c, f)).collect();
                            body.push_str(&format!(
                                "\"{key}\" => ::std::result::Result::Ok({name}::{v} {{\n{}\n}}),\n",
                                inits.join(",\n"),
                                v = v.name
                            ));
                        }
                        VariantKind::Tuple(_) => panic!(
                            "serde shim derive: internally tagged tuple variant \
                             `{name}::{}` is not supported",
                            v.name
                        ),
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                     \"unknown {name} variant {{__other}}\"))),\n}}\n"
                ));
            }
            None => {
                // Unit variants arrive as strings.
                body.push_str("if let ::std::option::Option::Some(__s) = __v.as_str() {\n");
                body.push_str("return match __s {\n");
                for v in variants {
                    if matches!(v.kind, VariantKind::Unit) {
                        body.push_str(&format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            key = c.variant_key(&v.name),
                            v = v.name
                        ));
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                     \"unknown {name} variant {{__other}}\"))),\n}};\n}}\n"
                ));
                // Data variants arrive as single-entry objects.
                body.push_str(&format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(format!(\
                     \"expected string or object for {name}, found {{}}\", __v.kind())))?;\n\
                     if __obj.len() != 1 {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                     \"expected single-key object for {name}\"));\n}}\n\
                     let (__key, __inner) = &__obj[0];\n\
                     match __key.as_str() {{\n"
                ));
                for v in variants {
                    let key = c.variant_key(&v.name);
                    match &v.kind {
                        VariantKind::Unit => {
                            // Also accept {"Variant": null} for units.
                            body.push_str(&format!(
                                "\"{key}\" => ::std::result::Result::Ok({name}::{v}),\n",
                                v = v.name
                            ));
                        }
                        VariantKind::Tuple(1) => body.push_str(&format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::deserialize(__inner)?)),\n",
                            v = v.name
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__items[{i}])?")
                                })
                                .collect();
                            body.push_str(&format!(
                                "\"{key}\" => {{\n\
                                 let __items = __inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected array for {name}::{v}\"))?;\n\
                                 if __items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::custom(\
                                 \"wrong arity for {name}::{v}\"));\n}}\n\
                                 ::std::result::Result::Ok({name}::{v}({items}))\n}}\n",
                                v = v.name,
                                items = items.join(", ")
                            ));
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| variant_field_expr(c, f, "__inner"))
                                .collect();
                            body.push_str(&format!(
                                "\"{key}\" => ::std::result::Result::Ok({name}::{v} {{\n{}\n}}),\n",
                                inits.join(",\n"),
                                v = v.name
                            ));
                        }
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                     \"unknown {name} variant {{__other}}\"))),\n}}\n"
                ));
            }
        },
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_serialize(&container)
        .parse()
        .expect("serde shim derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_deserialize(&container)
        .parse()
        .expect("serde shim derive: generated Deserialize impl parses")
}
