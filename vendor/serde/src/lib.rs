//! Offline shim for `serde`.
//!
//! The real crate cannot be fetched in this air-gapped build. This shim
//! keeps the workspace source-compatible for the subset it uses: derived
//! `Serialize`/`Deserialize` on concrete (non-generic) types, and JSON
//! round-trips through `serde_json`. Instead of serde's visitor-based data
//! model, everything funnels through an owned [`Value`] tree: `Serialize`
//! renders a value tree, `Deserialize` rebuilds a type from one. That is a
//! much smaller contract, but it is exactly the contract the workspace
//! exercises (no zero-copy borrows, no streaming, no custom serializers).

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Deserialization error: a plain message, like `serde::de::Error::custom`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let n = value.as_u64().ok_or_else(|| {
                    DeError::custom(format!(
                        "expected unsigned integer, found {}",
                        value.kind()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let n = value.as_i64().ok_or_else(|| {
                    DeError::custom(format!("expected integer, found {}", value.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            // JSON has no NaN/Infinity literal; non-finite floats were
            // written out as null, so read null back as NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        f64::deserialize(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::custom(format!(
                "expected single-character string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($idx:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let Value::Array(items) = value else {
                    return Err(DeError::custom(format!(
                        "expected tuple array, found {}",
                        value.kind()
                    )));
                };
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                if items.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected array of {LEN}, found {}",
                        items.len()
                    )));
                }
                Ok(($($t::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn serialize(&self) -> Value {
        // Sort keys so serialization is deterministic across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(v.serialize(), Value::Null);
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::deserialize(&Value::U64(3)).unwrap(), Some(3));
    }

    #[test]
    fn unsigned_range_checked() {
        assert!(u8::deserialize(&Value::U64(300)).is_err());
        assert_eq!(u8::deserialize(&Value::U64(255)).unwrap(), 255);
    }

    #[test]
    fn float_accepts_integers_and_null() {
        assert_eq!(f64::deserialize(&Value::I64(-2)).unwrap(), -2.0);
        assert!(f64::deserialize(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn tuple_round_trip() {
        let v = (1u32, "x".to_string());
        let tree = v.serialize();
        assert_eq!(<(u32, String)>::deserialize(&tree).unwrap(), v);
    }
}
