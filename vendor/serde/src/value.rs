//! The owned value tree every `Serialize`/`Deserialize` funnels through.

/// A JSON-shaped value. Objects preserve insertion order (a `Vec` of
/// entries), which keeps derived struct serialization in field-declaration
/// order like real serde.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short noun for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::F64(x) if x.fract() == 0.0 && *x >= i64::MIN as f64 && *x <= i64::MAX as f64 => {
                Some(*x as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// First entry with key `key` in an object (`None` on other kinds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }
}

// A `Value` is its own serialized form; identity impls let callers parse
// arbitrary JSON (`from_str::<Value>`) and re-serialize value trees.
impl crate::Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, crate::DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::F64(3.0).as_u64(), Some(3));
        assert_eq!(Value::F64(3.5).as_u64(), None);
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::U64(7).as_i64(), Some(7));
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(v.get("a"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b"), None);
    }
}
