//! Offline shim for `serde_json`.
//!
//! Text layer over the serde shim's [`Value`] tree: a recursive-descent
//! JSON parser plus compact and pretty writers. Covers the API surface the
//! workspace uses (`from_str`, `to_string`, `to_string_pretty`) with the
//! same observable conventions as the real crate where they matter here —
//! notably, non-finite floats serialize as `null`.

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Parse or serialization error: a plain message with the same `Display`
/// contract callers rely on (`err.to_string()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    Ok(T::deserialize(&value)?)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.serialize(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.serialize(), 0, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::I64(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // Keep integral floats recognisable as numbers with a fraction so
        // they round-trip as F64 (matches serde_json printing `1.0`).
        if x.fract() == 0.0 && x.abs() < 1e15 {
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&format!("{x}"));
        }
    } else {
        // JSON has no NaN/Infinity; real serde_json also writes null.
        out.push_str("null");
    }
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"name":"x","items":[1,2,3],"opt":null}"#;
        let value = parse_value(text).unwrap();
        let mut out = String::new();
        write_compact(&value, &mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let text = r#"{"a":{"b":[1,{"c":true}]},"d":[]}"#;
        let value = parse_value(text).unwrap();
        let mut pretty = String::new();
        write_pretty(&value, 0, &mut pretty);
        assert_eq!(parse_value(&pretty).unwrap(), value);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("42 garbage").is_err());
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é""#).unwrap(), "é");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }
}
