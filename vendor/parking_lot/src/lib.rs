//! Offline shim for `parking_lot`: a `Mutex` with the poison-free `lock()`
//! signature, backed by `std::sync::Mutex`. Lock poisoning is translated to
//! "take the data anyway", which matches parking_lot semantics closely
//! enough for this workspace (locks only guard in-memory trace buffers).

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdGuard<'a, T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_blocks_on_held_lock() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
