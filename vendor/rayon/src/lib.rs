//! Offline shim for `rayon` — a real worker pool, not a sequential stand-in.
//!
//! `par_iter().map(f).collect()` fans the items out over scoped OS threads
//! (`std::thread::scope`): workers steal indices from a shared atomic
//! cursor, so a slow item never blocks the queue behind it. Results are
//! merged back **in input order**, which is what makes worker-count
//! invariance hold — a campaign at `--jobs 1` and `--jobs 8` produces the
//! same `Vec` as long as each item's work is self-contained (every AIMES
//! run owns its seed and its `Rc`-world, so it is).
//!
//! Worker count resolution, first match wins:
//! 1. `ThreadPoolBuilder::new().num_threads(n).build_global()` (the
//!    `--jobs` flag in the bench binaries lands here; `0` resets to auto),
//! 2. `AIMES_JOBS` / `RAYON_NUM_THREADS` environment variables,
//! 3. `std::thread::available_parallelism()`.
//!
//! Surface is limited to what the workspace uses. One deliberate deviation
//! from upstream: `build_global()` may be called repeatedly (the
//! invariance tests flip between 1 and 4 workers inside one process).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-count override; 0 means "unset, consult env/hardware".
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Mirror of rayon's global-pool configuration entry point.
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { num_threads: 0 }
    }

    /// `0` means automatic (env var, then `available_parallelism`).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        WORKER_OVERRIDE.store(self.num_threads, Ordering::SeqCst);
        Ok(())
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// The worker count a `par_iter` started now would use.
pub fn current_num_threads() -> usize {
    let o = WORKER_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    for var in ["AIMES_JOBS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Borrowing parallel iterator over a slice; only `map` is supported.
pub struct ParIter<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    pub fn map<R, F>(self, op: F) -> ParMap<'data, T, R, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            op,
            _result: std::marker::PhantomData,
        }
    }
}

/// A mapped parallel iterator; `collect()` runs the pool.
pub struct ParMap<'data, T: Sync, R, F> {
    items: &'data [T],
    op: F,
    _result: std::marker::PhantomData<fn() -> R>,
}

impl<'data, T, R, F> ParMap<'data, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_pool(self.items, &self.op).into_iter().collect()
    }
}

/// Fan `op` over `items` on scoped threads; results come back in input
/// order. Workers pull the next unclaimed index from a shared atomic
/// cursor (chunk size 1 — simulation runs are coarse enough that the
/// fetch_add is noise). A panicking item re-raises on the caller thread.
fn run_pool<'data, T, R, F>(items: &'data [T], op: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return items.iter().map(op).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut claimed = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        claimed.push((i, op(&items[i])));
                    }
                    claimed
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(claimed) => buckets.push(claimed),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `&'data self → par_iter()`, rayon's borrowing entry point.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;

    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter {
            items: self.as_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the global worker override.
    static POOL_LOCK: Mutex<()> = Mutex::new(());

    fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .unwrap();
        let out = f();
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        out
    }

    #[test]
    fn par_iter_maps_and_collects_in_order() {
        for workers in [1, 2, 4] {
            let v: Vec<i32> = (0..97).collect();
            let doubled: Vec<i32> = with_workers(workers, || v.par_iter().map(|x| x * 2).collect());
            assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_runs_on_multiple_threads() {
        // Each item sleeps so the OS interleaves the four workers even on
        // a single-core host; at least two distinct ThreadIds must show up.
        let items: Vec<u32> = (0..16).collect();
        let ids: Vec<std::thread::ThreadId> = with_workers(4, || {
            items
                .par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    std::thread::current().id()
                })
                .collect()
        });
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(
            distinct.len() >= 2,
            "expected work on >1 thread, saw {}",
            distinct.len()
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let v: Vec<i32> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            with_workers(2, || {
                v.par_iter()
                    .map(|x| if *x == 5 { panic!("boom") } else { *x })
                    .collect::<Vec<_>>()
            })
        });
        assert!(r.is_err());
    }
}
