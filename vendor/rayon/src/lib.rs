//! Offline shim for `rayon` — a real worker pool, not a sequential stand-in.
//!
//! `par_iter().map(f).collect()` fans the items out over scoped OS threads
//! (`std::thread::scope`): workers steal indices from a shared atomic
//! cursor, so a slow item never blocks the queue behind it. Results are
//! merged back **in input order**, which is what makes worker-count
//! invariance hold — a campaign at `--jobs 1` and `--jobs 8` produces the
//! same `Vec` as long as each item's work is self-contained (every AIMES
//! run owns its seed and its `Rc`-world, so it is).
//!
//! Worker count resolution, first match wins:
//! 1. `ThreadPoolBuilder::new().num_threads(n).build_global()` (the
//!    `--jobs` flag in the bench binaries lands here; `0` resets to auto),
//! 2. `AIMES_JOBS` / `RAYON_NUM_THREADS` environment variables,
//! 3. `std::thread::available_parallelism()`.
//!
//! Surface is limited to what the workspace uses. One deliberate deviation
//! from upstream: `build_global()` may be called repeatedly (the
//! invariance tests flip between 1 and 4 workers inside one process).
//!
//! The pool is instrumented: every `run_pool` invocation accumulates
//! per-worker busy/idle wall time, items processed, and cursor traffic
//! into a process-global [`PoolStats`], readable via [`pool_stats`] and
//! cleared via [`reset_pool_stats`]. Inside a pool closure,
//! [`current_worker_index`] names the worker executing the item.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Global worker-count override; 0 means "unset, consult env/hardware".
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Accumulated pool accounting since process start (or the last
/// [`reset_pool_stats`]).
static POOL_STATS: Mutex<Option<PoolStats>> = Mutex::new(None);

thread_local! {
    /// Index of the pool worker running on this thread, if any.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// One worker's accumulated accounting across pool invocations (merged by
/// worker index; the sequential fast path counts as worker 0).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Items this worker claimed and completed.
    pub items: u64,
    /// Wall time spent inside the mapped closure.
    pub busy_secs: f64,
    /// Wall time the worker existed but was not executing an item
    /// (pool wall minus busy, per invocation).
    pub idle_secs: f64,
}

impl WorkerStats {
    /// Busy share of this worker's lifetime: busy / (busy + idle).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.busy_secs + self.idle_secs;
        if total <= 0.0 {
            0.0
        } else {
            self.busy_secs / total
        }
    }
}

/// Snapshot of the pool's accumulated accounting.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// `run_pool` invocations folded into this snapshot.
    pub invocations: u64,
    /// Summed wall time of those invocations (first spawn to last join).
    pub wall_secs: f64,
    /// Cursor fetches that found the queue already drained — each worker's
    /// final, wasted `fetch_add`. The pool's contention analogue: it grows
    /// with worker count, never with input size.
    pub cursor_overshoots: u64,
    /// Per-worker accounting, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

impl PoolStats {
    /// Total items processed across all workers.
    pub fn items(&self) -> u64 {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Total busy wall time across all workers.
    pub fn busy_secs(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_secs).sum()
    }

    /// Pool utilization: total busy over total (busy + idle) worker time.
    pub fn utilization(&self) -> f64 {
        let busy = self.busy_secs();
        let idle: f64 = self.workers.iter().map(|w| w.idle_secs).sum();
        if busy + idle <= 0.0 {
            0.0
        } else {
            busy / (busy + idle)
        }
    }
}

/// Snapshot the accumulated pool accounting.
pub fn pool_stats() -> PoolStats {
    POOL_STATS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_default()
}

/// Clear the accumulated pool accounting.
pub fn reset_pool_stats() {
    *POOL_STATS.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The pool-worker index of the current thread: `Some(w)` inside a mapped
/// closure (the sequential fast path reports worker 0), `None` elsewhere.
pub fn current_worker_index() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

/// Fold one invocation's accounting into the global stats.
/// `per_worker` holds `(items, busy_secs)` indexed by worker.
fn record_invocation(wall_secs: f64, per_worker: &[(u64, f64)], overshoots: u64) {
    let mut guard = POOL_STATS.lock().unwrap_or_else(|e| e.into_inner());
    let stats = guard.get_or_insert_with(PoolStats::default);
    stats.invocations += 1;
    stats.wall_secs += wall_secs;
    stats.cursor_overshoots += overshoots;
    if stats.workers.len() < per_worker.len() {
        stats
            .workers
            .resize(per_worker.len(), WorkerStats::default());
    }
    for (w, &(items, busy)) in per_worker.iter().enumerate() {
        stats.workers[w].items += items;
        stats.workers[w].busy_secs += busy;
        stats.workers[w].idle_secs += (wall_secs - busy).max(0.0);
    }
}

/// Mirror of rayon's global-pool configuration entry point.
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { num_threads: 0 }
    }

    /// `0` means automatic (env var, then `available_parallelism`).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        WORKER_OVERRIDE.store(self.num_threads, Ordering::SeqCst);
        Ok(())
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// The worker count a `par_iter` started now would use.
pub fn current_num_threads() -> usize {
    let o = WORKER_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    for var in ["AIMES_JOBS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Borrowing parallel iterator over a slice; only `map` is supported.
pub struct ParIter<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    pub fn map<R, F>(self, op: F) -> ParMap<'data, T, R, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            op,
            _result: std::marker::PhantomData,
        }
    }
}

/// A mapped parallel iterator; `collect()` runs the pool.
pub struct ParMap<'data, T: Sync, R, F> {
    items: &'data [T],
    op: F,
    _result: std::marker::PhantomData<fn() -> R>,
}

impl<'data, T, R, F> ParMap<'data, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_pool(self.items, &self.op).into_iter().collect()
    }
}

/// Fan `op` over `items` on scoped threads; results come back in input
/// order. Workers pull the next unclaimed index from a shared atomic
/// cursor (chunk size 1 — simulation runs are coarse enough that the
/// fetch_add is noise). A panicking item re-raises on the caller thread.
fn run_pool<'data, T, R, F>(items: &'data [T], op: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        // Sequential fast path still books as worker 0 so `pool_stats()`
        // is well-formed on single-core hosts and single-item inputs.
        let start = Instant::now();
        let prev = WORKER_INDEX.with(|w| w.replace(Some(0)));
        let out: Vec<R> = items.iter().map(op).collect();
        WORKER_INDEX.with(|w| w.set(prev));
        let wall = start.elapsed().as_secs_f64();
        record_invocation(wall, &[(n as u64, wall)], 0);
        return out;
    }

    let start = Instant::now();
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    let mut per_worker: Vec<(u64, f64)> = vec![(0, 0.0); workers];
    let mut overshoots = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cursor = &cursor;
                scope.spawn(move || {
                    WORKER_INDEX.with(|idx| idx.set(Some(w)));
                    let mut claimed = Vec::new();
                    let mut busy = 0.0f64;
                    let mut wasted_fetches = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            wasted_fetches += 1;
                            break;
                        }
                        let t0 = Instant::now();
                        claimed.push((i, op(&items[i])));
                        busy += t0.elapsed().as_secs_f64();
                    }
                    (claimed, busy, wasted_fetches)
                })
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok((claimed, busy, wasted)) => {
                    per_worker[w] = (claimed.len() as u64, busy);
                    overshoots += wasted;
                    buckets.push(claimed);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    record_invocation(start.elapsed().as_secs_f64(), &per_worker, overshoots);
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `&'data self → par_iter()`, rayon's borrowing entry point.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;

    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter {
            items: self.as_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the global worker override.
    static POOL_LOCK: Mutex<()> = Mutex::new(());

    fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .unwrap();
        let out = f();
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        out
    }

    #[test]
    fn par_iter_maps_and_collects_in_order() {
        for workers in [1, 2, 4] {
            let v: Vec<i32> = (0..97).collect();
            let doubled: Vec<i32> = with_workers(workers, || v.par_iter().map(|x| x * 2).collect());
            assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_runs_on_multiple_threads() {
        // Each item sleeps so the OS interleaves the four workers even on
        // a single-core host; at least two distinct ThreadIds must show up.
        let items: Vec<u32> = (0..16).collect();
        let ids: Vec<std::thread::ThreadId> = with_workers(4, || {
            items
                .par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    std::thread::current().id()
                })
                .collect()
        });
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(
            distinct.len() >= 2,
            "expected work on >1 thread, saw {}",
            distinct.len()
        );
    }

    #[test]
    fn pool_stats_account_items_and_workers() {
        let items: Vec<u32> = (0..24).collect();
        let stats = with_workers(3, || {
            crate::reset_pool_stats();
            let _: Vec<u32> = items
                .par_iter()
                .map(|x| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    *x
                })
                .collect();
            crate::pool_stats()
        });
        assert_eq!(stats.invocations, 1);
        assert_eq!(stats.items(), 24);
        assert_eq!(stats.workers.len(), 3);
        assert_eq!(stats.cursor_overshoots, 3, "one wasted fetch per worker");
        for (w, ws) in stats.workers.iter().enumerate() {
            let lifetime = ws.busy_secs + ws.idle_secs;
            assert!(
                (lifetime - stats.wall_secs).abs() <= stats.wall_secs * 0.5 + 1e-3,
                "worker {w}: busy+idle {lifetime} vs wall {}",
                stats.wall_secs
            );
        }
    }

    #[test]
    fn pool_stats_sequential_path_books_worker_zero() {
        let items: Vec<u32> = (0..5).collect();
        let stats = with_workers(1, || {
            crate::reset_pool_stats();
            let _: Vec<u32> = items.par_iter().map(|x| *x + 1).collect();
            crate::pool_stats()
        });
        assert_eq!(stats.invocations, 1);
        assert_eq!(stats.workers.len(), 1);
        assert_eq!(stats.workers[0].items, 5);
        assert_eq!(stats.workers[0].idle_secs, 0.0);
        assert_eq!(stats.cursor_overshoots, 0);
    }

    #[test]
    fn worker_index_visible_inside_closure() {
        assert_eq!(crate::current_worker_index(), None);
        let items: Vec<u32> = (0..8).collect();
        let idxs: Vec<Option<usize>> = with_workers(2, || {
            items
                .par_iter()
                .map(|_| crate::current_worker_index())
                .collect()
        });
        assert!(idxs.iter().all(|i| matches!(i, Some(0) | Some(1))));
        assert_eq!(crate::current_worker_index(), None);
    }

    #[test]
    fn worker_panic_propagates() {
        let v: Vec<i32> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            with_workers(2, || {
                v.par_iter()
                    .map(|x| if *x == 5 { panic!("boom") } else { *x })
                    .collect::<Vec<_>>()
            })
        });
        assert!(r.is_err());
    }
}
