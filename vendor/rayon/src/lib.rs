//! Offline shim for `rayon`.
//!
//! `par_iter()` degrades to a plain sequential iterator: every adaptor and
//! `collect()` keep working unchanged, results keep their input order, and
//! determinism is trivially preserved. The workspace only fans out
//! embarrassingly parallel simulation repetitions, so the shim trades
//! wall-clock speed for zero dependencies — callers need no code changes
//! if the real crate is ever restored.

pub mod prelude {
    /// `&'data self → par_iter()`, rayon's borrowing entry point.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;

        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_maps_and_collects_in_order() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
