//! Offline shim for `proptest`.
//!
//! A deterministic property-testing harness covering the combinators this
//! workspace uses: numeric range strategies, `any::<T>()`, tuples,
//! `collection::vec`, `option::of`, `prop_map`, the `proptest!` macro with
//! optional `#![proptest_config(...)]`, and `prop_assert*`. Cases are
//! generated from a per-test RNG seeded by the test's module path, so runs
//! are reproducible without a persistence file. There is no shrinking: a
//! failing case reports its inputs via the assertion message instead.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64, seeded from the test name)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed deterministically from a test identifier (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(hash)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, n) without modulo bias worth caring about here.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy transformed by a mapping function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges. Inclusive ranges compute the span in u128 so `..=` over a
// full-width domain cannot overflow.
macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($idx:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, broadly scaled values: uniform mantissa over a wide range.
        (rng.next_f64() - 0.5) * 2e9
    }
}

/// Strategy form of [`Arbitrary`], returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// collection::vec / option::of
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on generated collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same None weight as upstream's default (1 in 4).
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

// ---------------------------------------------------------------------------
// Runner config + macros
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; keep the shim brisk but meaningful.
        ProptestConfig { cases: 64 }
    }
}

/// Define property tests. Each case draws fresh inputs from the named
/// strategies; a `prop_assert*` failure aborts with the case number so the
/// deterministic seed can replay it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l, __r, format!($($fmt)+)
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::generate(&(1u64..=3), &mut rng);
            assert!((1..=3).contains(&w));
            let x = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let strat = collection::vec((0u32..10, 0.0f64..1.0), 1..5);
        assert_eq!(
            format!("{:?}", strat.generate(&mut a)),
            format!("{:?}", strat.generate(&mut b))
        );
    }

    #[test]
    fn option_of_produces_both() {
        let mut rng = TestRng::for_test("opt");
        let strat = option::of(0u32..100);
        let draws: Vec<Option<u32>> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().any(Option::is_some));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_end_to_end(
            n in 1usize..20,
            flag in any::<bool>(),
            xs in collection::vec(0u32..5, 1..10),
        ) {
            prop_assert!(n >= 1 && n < 20);
            prop_assert_eq!(flag || !flag, true);
            prop_assert!(!xs.is_empty(), "xs empty: {:?}", xs);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in -1e6f64..1e6) {
            prop_assert!(v.abs() <= 1e6);
        }
    }

    #[test]
    fn prop_map_composes() {
        let strat = (0u32..5, 0u32..5).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::for_test("map");
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) < 10);
        }
    }
}
