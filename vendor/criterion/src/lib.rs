//! Offline shim for `criterion`.
//!
//! A minimal wall-clock benchmark harness with the same API shape the
//! workspace's `harness = false` benches use: `Criterion`, benchmark
//! groups, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark is timed
//! over a fixed number of batches and reported as median ns/iter on
//! stdout — no statistics engine, plots, or saved baselines.

use std::hint;
use std::time::Instant;

pub use std::hint::black_box as _std_black_box;

/// Re-exported under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

// ---------------------------------------------------------------------------
// Bencher
// ---------------------------------------------------------------------------

pub struct Bencher {
    /// Iterations per timed batch, tuned by a calibration pass.
    iters: u64,
    /// Median ns per iteration over the timed batches.
    result_ns: f64,
    batches: usize,
}

impl Bencher {
    fn new(batches: usize) -> Self {
        Bencher {
            iters: 1,
            result_ns: f64::NAN,
            batches,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until one batch takes ~2ms, so cheap
        // routines are not dominated by timer resolution.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed.as_micros() >= 2_000 || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters = iters;

        let mut samples: Vec<f64> = (0..self.batches)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    hint::black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2];
    }
}

// ---------------------------------------------------------------------------
// Criterion / groups
// ---------------------------------------------------------------------------

pub struct Criterion {
    batches: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { batches: 11 }
    }
}

fn run_one(name: &str, batches: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(batches);
    f(&mut b);
    if b.result_ns.is_nan() {
        println!("{name:<50} (no measurement: bencher.iter never called)");
    } else {
        println!(
            "{name:<50} {:>14.1} ns/iter  ({} iters x {} batches)",
            b.result_ns, b.iters, batches
        );
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.batches, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            batches: self.batches,
            _parent: self,
        }
    }

    /// Accepted for API compatibility; the shim keeps its fixed batch count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.batches = n.max(3);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    batches: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.batches = n.max(3);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.batches, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.batches, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

// ---------------------------------------------------------------------------
// BenchmarkId
// ---------------------------------------------------------------------------

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Either a plain name or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial/add", |b| b.iter(|| black_box(1u64) + 1));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(3);
        trivial(&mut c);
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2u64) + 2));
        group.bench_function(format!("{}_fmt", "name"), |b| b.iter(|| black_box(1)));
        group.finish();
    }
}
