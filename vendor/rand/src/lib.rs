//! Offline shim for the `rand` crate.
//!
//! The workspace builds in an air-gapped environment, so the real crate
//! cannot be fetched. The simulator implements its own xoshiro256++
//! generator and only needs the `RngCore`/`SeedableRng` trait vocabulary
//! (plus the error type) to stay source-compatible with `rand` adaptors.

use std::fmt;

/// Error type returned by fallible `RngCore` methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = state.to_le_bytes();
        for (i, b) in seed.as_mut().iter_mut().enumerate() {
            *b = bytes[i % 8];
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn default_try_fill_delegates() {
        let mut c = Counter(0);
        let mut buf = [0u8; 3];
        c.try_fill_bytes(&mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
    }
}
