//! Multistage workflow: run the Montage-like skeleton (the paper's §III-A
//! validation application) through the middleware. Unlike the bag-of-tasks
//! experiments, the stages have real dependencies (reprojection →
//! diff/fit → concat → co-add), so units become eligible in waves and the
//! backfill scheduler fills pilot cores as dependencies resolve.
//!
//! ```text
//! cargo run --release --example montage_workflow
//! ```

use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, RunOptions};
use aimes_repro::sim::{SimRng, SimTime};
use aimes_repro::skeleton::{profiles, SkeletonApp};

fn main() {
    let config = profiles::montage_like(64);
    // Inspect the generated application first (the skeleton API).
    let preview = SkeletonApp::generate(&config, &mut SimRng::new(1)).expect("valid");
    println!("application : {}", preview.name());
    println!("stages      : {}", preview.stage_count());
    for (i, name) in preview.stage_names().iter().enumerate() {
        let tasks = preview.stage_tasks(i);
        let mean_dur: f64 =
            tasks.iter().map(|t| t.duration.as_secs()).sum::<f64>() / tasks.len() as f64;
        println!(
            "  stage {i} {:<12} {:>4} tasks, mean duration {:>6.1} s",
            name,
            tasks.len(),
            mean_dur
        );
    }
    println!(
        "total work  : {:.0} s; critical path: {:.0} s",
        preview.total_work().as_secs(),
        preview.critical_path().as_secs()
    );

    let result = run_application(
        &paper::testbed(),
        &config,
        &paper::late_strategy(2),
        &RunOptions {
            seed: 11,
            submit_at: SimTime::from_secs(6.0 * 3600.0),
            ..Default::default()
        },
    )
    .expect("workflow completes");

    let b = &result.breakdown;
    println!("\nexecuted under {}:", result.strategy_label);
    println!("resources   : {}", result.resources_used.join(", "));
    println!(
        "units       : {} done, {} failed",
        result.units_done, result.units_failed
    );
    println!(
        "TTC         : {:.0} s (Tw {:.0}, Tx {:.0}, Ts {:.0})",
        b.ttc.as_secs(),
        b.tw.as_secs(),
        b.tx.as_secs(),
        b.ts.as_secs()
    );
    println!(
        "Tx vs critical path: {:.0} s vs {:.0} s (dependency stalls + waves)",
        b.tx.as_secs(),
        preview.critical_path().as_secs()
    );
}
