//! Strategy exploration: the Execution Manager derives and ranks every
//! non-pruned strategy for an application against a *live* bundle, then
//! the top candidates actually run so estimated and measured TTC can be
//! compared — the paper's "virtual laboratory" used interactively.
//!
//! ```text
//! cargo run --release --example strategy_explorer
//! ```

use aimes_repro::bundle::Bundle;
use aimes_repro::cluster::Cluster;
use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, RunOptions};
use aimes_repro::sim::{SimTime, Simulation, Tracer};
use aimes_repro::skeleton::{paper_bag, SkeletonApp, TaskDurationSpec};
use aimes_repro::strategy::{ExecutionManager, StrategySpace};

fn main() {
    let app_config = paper_bag(512, TaskDurationSpec::Gaussian);
    let resources = paper::testbed();
    let probe_at = SimTime::from_secs(8.0 * 3600.0);

    // Build a side simulation to probe the bundle at the submission
    // instant: same seed as the runs below, so the Execution Manager sees
    // the same world it will execute in.
    let mut sim = Simulation::with_tracer(7, Tracer::disabled());
    let mut bundle = Bundle::new();
    for cfg in &resources {
        let cluster = Cluster::new(cfg.clone());
        cluster.install(&mut sim);
        bundle.add(cluster);
    }
    sim.schedule_at(probe_at, |_| {});
    sim.run_until(probe_at);

    let mut rng = sim.fork_rng("skeleton");
    let app = SkeletonApp::generate(&app_config, &mut rng).expect("valid skeleton");

    let em = ExecutionManager::default();
    let space = StrategySpace {
        pilot_counts: (1..=5).collect(),
        ..StrategySpace::default()
    };
    let plans = em.rank_strategies(sim.now(), &app, &mut bundle, &space);

    println!(
        "candidate strategies for {} tasks, ranked by estimated TTC:",
        app.tasks().len()
    );
    println!(
        "{:<20} {:>10} {:>8} {:>8} {:>8} {:>24}",
        "strategy", "est TTC", "Tw", "Tx", "Ts", "resources"
    );
    for plan in &plans {
        println!(
            "{:<20} {:>10.0} {:>8.0} {:>8.0} {:>8.0} {:>24}",
            plan.strategy.label(),
            plan.estimate.ttc_upper().as_secs(),
            plan.estimate.tw.as_secs(),
            plan.estimate.tx.as_secs(),
            plan.estimate.ts.as_secs(),
            plan.resources.join(",")
        );
    }

    // Enact the best and the worst candidate and compare with estimates.
    println!("\nestimate vs measurement:");
    for plan in [plans.first(), plans.last()].into_iter().flatten() {
        let result = run_application(
            &resources,
            &app_config,
            &plan.strategy,
            &RunOptions {
                seed: 7,
                submit_at: probe_at,
                ..Default::default()
            },
        );
        match result {
            Ok(r) => println!(
                "  {:<20} estimated {:>7.0} s   measured {:>7.0} s (Tw {:.0}, Tx {:.0}, Ts {:.0})",
                plan.strategy.label(),
                plan.estimate.ttc_upper().as_secs(),
                r.breakdown.ttc.as_secs(),
                r.breakdown.tw.as_secs(),
                r.breakdown.tx.as_secs(),
                r.breakdown.ts.as_secs(),
            ),
            Err(e) => println!("  {:<20} failed: {e}", plan.strategy.label()),
        }
    }
}
