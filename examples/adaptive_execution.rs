//! Dynamic execution (the paper's §V outlook): the strategy is revised
//! *while the application runs*. We pin the initial pilot to the most
//! congested resource in the pool; the adaptive runner notices that
//! nothing activated within its patience window, consults the bundle with
//! fresh information, and reinforces on better resources.
//!
//! ```text
//! cargo run --release --example adaptive_execution
//! ```

use aimes_repro::middleware::adaptive::{run_adaptive, AdaptiveConfig};
use aimes_repro::middleware::paper;
use aimes_repro::middleware::RunOptions;
use aimes_repro::sim::{SimDuration, SimTime};
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};
use aimes_repro::strategy::{PilotSizing, ResourceSelection};

fn main() {
    let app = paper_bag(128, TaskDurationSpec::Gaussian);

    // Deliberately bad initial choice: one pilot, pinned to the analog of
    // the most oversubscribed machine in the pool.
    let mut base = paper_bag_strategy();
    base.selection = ResourceSelection::Fixed(vec!["hopper".into()]);

    let config = AdaptiveConfig {
        base,
        patience: SimDuration::from_mins(20.0),
        reinforce_by: 1,
        max_rounds: 3,
    };

    for seed in 0..4 {
        let result = run_adaptive(
            &paper::testbed(),
            &app,
            &config,
            &RunOptions {
                seed,
                submit_at: SimTime::from_secs(8.0 * 3600.0),
                ..Default::default()
            },
        );
        match result {
            Ok(r) => {
                println!(
                    "seed {seed}: TTC {:>6.0} s | initial {:?} | reinforced {} round(s) with {:?} | {} done",
                    r.breakdown.ttc.as_secs(),
                    r.initial_resources,
                    r.reinforcement_rounds,
                    r.reinforcement_resources,
                    r.units_done,
                );
            }
            Err(e) => println!("seed {seed}: failed: {e}"),
        }
    }
}

fn paper_bag_strategy() -> aimes_repro::strategy::ExecutionStrategy {
    let mut s = aimes_repro::strategy::ExecutionStrategy::paper_late(2);
    s.pilot_count = 1;
    s.sizing = PilotSizing::Fixed(128);
    s
}
