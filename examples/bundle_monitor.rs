//! Bundle interfaces in action: on-demand queries, predictive queue-wait
//! bounds (QBETS-style), and threshold monitoring with notifications —
//! §III-B's three interfaces against a live loaded resource pool.
//!
//! ```text
//! cargo run --release --example bundle_monitor
//! ```

use aimes_repro::bundle::{Bundle, Condition, Metric, MonitorService, QueryMode};
use aimes_repro::cluster::Cluster;
use aimes_repro::middleware::paper;
use aimes_repro::sim::{SimDuration, SimTime, Simulation, Tracer};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let mut sim = Simulation::with_tracer(3, Tracer::disabled());
    let mut bundle = Bundle::new();
    for cfg in paper::testbed() {
        let cluster = Cluster::new(cfg);
        cluster.install(&mut sim);
        bundle.add(cluster);
    }

    // Monitoring interface: notify when stampede's queue pressure stays
    // above 1.5x machine size for 30 min (sampled every 5 min).
    let notifications: Rc<RefCell<Vec<(f64, f64)>>> = Rc::new(RefCell::new(vec![]));
    let sink = notifications.clone();
    let stampede = bundle.cluster("stampede").expect("in testbed");
    MonitorService::subscribe(
        &mut sim,
        stampede,
        Metric::QueuePressure,
        Condition::Above(1.5),
        SimDuration::from_mins(30.0),
        SimDuration::from_mins(5.0),
        move |sim, value| {
            sink.borrow_mut().push((sim.now().as_hours(), value));
        },
    );

    // Let 12 hours of background load play out.
    let horizon = SimTime::from_secs(12.0 * 3600.0);
    sim.schedule_at(horizon, |_| {});
    sim.run_until(horizon);

    // Query interface, on-demand mode: the uniform representation.
    println!("resource snapshot at t = {:.0} h:", sim.now().as_hours());
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>8} {:>6}",
        "resource", "cores", "free", "queued", "util", "press"
    );
    for repr in bundle.representations(sim.now()) {
        println!(
            "{:<12} {:>7} {:>7} {:>7} {:>8.2} {:>6.2}",
            repr.name,
            repr.compute.total_cores,
            repr.compute.free_cores,
            repr.compute.queued_jobs,
            repr.compute.utilization,
            repr.queue_pressure()
        );
    }

    // Setup-time estimates for a 128-core, 1-hour pilot: on-demand
    // (queue replay) next to predictive (QBETS bound over history).
    println!("\nsetup-time estimates for a 128-core x 1 h pilot:");
    let walltime = SimDuration::from_hours(1.0);
    let names = bundle.resource_names();
    for name in &names {
        let r = bundle.resource_mut(name).expect("exists");
        let on_demand = r
            .query
            .setup_time(sim.now(), 128, walltime, QueryMode::OnDemand);
        let predictive = r
            .query
            .setup_time(sim.now(), 128, walltime, QueryMode::Predictive);
        let fmt = |v: Option<SimDuration>| match v {
            Some(d) => format!("{:>8.0} s", d.as_secs()),
            None => "       n/a".to_string(),
        };
        println!(
            "  {:<12} on-demand {}   predictive(95%) {}",
            name,
            fmt(on_demand),
            fmt(predictive)
        );
    }

    // Ranking: what the Execution Manager would pick.
    let ranked = bundle.rank_by_setup_time(sim.now(), 128, walltime, QueryMode::OnDemand);
    println!(
        "\nbundle ranking (on-demand): {}",
        ranked
            .iter()
            .map(|(n, w)| format!("{n} ({:.0}s)", w.as_secs()))
            .collect::<Vec<_>>()
            .join(" < ")
    );

    let fired = notifications.borrow();
    println!(
        "\nmonitor notifications (stampede queue pressure > 1.5 for 30 min): {}",
        fired.len()
    );
    for (hour, value) in fired.iter().take(5) {
        println!("  t = {hour:.1} h, pressure = {value:.2}");
    }
}
