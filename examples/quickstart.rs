//! Quickstart: execute a bag-of-tasks application on the simulated
//! five-resource testbed with the paper's best strategy (late binding +
//! backfill over three pilots) and print the measured TTC decomposition.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aimes_repro::middleware::paper;
use aimes_repro::middleware::{run_application, RunOptions};
use aimes_repro::sim::SimTime;
use aimes_repro::skeleton::{paper_bag, TaskDurationSpec};

fn main() {
    // The application: 256 single-core tasks, truncated-Gaussian durations
    // (mean 15 min), 1 MB in / 2 KB out per task — a Table I workload.
    let app = paper_bag(256, TaskDurationSpec::Gaussian);

    // The resource pool: five simulated HPC machines with production-like
    // background load (see aimes-cluster's catalog).
    let resources = paper::testbed();

    // The strategy: late binding, backfill scheduling, three pilots each
    // with #tasks/3 cores, on resources drawn from the pool.
    let strategy = paper::late_strategy(3);

    let result = run_application(
        &resources,
        &app,
        &strategy,
        &RunOptions {
            seed: 42,
            // Submit after 8 h of background evolution so queues are warm.
            submit_at: SimTime::from_secs(8.0 * 3600.0),
            ..Default::default()
        },
    )
    .expect("run completes");

    println!("application : {} tasks ({})", result.n_tasks, app.name);
    println!("strategy    : {}", result.strategy_label);
    println!("resources   : {}", result.resources_used.join(", "));
    println!(
        "pilot setup : {:?} s",
        result
            .pilot_setup_secs
            .iter()
            .map(|s| s.round())
            .collect::<Vec<_>>()
    );
    println!(
        "units done  : {} (failed {}, restarts {})",
        result.units_done, result.units_failed, result.restarts
    );
    let b = &result.breakdown;
    println!("TTC         : {:.0} s", b.ttc.as_secs());
    println!("  Tw (setup/queue) : {:.0} s", b.tw.as_secs());
    println!("  Tx (execution)   : {:.0} s", b.tx.as_secs());
    println!("  Ts (staging)     : {:.0} s", b.ts.as_secs());
    println!(
        "(components overlap: Tw + Tx + Ts = {:.0} s >= TTC)",
        b.tw.as_secs() + b.tx.as_secs() + b.ts.as_secs()
    );
}
