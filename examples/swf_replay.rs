//! Workload-trace replay: export a background workload as a Standard
//! Workload Format (SWF) trace — the Parallel Workloads Archive format —
//! re-import it, replay it into a simulated cluster, and measure a pilot's
//! queue wait against the replayed load. The same path runs real archive
//! traces (`from_swf` on any `.swf` file) instead of the synthetic
//! generator.
//!
//! ```text
//! cargo run --release --example swf_replay
//! ```

use aimes_repro::cluster::{Cluster, ClusterConfig, JobRequest};
use aimes_repro::sim::{SimDuration, SimRng, SimTime, Simulation, Tracer};
use aimes_repro::workload::{from_swf, summarize, to_swf, BackgroundWorkload, WorkloadConfig};

fn main() {
    // 1. Generate 12 hours of production-like load for a 1024-core machine.
    let mut generator =
        BackgroundWorkload::new(WorkloadConfig::production_like(), 1024, SimRng::new(2016));
    let jobs = generator.generate_until(SimTime::from_secs(12.0 * 3600.0));
    let stats = summarize(&jobs).expect("non-empty stream");
    println!(
        "generated {} jobs: median runtime {:.0} s, mean cores {:.1}, \
         short-job share {:.0} %",
        stats.job_count,
        stats.median_runtime_secs,
        stats.mean_cores,
        stats.short_job_fraction * 100.0
    );

    // 2. Export as SWF and re-import (a real archive trace would enter here).
    let swf = to_swf(&jobs, "aimes-sim-1024");
    println!("SWF export: {} bytes, header:", swf.len());
    for line in swf.lines().take(3) {
        println!("  {line}");
    }
    let replayed = from_swf(&swf).expect("own output parses");
    assert_eq!(replayed.len(), jobs.len());

    // 3. Replay into a fresh cluster and probe it with a pilot-like job
    //    every 2 simulated hours.
    let mut sim = Simulation::with_tracer(7, Tracer::disabled());
    let cluster = Cluster::new(ClusterConfig::test("replayed", 1024));
    cluster.install_trace(&mut sim, &replayed);
    println!("\nprobe: 128-core x 30-min pilot-shaped job, submitted every 2 h:");
    for k in 1..=5 {
        let at = SimTime::from_secs(k as f64 * 2.0 * 3600.0);
        let c2 = cluster.clone();
        sim.schedule_at(at, move |sim| {
            let est = c2.estimate_wait(sim.now(), 128, SimDuration::from_mins(30.0));
            let m = c2.metrics(sim.now());
            println!(
                "  t={:>5.1} h: free {:>4} cores, {:>3} queued jobs, \
                 estimated wait {}",
                sim.now().as_hours(),
                m.free_cores,
                m.queued_jobs,
                est.map(|d| format!("{:>6.0} s", d.as_secs()))
                    .unwrap_or_else(|| "   n/a".into()),
            );
        });
    }
    sim.run_to_completion();

    // 4. One actual submission at the end: measure a realized wait.
    let mut sim = Simulation::with_tracer(8, Tracer::disabled());
    let cluster = Cluster::new(ClusterConfig::test("replayed", 1024));
    cluster.install_trace(&mut sim, &replayed);
    let probe = std::rc::Rc::new(std::cell::RefCell::new(None));
    let p2 = probe.clone();
    let c2 = cluster.clone();
    sim.schedule_at(SimTime::from_secs(6.0 * 3600.0), move |sim| {
        let id = c2.submit(
            sim,
            JobRequest::pilot(128, SimDuration::from_mins(30.0), "probe"),
        );
        *p2.borrow_mut() = Some(id);
    });
    sim.run_to_completion();
    let id = probe.borrow().expect("probe submitted");
    let job = cluster.job(id).expect("tracked");
    println!(
        "\nrealized: probe submitted at 6.0 h waited {:.0} s, state {:?}",
        job.queue_wait(sim.now()).as_secs(),
        job.state
    );
}
