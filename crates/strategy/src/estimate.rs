//! Semi-empirical TTC estimation.
//!
//! §III-D: "this type of optimization uses semi-empirical heuristics" —
//! analytic bounds for the components under middleware control (Tx, Ts,
//! Trp) combined with empirical bundle forecasts for the one that is not
//! (Tw). Walltime requests in Table I are exactly these estimates:
//! `Tx + Ts + Trp` for early binding, `(Tx + Ts + Trp) · #Pilots` for
//! late binding.

use crate::decision::{ExecutionStrategy, WalltimePolicy};
use aimes_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Application-side quantities the estimator needs (extracted from a
/// skeleton by [`crate::derive::AppInfo`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppEstimate {
    pub n_tasks: u32,
    /// Longest single task (upper bound for a 1-wave execution).
    pub max_task_duration: SimDuration,
    /// Mean task duration.
    pub mean_task_duration: SimDuration,
    /// Total bytes staged in + out, MB.
    pub total_staging_mb: f64,
}

/// Middleware-side constants (mirrors `UmConfig`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MiddlewareEstimate {
    pub origin_bandwidth_mbps: f64,
    pub per_transfer_latency: SimDuration,
    pub dispatch_overhead: SimDuration,
}

impl Default for MiddlewareEstimate {
    fn default() -> Self {
        MiddlewareEstimate {
            origin_bandwidth_mbps: 5.0,
            per_transfer_latency: SimDuration::from_secs(0.1),
            dispatch_overhead: SimDuration::from_secs(0.05),
        }
    }
}

/// A TTC estimate decomposed the way the paper reports it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TtcEstimate {
    /// Estimated pilot setup + queue time (from the bundle; the paper's
    /// Tw). For multi-pilot late binding this is the *minimum* over the
    /// chosen resources — the first active pilot starts the clock.
    pub tw: SimDuration,
    /// Estimated task execution span (Tx).
    pub tx: SimDuration,
    /// Estimated staging span (Ts).
    pub ts: SimDuration,
    /// Estimated middleware overhead (Trp).
    pub trp: SimDuration,
}

impl TtcEstimate {
    /// Upper bound on TTC: no overlap assumed.
    pub fn ttc_upper(&self) -> SimDuration {
        self.tw + self.tx + self.ts + self.trp
    }

    /// The walltime to request per pilot under the strategy's policy.
    pub fn pilot_walltime(&self, strategy: &ExecutionStrategy) -> SimDuration {
        let single = self.tx + self.ts + self.trp;
        match strategy.walltime {
            WalltimePolicy::SingleShot => single,
            WalltimePolicy::ScaledByPilots => single * f64::from(strategy.pilot_count),
            WalltimePolicy::FixedSecs(secs) => SimDuration::from_secs(secs as f64),
        }
    }
}

/// Estimate Tx for `strategy`: the number of sequential waves on one
/// pilot (if tasks spread evenly) times the longest task.
pub fn estimate_tx(app: &AppEstimate, strategy: &ExecutionStrategy) -> SimDuration {
    let pilot_cores = strategy.pilot_cores(app.n_tasks);
    let share = app.n_tasks.div_ceil(strategy.pilot_count);
    let waves = share.div_ceil(pilot_cores.max(1));
    app.max_task_duration * f64::from(waves.max(1))
}

/// Estimate Ts: all files through the serialized origin channel.
pub fn estimate_ts(app: &AppEstimate, mw: &MiddlewareEstimate) -> SimDuration {
    let volume = SimDuration::from_secs(app.total_staging_mb / mw.origin_bandwidth_mbps);
    // Two transfers per task (one in, one out).
    volume + mw.per_transfer_latency * f64::from(app.n_tasks) * 2.0
}

/// Estimate Trp: serialized dispatch overhead over all tasks.
pub fn estimate_trp(app: &AppEstimate, mw: &MiddlewareEstimate) -> SimDuration {
    mw.dispatch_overhead * f64::from(app.n_tasks)
}

/// Assemble the full estimate. `wait_forecasts` are the bundle's
/// setup-time estimates for the resources the strategy will use, in
/// ranking order; early binding takes the first, late binding the minimum
/// (first pilot active wins).
pub fn estimate_ttc(
    app: &AppEstimate,
    strategy: &ExecutionStrategy,
    mw: &MiddlewareEstimate,
    wait_forecasts: &[SimDuration],
) -> TtcEstimate {
    let tw = wait_forecasts
        .iter()
        .take(strategy.pilot_count as usize)
        .copied()
        .min()
        .unwrap_or(SimDuration::ZERO);
    TtcEstimate {
        tw,
        tx: estimate_tx(app, strategy),
        ts: estimate_ts(app, mw),
        trp: estimate_trp(app, mw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::ExecutionStrategy;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn app(n: u32) -> AppEstimate {
        AppEstimate {
            n_tasks: n,
            max_task_duration: d(1800.0),
            mean_task_duration: d(900.0),
            total_staging_mb: f64::from(n) * 1.002,
        }
    }

    #[test]
    fn early_tx_is_one_wave() {
        let s = ExecutionStrategy::paper_early();
        assert_eq!(estimate_tx(&app(2048), &s), d(1800.0));
    }

    #[test]
    fn late_tx_is_one_wave_per_even_split() {
        let s = ExecutionStrategy::paper_late(3);
        // share = ceil(2048/3) = 683, pilot cores = 683 → 1 wave.
        assert_eq!(estimate_tx(&app(2048), &s), d(1800.0));
    }

    #[test]
    fn fixed_small_pilot_needs_multiple_waves() {
        use crate::decision::PilotSizing;
        let mut s = ExecutionStrategy::paper_late(2);
        s.sizing = PilotSizing::Fixed(100);
        // share = 512, 100 cores → 6 waves.
        assert_eq!(estimate_tx(&app(1024), &s), d(1800.0 * 6.0));
    }

    #[test]
    fn ts_scales_with_tasks() {
        let mw = MiddlewareEstimate::default();
        let small = estimate_ts(&app(8), &mw);
        let large = estimate_ts(&app(2048), &mw);
        assert!(large.as_secs() / small.as_secs() > 200.0);
        // 2048 × 1.002 MB / 5 MBps + 4096 × 0.1 s ≈ 410 + 410 s.
        assert!((large.as_secs() - 820.0).abs() < 20.0, "{large:?}");
    }

    #[test]
    fn trp_linear_in_tasks() {
        let mw = MiddlewareEstimate::default();
        assert_eq!(estimate_trp(&app(2048), &mw), d(102.4));
    }

    #[test]
    fn walltime_policies_match_table1() {
        let mw = MiddlewareEstimate::default();
        let a = app(512);
        let early = ExecutionStrategy::paper_early();
        let late = ExecutionStrategy::paper_late(3);
        let est_e = estimate_ttc(&a, &early, &mw, &[d(100.0)]);
        let est_l = estimate_ttc(&a, &late, &mw, &[d(100.0), d(200.0), d(300.0)]);
        let single_e = est_e.tx + est_e.ts + est_e.trp;
        assert_eq!(est_e.pilot_walltime(&early), single_e);
        let single_l = est_l.tx + est_l.ts + est_l.trp;
        assert_eq!(est_l.pilot_walltime(&late), single_l * 3.0);
    }

    #[test]
    fn tw_is_min_over_chosen_resources() {
        let mw = MiddlewareEstimate::default();
        let a = app(64);
        let late = ExecutionStrategy::paper_late(3);
        let est = estimate_ttc(&a, &late, &mw, &[d(500.0), d(100.0), d(900.0), d(1.0)]);
        // Only the first three forecasts are used (3 pilots); min = 100.
        assert_eq!(est.tw, d(100.0));
        let early = ExecutionStrategy::paper_early();
        let est = estimate_ttc(&a, &early, &mw, &[d(500.0), d(100.0)]);
        assert_eq!(est.tw, d(500.0));
    }

    #[test]
    fn ttc_upper_sums_components() {
        let e = TtcEstimate {
            tw: d(1.0),
            tx: d(2.0),
            ts: d(3.0),
            trp: d(4.0),
        };
        assert_eq!(e.ttc_upper(), d(10.0));
    }
}
