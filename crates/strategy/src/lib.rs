//! # aimes-strategy — the Execution Strategy abstraction
//!
//! §III-D: "We use 'Execution Strategy' to refer to all the decisions taken
//! when executing a given application on one or more resources. ... We use
//! the Execution Strategy abstraction to make explicit the decisions that,
//! traditionally, remain implicit in the coupling of applications and
//! resources."
//!
//! * [`decision`] — the decision set as typed values: binding, task
//!   scheduler, pilot count, pilot sizing, walltime policy, resource
//!   selection — the columns of the paper's Table I.
//! * [`tree`] — the strategy space as a decision tree: enumeration of all
//!   combinations and the paper's §IV-A pruning rules for redundant,
//!   uninformative, or ineffective combinations.
//! * [`estimate`] — the semi-empirical TTC estimator (Tx/Ts/Trp bounds
//!   plus bundle wait forecasts) used to rank strategies.
//! * [`mod@derive`] — the Execution Manager's five derivation steps (§III-D):
//!   gather application info, gather resource info, choose resources,
//!   describe pilots, plan the execution.

pub mod decision;
pub mod derive;
pub mod estimate;
pub mod tree;

pub use decision::{ExecutionStrategy, PilotSizing, ResourceSelection, WalltimePolicy};
pub use derive::{AppInfo, ExecutionManager, ExecutionPlan};
pub use estimate::TtcEstimate;
pub use tree::{enumerate_strategies, prune_reason, StrategySpace};
