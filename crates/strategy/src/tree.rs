//! The strategy space as a decision tree, with the paper's pruning rules.
//!
//! §III-D: "An Execution Strategy can be thought of as a tree, where each
//! decision is a vertex and each edge is a dependence relation among
//! decisions." §IV-A enumerates the combinations the experiments discard
//! "because they are redundant, uninformative, or ineffective":
//!
//! 1. early binding and multiple pilots;
//! 2. late binding and multiple pilots with enough cores to execute all
//!    tasks concurrently;
//! 3. early/late binding on pilots with the same walltime;
//! 4. early/late binding with the same schedulers.

use crate::decision::{ExecutionStrategy, PilotSizing, ResourceSelection, WalltimePolicy};
use aimes_pilot::{Binding, UnitScheduler};

/// Bounds of the strategy space to enumerate.
#[derive(Clone, Debug)]
pub struct StrategySpace {
    /// Candidate pilot counts (e.g. 1..=3 for the paper).
    pub pilot_counts: Vec<u32>,
    /// Candidate bindings.
    pub bindings: Vec<Binding>,
    /// Candidate schedulers.
    pub schedulers: Vec<UnitScheduler>,
}

impl Default for StrategySpace {
    fn default() -> Self {
        StrategySpace {
            pilot_counts: vec![1, 2, 3],
            bindings: vec![Binding::Early, Binding::Late],
            schedulers: vec![
                UnitScheduler::Direct,
                UnitScheduler::RoundRobin,
                UnitScheduler::Backfill,
            ],
        }
    }
}

/// Why a combination is pruned, if it is. Mirrors §IV-A.
pub fn prune_reason(s: &ExecutionStrategy) -> Option<&'static str> {
    match (s.binding, s.pilot_count) {
        (Binding::Early, n) if n > 1 => {
            return Some(
                "early binding with multiple pilots: TTC is determined by the \
                 last pilot to activate — dominated by late binding",
            );
        }
        _ => {}
    }
    if s.binding == Binding::Late && s.sizing == PilotSizing::TasksTotal {
        return Some(
            "late binding with pilots sized for full concurrency: equivalent \
             to early binding on the first active pilot; the other pilots \
             waste resources",
        );
    }
    if s.binding == Binding::Late && s.pilot_count == 1 {
        return Some(
            "late binding with a single pilot: same TTC as early binding on \
             one pilot (all tasks run as soon as it activates)",
        );
    }
    match (s.binding, s.scheduler) {
        (Binding::Early, UnitScheduler::Backfill) | (Binding::Early, UnitScheduler::RoundRobin) => {
            Some(
                "scheduler choice is immaterial under early binding with one \
                 pilot: comparing schedulers would measure scheduler \
                 implementations, not coupling",
            )
        }
        (Binding::Late, UnitScheduler::Direct) => Some(
            "direct submission requires pre-bound units: incompatible with \
             late binding",
        ),
        _ => None,
    }
}

/// Enumerate the non-pruned strategies of a space, with Table I sizing and
/// walltime policies attached per binding.
pub fn enumerate_strategies(space: &StrategySpace) -> Vec<ExecutionStrategy> {
    let mut out = Vec::new();
    for &binding in &space.bindings {
        for &scheduler in &space.schedulers {
            for &pilot_count in &space.pilot_counts {
                let (sizing, walltime) = match binding {
                    Binding::Early => (PilotSizing::TasksTotal, WalltimePolicy::SingleShot),
                    Binding::Late => (PilotSizing::TasksOverPilots, WalltimePolicy::ScaledByPilots),
                };
                let s = ExecutionStrategy {
                    binding,
                    scheduler,
                    pilot_count,
                    sizing,
                    walltime,
                    selection: ResourceSelection::RankedByWait,
                    queue: None,
                };
                if prune_reason(&s).is_none() {
                    out.push(s);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_strategies_survive_pruning() {
        assert!(prune_reason(&ExecutionStrategy::paper_early()).is_none());
        assert!(prune_reason(&ExecutionStrategy::paper_late(2)).is_none());
        assert!(prune_reason(&ExecutionStrategy::paper_late(3)).is_none());
    }

    #[test]
    fn early_multi_pilot_pruned() {
        let mut s = ExecutionStrategy::paper_early();
        s.pilot_count = 3;
        assert!(prune_reason(&s).unwrap().contains("early binding"));
    }

    #[test]
    fn late_full_concurrency_pruned() {
        let mut s = ExecutionStrategy::paper_late(3);
        s.sizing = PilotSizing::TasksTotal;
        assert!(prune_reason(&s).unwrap().contains("full concurrency"));
    }

    #[test]
    fn late_single_pilot_pruned() {
        let s = ExecutionStrategy::paper_late(1);
        assert!(prune_reason(&s).unwrap().contains("single pilot"));
    }

    #[test]
    fn scheduler_mismatches_pruned() {
        let mut s = ExecutionStrategy::paper_early();
        s.scheduler = UnitScheduler::Backfill;
        assert!(prune_reason(&s).is_some());
        let mut s = ExecutionStrategy::paper_late(3);
        s.scheduler = UnitScheduler::Direct;
        assert!(prune_reason(&s).is_some());
    }

    #[test]
    fn enumeration_yields_expected_set() {
        let space = StrategySpace::default();
        let strategies = enumerate_strategies(&space);
        // Early: only direct × 1 pilot = 1.
        // Late: {rr, backfill} × {2, 3} pilots = 4.
        assert_eq!(strategies.len(), 5);
        assert!(strategies
            .iter()
            .any(|s| *s == ExecutionStrategy::paper_early()));
        assert!(strategies
            .iter()
            .any(|s| *s == ExecutionStrategy::paper_late(3)));
        // Every enumerated strategy is valid.
        for s in &strategies {
            assert!(prune_reason(s).is_none(), "{}", s.label());
        }
    }

    #[test]
    fn wider_space_scales() {
        let space = StrategySpace {
            pilot_counts: (1..=5).collect(),
            ..StrategySpace::default()
        };
        let strategies = enumerate_strategies(&space);
        // Early: 1. Late: 2 schedulers × 4 pilot counts (2..=5) = 8.
        assert_eq!(strategies.len(), 9);
    }
}
