//! The Execution Manager's strategy derivation.
//!
//! §III-D: "This module derives and enacts an execution strategy in five
//! steps: (1) information is gathered about an application via the skeleton
//! API and about resources via the bundle API; (2) application requirements
//! and resources availability and capabilities are determined; (3) a set of
//! suitable resources is chosen to satisfy the application requirements;
//! (4) a set of suitable pilots is described and then instantiated on the
//! chosen resources; and (5) the application is executed on the instantiated
//! pilots."
//!
//! This module performs steps 1–4 and hands step 5 (enactment) to the
//! `aimes` crate's middleware, which owns the pilot and unit managers.

use crate::decision::{ExecutionStrategy, ResourceSelection};
use crate::estimate::{
    estimate_trp, estimate_ts, estimate_ttc, estimate_tx, AppEstimate, MiddlewareEstimate,
    TtcEstimate,
};
use crate::tree::{enumerate_strategies, StrategySpace};
use aimes_bundle::{Bundle, QueryMode};
use aimes_pilot::{PilotDescription, UmConfig};
use aimes_sim::{SimDuration, SimTime};
use aimes_skeleton::SkeletonApp;
use serde::{Deserialize, Serialize};

/// Step 1–2: the application requirements, extracted via the skeleton API.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppInfo {
    pub n_tasks: u32,
    pub max_task_duration: SimDuration,
    pub mean_task_duration: SimDuration,
    pub total_staging_mb: f64,
    /// Peak per-stage core demand (pilot sizing must cover at least the
    /// widest stage for single-wave execution).
    pub max_concurrent_cores: u64,
}

impl AppInfo {
    /// Gather application information (Figure 1, step 1).
    pub fn from_skeleton(app: &SkeletonApp) -> Self {
        let tasks = app.tasks();
        assert!(!tasks.is_empty(), "application has no tasks");
        let max = tasks
            .iter()
            .map(|t| t.duration)
            .fold(SimDuration::ZERO, SimDuration::max);
        let staging: f64 = tasks.iter().map(|t| t.input_mb() + t.output_mb()).sum();
        AppInfo {
            n_tasks: tasks.len() as u32,
            max_task_duration: max,
            mean_task_duration: app.total_work() / tasks.len() as f64,
            total_staging_mb: staging,
            max_concurrent_cores: app.max_concurrent_cores(),
        }
    }

    /// The estimator's view of this application.
    pub fn as_estimate(&self) -> AppEstimate {
        AppEstimate {
            n_tasks: self.n_tasks,
            max_task_duration: self.max_task_duration,
            mean_task_duration: self.mean_task_duration,
            total_staging_mb: self.total_staging_mb,
        }
    }
}

/// Steps 3–4 output: everything the middleware needs to enact a strategy.
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    pub strategy: ExecutionStrategy,
    /// Chosen resources, one pilot each, in submission order.
    pub resources: Vec<String>,
    pub pilots: Vec<PilotDescription>,
    pub um_config: UmConfig,
    pub estimate: TtcEstimate,
}

/// The Execution Manager.
pub struct ExecutionManager {
    pub middleware: MiddlewareEstimate,
    pub query_mode: QueryMode,
    /// Safety factor applied to requested pilot walltimes (estimates are
    /// bounds, but Gaussian tails and staging jitter need headroom).
    pub walltime_margin: f64,
}

impl Default for ExecutionManager {
    fn default() -> Self {
        ExecutionManager {
            middleware: MiddlewareEstimate::default(),
            query_mode: QueryMode::OnDemand,
            walltime_margin: 1.1,
        }
    }
}

impl ExecutionManager {
    /// Derive the plan for one strategy (steps 1–4). `rng` is only drawn
    /// from under [`ResourceSelection::Random`].
    ///
    /// Degraded-information contract: every on-demand wait estimate used
    /// here flows through the bundle's information plane
    /// (`aimes_bundle::info`), which classifies answers and falls back
    /// fresh cache → stale cache → offline predictor → conservative
    /// static default. Derivation therefore never panics and never ranks
    /// on garbage when the information channel is corrupt or
    /// unavailable: a plannable pool stays plannable, at worst with
    /// pessimistic (static-default) wait forecasts.
    pub fn derive_plan_with_rng(
        &self,
        now: SimTime,
        app: &SkeletonApp,
        bundle: &mut Bundle,
        strategy: &ExecutionStrategy,
        rng: &mut aimes_sim::SimRng,
    ) -> Result<ExecutionPlan, String> {
        let info = AppInfo::from_skeleton(app);
        let est_app = info.as_estimate();
        let cores = strategy.pilot_cores(info.n_tasks);
        // First-cut walltime (no Tw): what we ask the batch system for.
        let pre = TtcEstimate {
            tw: SimDuration::ZERO,
            tx: estimate_tx(&est_app, strategy),
            ts: estimate_ts(&est_app, &self.middleware),
            trp: estimate_trp(&est_app, &self.middleware),
        };
        // The safety margin covers estimator error; an explicit fixed
        // walltime is taken verbatim (that is its point).
        let walltime = match strategy.walltime {
            crate::decision::WalltimePolicy::FixedSecs(_) => pre.pilot_walltime(strategy),
            _ => pre.pilot_walltime(strategy) * self.walltime_margin,
        };

        // A resource qualifies only if the requested queue exists there
        // and permits the pilot's shape.
        let queue_fits = |bundle: &Bundle, name: &str| -> bool {
            let Some(cluster) = bundle.cluster(name) else {
                return false;
            };
            let cfg = cluster.config();
            let q = match &strategy.queue {
                None => Some(&cfg.queues[0]),
                Some(qn) => cfg.queues.iter().find(|q| q.name == *qn),
            };
            match q {
                None => false,
                Some(q) => {
                    walltime <= q.max_walltime && cores <= q.max_cores.unwrap_or(cfg.total_cores)
                }
            }
        };

        // Step 3: choose resources.
        let (resources, forecasts): (Vec<String>, Vec<SimDuration>) = match &strategy.selection {
            ResourceSelection::RankedByWait => {
                let mut ranked = bundle.rank_by_setup_time(now, cores, walltime, self.query_mode);
                ranked.retain(|(name, _)| queue_fits(bundle, name));
                let ranked = ranked;
                if ranked.len() < strategy.pilot_count as usize {
                    return Err(format!(
                        "strategy {} needs {} resources fitting {}x{:.0}s pilots; \
                         only {} qualify",
                        strategy.label(),
                        strategy.pilot_count,
                        cores,
                        walltime.as_secs(),
                        ranked.len()
                    ));
                }
                ranked
                    .into_iter()
                    .take(strategy.pilot_count as usize)
                    .unzip()
            }
            ResourceSelection::Random => {
                let mut fitting = bundle.setup_times(now, cores, walltime, self.query_mode);
                fitting.retain(|(name, _)| queue_fits(bundle, name));
                if fitting.len() < strategy.pilot_count as usize {
                    return Err(format!(
                        "strategy {} needs {} resources fitting {}x{:.0}s pilots; \
                         only {} qualify",
                        strategy.label(),
                        strategy.pilot_count,
                        cores,
                        walltime.as_secs(),
                        fitting.len()
                    ));
                }
                rng.shuffle(&mut fitting);
                fitting
                    .into_iter()
                    .take(strategy.pilot_count as usize)
                    .unzip()
            }
            ResourceSelection::Fixed(names) => {
                if names.is_empty() {
                    return Err("fixed resource selection needs at least one name".into());
                }
                let mut rs = Vec::new();
                let mut fs = Vec::new();
                for i in 0..strategy.pilot_count as usize {
                    let name = &names[i % names.len()];
                    if bundle.cluster(name).is_some() && !queue_fits(bundle, name) {
                        return Err(format!(
                            "queue {:?} on {name} cannot take a {cores}x{:.0}s pilot",
                            strategy.queue,
                            walltime.as_secs()
                        ));
                    }
                    let r = bundle
                        .resource_mut(name)
                        .ok_or_else(|| format!("unknown resource {name}"))?;
                    let w = r
                        .query
                        .setup_time(now, cores, walltime, self.query_mode)
                        .ok_or_else(|| format!("pilot does not fit on {name}"))?;
                    rs.push(name.clone());
                    fs.push(w);
                }
                (rs, fs)
            }
        };

        // Step 4: describe pilots.
        let pilots = resources
            .iter()
            .map(|r| {
                let d = PilotDescription::new(r.clone(), cores, walltime);
                match &strategy.queue {
                    Some(q) => d.with_queue(q.clone()),
                    None => d,
                }
            })
            .collect();
        let mut um_config = UmConfig::new(strategy.binding, strategy.scheduler);
        um_config.origin_bandwidth_mbps = self.middleware.origin_bandwidth_mbps;
        um_config.origin_latency = self.middleware.per_transfer_latency;
        um_config.dispatch_overhead = self.middleware.dispatch_overhead;

        Ok(ExecutionPlan {
            estimate: estimate_ttc(&est_app, strategy, &self.middleware, &forecasts),
            strategy: strategy.clone(),
            resources,
            pilots,
            um_config,
        })
    }

    /// [`Self::derive_plan_with_rng`] for strategies that need no
    /// randomness.
    pub fn derive_plan(
        &self,
        now: SimTime,
        app: &SkeletonApp,
        bundle: &mut Bundle,
        strategy: &ExecutionStrategy,
    ) -> Result<ExecutionPlan, String> {
        let mut rng = aimes_sim::SimRng::new(0);
        self.derive_plan_with_rng(now, app, bundle, strategy, &mut rng)
    }

    /// Enumerate a strategy space, derive each member, and return plans
    /// ranked by estimated TTC (best first). Strategies that cannot be
    /// planned (no fitting resources) are skipped.
    pub fn rank_strategies(
        &self,
        now: SimTime,
        app: &SkeletonApp,
        bundle: &mut Bundle,
        space: &StrategySpace,
    ) -> Vec<ExecutionPlan> {
        let mut plans: Vec<ExecutionPlan> = enumerate_strategies(space)
            .iter()
            .filter_map(|s| self.derive_plan(now, app, bundle, s).ok())
            .collect();
        plans.sort_by(|a, b| {
            a.estimate
                .ttc_upper()
                .cmp(&b.estimate.ttc_upper())
                .then_with(|| a.strategy.label().cmp(&b.strategy.label()))
        });
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_cluster::{Cluster, ClusterConfig};
    use aimes_sim::SimRng;
    use aimes_skeleton::{paper_bag, TaskDurationSpec};

    fn idle_bundle(sizes: &[(&str, u32)]) -> Bundle {
        let mut b = Bundle::new();
        for (n, c) in sizes {
            b.add(Cluster::new(ClusterConfig::test(n, *c)));
        }
        b
    }

    fn bag(n: u32) -> SkeletonApp {
        SkeletonApp::generate(
            &paper_bag(n, TaskDurationSpec::Uniform15Min),
            &mut SimRng::new(1),
        )
        .unwrap()
    }

    #[test]
    fn app_info_from_skeleton() {
        let info = AppInfo::from_skeleton(&bag(64));
        assert_eq!(info.n_tasks, 64);
        assert_eq!(info.max_task_duration, SimDuration::from_mins(15.0));
        assert_eq!(info.mean_task_duration, SimDuration::from_mins(15.0));
        assert!((info.total_staging_mb - 64.0 * 1.002).abs() < 1e-9);
        assert_eq!(info.max_concurrent_cores, 64);
    }

    #[test]
    fn early_plan_single_full_size_pilot() {
        let mut b = idle_bundle(&[("alpha", 4096), ("beta", 4096)]);
        let em = ExecutionManager::default();
        let plan = em
            .derive_plan(
                SimTime::ZERO,
                &bag(128),
                &mut b,
                &ExecutionStrategy::paper_early(),
            )
            .unwrap();
        assert_eq!(plan.pilots.len(), 1);
        assert_eq!(plan.pilots[0].cores, 128);
        // Walltime ≈ (900 + Ts + Trp) × 1.1: just over 15 minutes.
        let w = plan.pilots[0].walltime.as_secs();
        assert!(w > 990.0 && w < 1400.0, "walltime {w}");
        assert_eq!(plan.resources.len(), 1);
    }

    #[test]
    fn late_plan_three_pilots_on_distinct_resources() {
        let mut b = idle_bundle(&[("a", 4096), ("b", 4096), ("c", 4096), ("d", 4096)]);
        let em = ExecutionManager::default();
        let plan = em
            .derive_plan(
                SimTime::ZERO,
                &bag(2048),
                &mut b,
                &ExecutionStrategy::paper_late(3),
            )
            .unwrap();
        assert_eq!(plan.pilots.len(), 3);
        assert!(plan.pilots.iter().all(|p| p.cores == 683));
        let mut rs = plan.resources.clone();
        rs.sort();
        rs.dedup();
        assert_eq!(rs.len(), 3, "distinct resources");
        // Late walltime ≈ 3 × single-shot walltime.
        let early_plan = em
            .derive_plan(
                SimTime::ZERO,
                &bag(2048),
                &mut b,
                &ExecutionStrategy::paper_early(),
            )
            .unwrap();
        let ratio = plan.pilots[0].walltime.as_secs() / early_plan.pilots[0].walltime.as_secs();
        assert!((ratio - 3.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn plan_fails_without_enough_fitting_resources() {
        // 2048-task early pilot needs 2048 cores; machines are too small.
        let mut b = idle_bundle(&[("small1", 512), ("small2", 512)]);
        let em = ExecutionManager::default();
        let err = em
            .derive_plan(
                SimTime::ZERO,
                &bag(2048),
                &mut b,
                &ExecutionStrategy::paper_early(),
            )
            .unwrap_err();
        assert!(err.contains("only 0 qualify"), "{err}");
        // But the late 3-pilot split (683 cores) doesn't fit either (512).
        assert!(em
            .derive_plan(
                SimTime::ZERO,
                &bag(2048),
                &mut b,
                &ExecutionStrategy::paper_late(3)
            )
            .is_err());
        // A 4-pilot split (512 cores each) fits only on 2 resources → err.
        assert!(em
            .derive_plan(
                SimTime::ZERO,
                &bag(2048),
                &mut b,
                &ExecutionStrategy::paper_late(4)
            )
            .is_err());
    }

    #[test]
    fn fixed_selection_cycles_resources() {
        let mut b = idle_bundle(&[("x", 4096), ("y", 4096)]);
        let em = ExecutionManager::default();
        let mut strategy = ExecutionStrategy::paper_late(3);
        strategy.selection = ResourceSelection::Fixed(vec!["x".to_string(), "y".to_string()]);
        let plan = em
            .derive_plan(SimTime::ZERO, &bag(64), &mut b, &strategy)
            .unwrap();
        assert_eq!(plan.resources, vec!["x", "y", "x"]);
    }

    #[test]
    fn fixed_selection_unknown_resource_errors() {
        let mut b = idle_bundle(&[("x", 4096)]);
        let em = ExecutionManager::default();
        let mut strategy = ExecutionStrategy::paper_late(2);
        strategy.selection = ResourceSelection::Fixed(vec!["nope".to_string()]);
        assert!(em
            .derive_plan(SimTime::ZERO, &bag(64), &mut b, &strategy)
            .is_err());
    }

    #[test]
    fn random_selection_draws_distinct_fitting_resources() {
        use aimes_sim::SimRng;
        let mut b = idle_bundle(&[("a", 4096), ("b", 4096), ("c", 4096), ("tiny", 8)]);
        let em = ExecutionManager::default();
        let mut strategy = ExecutionStrategy::paper_late(3);
        strategy.selection = ResourceSelection::Random;
        let app = bag(512); // 171-core pilots: "tiny" cannot fit them
        let mut seen = std::collections::HashSet::new();
        for seed in 0..10 {
            let mut rng = SimRng::new(seed);
            let plan = em
                .derive_plan_with_rng(SimTime::ZERO, &app, &mut b, &strategy, &mut rng)
                .unwrap();
            assert_eq!(plan.resources.len(), 3);
            let mut rs = plan.resources.clone();
            rs.sort();
            rs.dedup();
            assert_eq!(rs.len(), 3);
            assert!(!plan.resources.contains(&"tiny".to_string()));
            seen.insert(plan.resources.clone());
        }
        // Different seeds produce different orderings.
        assert!(seen.len() > 1);
    }

    #[test]
    fn ranking_prefers_less_loaded_resources() {
        use aimes_cluster::JobRequest;
        use aimes_sim::Simulation;
        let mut sim = Simulation::new(1);
        let busy = Cluster::new(ClusterConfig::test("busy", 4096));
        let idle = Cluster::new(ClusterConfig::test("idle", 4096));
        busy.submit(
            &mut sim,
            JobRequest::background(
                4096,
                SimDuration::from_secs(5000.0),
                SimDuration::from_secs(5000.0),
            ),
        );
        sim.run_until(sim.now());
        let mut b = Bundle::new();
        b.add(busy);
        b.add(idle);
        let em = ExecutionManager::default();
        let plan = em
            .derive_plan(
                sim.now(),
                &bag(64),
                &mut b,
                &ExecutionStrategy::paper_early(),
            )
            .unwrap();
        assert_eq!(plan.resources, vec!["idle"]);
        assert_eq!(plan.estimate.tw, SimDuration::ZERO);
    }

    #[test]
    fn queue_limits_disqualify_resources() {
        use aimes_cluster::cluster::QueueConfig;
        // Resource "qd" has a debug queue capped at 8 cores / 10 min;
        // "plain" has only the default queue.
        let mut cfg = ClusterConfig::test("qd", 4096);
        cfg.queues = vec![
            QueueConfig::normal(),
            QueueConfig::debug(SimDuration::from_mins(10.0), 8),
        ];
        let mut b = Bundle::new();
        b.add(Cluster::new(cfg));
        b.add(Cluster::new(ClusterConfig::test("plain", 4096)));
        let em = ExecutionManager::default();
        let mut strategy = ExecutionStrategy::paper_early();
        strategy.queue = Some("debug".to_string());
        // 64 tasks → 64-core pilot: exceeds the debug core cap on "qd",
        // and "plain" has no debug queue at all → unplannable.
        let err = em
            .derive_plan(SimTime::ZERO, &bag(64), &mut b, &strategy)
            .unwrap_err();
        assert!(err.contains("qualify"), "{err}");
    }

    #[test]
    fn queue_routed_into_pilot_descriptions() {
        use aimes_cluster::cluster::QueueConfig;
        let mut cfg = ClusterConfig::test("qd", 4096);
        cfg.queues = vec![
            QueueConfig::normal(),
            QueueConfig::debug(SimDuration::from_hours(2.0), 256),
        ];
        let mut b = Bundle::new();
        b.add(Cluster::new(cfg));
        let em = ExecutionManager::default();
        let mut strategy = ExecutionStrategy::paper_early();
        strategy.queue = Some("debug".to_string());
        let plan = em
            .derive_plan(SimTime::ZERO, &bag(64), &mut b, &strategy)
            .unwrap();
        assert_eq!(plan.pilots[0].queue.as_deref(), Some("debug"));
        assert_eq!(plan.resources, vec!["qd"]);
    }

    #[test]
    fn degraded_information_never_makes_a_plannable_pool_unplannable() {
        use aimes_bundle::{InfoConfig, InfoDisposition};
        // The information channel is dead from the first query: every
        // answer is Unavailable, the hot pool is empty (nothing was ever
        // fetched), and the predictor has no history. The ladder must
        // bottom out at the static default — pessimistic but usable — so
        // a pool that fits the pilots still yields a plan.
        let mut b = Bundle::with_info_config(InfoConfig::default());
        for (n, c) in [("alpha", 4096), ("beta", 4096), ("gamma", 4096)] {
            b.add(Cluster::new(ClusterConfig::test(n, c)));
        }
        b.info_handle()
            .borrow_mut()
            .set_disposition(Box::new(|_, _| InfoDisposition::Unavailable));
        let em = ExecutionManager::default();
        let plan = em
            .derive_plan(
                SimTime::ZERO,
                &bag(512),
                &mut b,
                &ExecutionStrategy::paper_late(3),
            )
            .expect("blackout must degrade forecasts, not kill planning");
        assert_eq!(plan.resources.len(), 3);
        // Every forecast came from the static-default rung.
        let stats = b.info_handle().borrow().stats();
        assert!(stats.static_fallbacks > 0, "{stats:?}");
        assert_eq!(stats.fresh, 0);
        // Oversized pilots are still rejected — the ladder answers "how
        // long", never "does it fit".
        let err = em
            .derive_plan(
                SimTime::ZERO,
                &bag(8192),
                &mut b,
                &ExecutionStrategy::paper_early(),
            )
            .unwrap_err();
        assert!(err.contains("qualify"), "{err}");
    }

    #[test]
    fn rank_strategies_orders_by_estimated_ttc() {
        let mut b = idle_bundle(&[("a", 4096), ("b", 4096), ("c", 4096)]);
        let em = ExecutionManager::default();
        let plans = em.rank_strategies(SimTime::ZERO, &bag(512), &mut b, &StrategySpace::default());
        assert!(!plans.is_empty());
        for w in plans.windows(2) {
            assert!(w[0].estimate.ttc_upper() <= w[1].estimate.ttc_upper());
        }
    }
}
