//! The decision set of an execution strategy.
//!
//! Table I columns: binding, scheduler, number of pilots, pilot size,
//! pilot walltime — plus the resource-selection decision that precedes
//! them (§III-D step 3).

use aimes_pilot::{Binding, UnitScheduler};
use serde::{Deserialize, Serialize};

/// How pilot core counts are derived from the application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PilotSizing {
    /// One pilot sized to run every task concurrently (Table I early
    /// binding: `#Tasks` cores).
    TasksTotal,
    /// Each pilot gets `#Tasks / #Pilots` cores (Table I late binding).
    TasksOverPilots,
    /// Fixed core count per pilot.
    Fixed(u32),
}

/// How pilot walltimes are derived.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum WalltimePolicy {
    /// `Tx + Ts + Trp` (Table I early binding: everything runs once,
    /// concurrently).
    SingleShot,
    /// `(Tx + Ts + Trp) · #Pilots` (Table I late binding: the first
    /// active pilot may end up executing every task).
    ScaledByPilots,
    /// An explicit walltime in seconds (no estimator, no safety margin) —
    /// used by the walltime-sensitivity ablation and failure-injection
    /// tests; real batch users guess walltimes exactly like this.
    FixedSecs(u64),
}

/// How resources are chosen for the pilots.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ResourceSelection {
    /// Rank by bundle setup-time estimate, take the best `#Pilots`.
    RankedByWait,
    /// Uniformly random distinct fitting resources — the paper's
    /// experimental methodology ("the resources are chosen from a pool of
    /// five", pilot submission order randomized) so that measured Tw
    /// reflects the *unconditioned* per-resource wait distribution.
    Random,
    /// Use exactly these resources (one pilot each, cycling if fewer
    /// names than pilots).
    Fixed(Vec<String>),
}

/// A fully specified execution strategy.
///
/// ```
/// use aimes_strategy::ExecutionStrategy;
///
/// let early = ExecutionStrategy::paper_early();
/// let late = ExecutionStrategy::paper_late(3);
/// // Table I sizing: one full-size pilot vs three third-size pilots.
/// assert_eq!(early.pilot_cores(2048), 2048);
/// assert_eq!(late.pilot_cores(2048), 683);
/// assert_eq!(late.label(), "late-backfill-3p");
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ExecutionStrategy {
    pub binding: Binding,
    pub scheduler: UnitScheduler,
    pub pilot_count: u32,
    pub sizing: PilotSizing,
    pub walltime: WalltimePolicy,
    pub selection: ResourceSelection,
    /// Named submission queue for every pilot (`None` = each resource's
    /// default queue). Qualification against per-queue limits happens at
    /// plan derivation.
    #[serde(default)]
    pub queue: Option<String>,
}

impl ExecutionStrategy {
    /// Table I, experiments 1–2: early binding, direct scheduling, one
    /// pilot with `#Tasks` cores, single-shot walltime.
    pub fn paper_early() -> Self {
        ExecutionStrategy {
            binding: Binding::Early,
            scheduler: UnitScheduler::Direct,
            pilot_count: 1,
            sizing: PilotSizing::TasksTotal,
            walltime: WalltimePolicy::SingleShot,
            selection: ResourceSelection::RankedByWait,
            queue: None,
        }
    }

    /// Table I, experiments 3–4: late binding, backfill scheduling,
    /// `pilots` pilots (the paper uses up to 3) each with
    /// `#Tasks / #Pilots` cores, walltime scaled by the pilot count.
    pub fn paper_late(pilots: u32) -> Self {
        assert!(pilots >= 1);
        ExecutionStrategy {
            binding: Binding::Late,
            scheduler: UnitScheduler::Backfill,
            pilot_count: pilots,
            sizing: PilotSizing::TasksOverPilots,
            walltime: WalltimePolicy::ScaledByPilots,
            selection: ResourceSelection::RankedByWait,
            queue: None,
        }
    }

    /// Pilot core count for an application of `n_tasks` single-core tasks
    /// (ceil division so every task fits somewhere).
    pub fn pilot_cores(&self, n_tasks: u32) -> u32 {
        match self.sizing {
            PilotSizing::TasksTotal => n_tasks,
            PilotSizing::TasksOverPilots => n_tasks.div_ceil(self.pilot_count),
            PilotSizing::Fixed(c) => c,
        }
    }

    /// Short label for tables and figures, e.g. `early-direct-1p`.
    pub fn label(&self) -> String {
        let b = match self.binding {
            Binding::Early => "early",
            Binding::Late => "late",
        };
        let s = match self.scheduler {
            UnitScheduler::Direct => "direct",
            UnitScheduler::RoundRobin => "rr",
            UnitScheduler::Backfill => "backfill",
        };
        format!("{b}-{s}-{}p", self.pilot_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_early_matches_table1() {
        let s = ExecutionStrategy::paper_early();
        assert_eq!(s.binding, Binding::Early);
        assert_eq!(s.scheduler, UnitScheduler::Direct);
        assert_eq!(s.pilot_count, 1);
        assert_eq!(s.pilot_cores(2048), 2048);
        assert_eq!(s.walltime, WalltimePolicy::SingleShot);
        assert_eq!(s.label(), "early-direct-1p");
    }

    #[test]
    fn paper_late_matches_table1() {
        let s = ExecutionStrategy::paper_late(3);
        assert_eq!(s.binding, Binding::Late);
        assert_eq!(s.scheduler, UnitScheduler::Backfill);
        assert_eq!(s.pilot_cores(2048), 683); // ceil(2048/3)
        assert_eq!(s.pilot_cores(8), 3);
        assert_eq!(s.walltime, WalltimePolicy::ScaledByPilots);
        assert_eq!(s.label(), "late-backfill-3p");
    }

    #[test]
    fn fixed_sizing() {
        let mut s = ExecutionStrategy::paper_late(2);
        s.sizing = PilotSizing::Fixed(64);
        assert_eq!(s.pilot_cores(2048), 64);
    }

    #[test]
    fn serde_roundtrip() {
        let s = ExecutionStrategy::paper_late(3);
        let json = serde_json::to_string(&s).unwrap();
        let back: ExecutionStrategy = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
