//! Typed operation errors.
//!
//! PR 1 reported failures only through the job state machine (a terminal
//! `Failed`). The detection layer needs more texture: *which* operation
//! failed, whether retrying can help, and whether the failure was served
//! from a tripped circuit breaker without touching the wire. Callers match
//! on these to decide between retrying, suspecting the resource, or
//! escalating to the blacklist/re-plan machinery.

use std::fmt;

/// The operation a [`SagaError`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SagaOp {
    /// Job submission round-trip.
    Submit,
    /// Cancellation round-trip.
    Cancel,
    /// Status query round-trip (`squeue`/`qstat`/`condor_q`).
    StatusQuery,
}

impl fmt::Display for SagaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SagaOp::Submit => write!(f, "submit"),
            SagaOp::Cancel => write!(f, "cancel"),
            SagaOp::StatusQuery => write!(f, "status-query"),
        }
    }
}

/// Why an operation against a job service failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SagaError {
    /// Every bounded retry failed transiently (network hiccups, scheduler
    /// timeouts, or an unreachable front end). The condition may clear;
    /// the *caller* decides whether to try again later.
    TransientExhausted {
        /// Which operation gave up.
        op: SagaOp,
        /// How many attempts were burned.
        attempts: u32,
    },
    /// The operation failed in a way no retry can fix (injected permanent
    /// fault: bad credentials, misconfiguration).
    Permanent {
        /// Which operation failed.
        op: SagaOp,
    },
    /// The per-resource circuit breaker is open: the request was rejected
    /// locally without a round-trip. Repeated failures already proved the
    /// endpoint unhealthy; hammering it helps nobody.
    CircuitOpen {
        /// Which operation was rejected.
        op: SagaOp,
        /// The resource whose breaker is open.
        resource: String,
    },
    /// The job id is not known to this service.
    UnknownJob,
}

impl fmt::Display for SagaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SagaError::TransientExhausted { op, attempts } => {
                write!(f, "{op} failed transiently after {attempts} attempts")
            }
            SagaError::Permanent { op } => write!(f, "{op} failed permanently"),
            SagaError::CircuitOpen { op, resource } => {
                write!(f, "{op} rejected: circuit open for {resource}")
            }
            SagaError::UnknownJob => write!(f, "unknown job"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_operation() {
        let e = SagaError::TransientExhausted {
            op: SagaOp::StatusQuery,
            attempts: 4,
        };
        assert_eq!(
            e.to_string(),
            "status-query failed transiently after 4 attempts"
        );
        let e = SagaError::CircuitOpen {
            op: SagaOp::Submit,
            resource: "gordon".into(),
        };
        assert_eq!(e.to_string(), "submit rejected: circuit open for gordon");
    }
}
