//! # aimes-saga — interoperability layer
//!
//! RADICAL-Pilot submits pilots and executes tasks on multiple resources
//! through RADICAL-SAGA, "the reference implementation of the SAGA OGF
//! standard" (§III-C): one uniform job API over many batch-system flavours.
//! The paper's conclusions highlight exactly this layer — "the
//! interoperability layer of our middleware abstracts the properties of
//! diverse resources (Beowulf and Cray clusters, HTCondor pools, Unix
//! workstations)" (§V).
//!
//! This crate reproduces that architecture:
//!
//! * [`job_api`] — the OGF-SAGA job model: [`job_api::JobDescription`],
//!   [`job_api::SagaJobState`] (`New → Pending → Running → Done/Failed/
//!   Canceled`).
//! * [`adaptor`] — per-middleware adaptors (PBS-, SLURM-, HTCondor-
//!   flavoured) with their own submission latencies and transient-failure
//!   behaviours, bridging to the simulated clusters.
//! * [`session`] — a session multiplexing job services over the resource
//!   pool, with automatic retry of transient submission failures.

//! * [`breaker`] — a per-resource circuit breaker (closed / open /
//!   half-open) shared by submit, cancel and status-query operations.
//! * [`error`] — typed operation errors ([`error::SagaError`]) so callers
//!   can tell retryable hiccups from permanent failures and breaker
//!   rejections.

pub mod adaptor;
pub mod breaker;
pub mod error;
pub mod job_api;
pub mod session;

pub use adaptor::{adaptor_for, BatchAdaptor, CondorAdaptor, PbsAdaptor, SlurmAdaptor};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use error::{SagaError, SagaOp};
pub use job_api::{JobDescription, SagaJobId, SagaJobState};
pub use session::{JobService, Session};
