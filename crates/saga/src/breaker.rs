//! Per-resource circuit breaker.
//!
//! A dead or drowning front end fails every round-trip, and every failed
//! round-trip costs a full adaptor latency plus retries. The breaker is
//! the standard three-state machine — closed / open / half-open — shared
//! by all operations (submit, cancel, status query) against one resource:
//! enough consecutive failures trip it open, an open breaker rejects
//! requests locally for a cooldown, and after the cooldown a single probe
//! is let through to decide between closing again and re-opening.
//!
//! The breaker is a pure state machine driven by simulation time; the
//! [`JobService`](crate::JobService) owns one and consults it around each
//! wire operation.

use aimes_sim::{SimDuration, SimTime};

/// Tuning knobs for one breaker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures (across all operations) that trip the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects requests before letting a probe
    /// through.
    pub cooldown: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: SimDuration::from_secs(300.0),
        }
    }
}

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; failures are counted.
    Closed,
    /// Requests are rejected locally until the cooldown elapses.
    Open,
    /// Cooldown elapsed; one probe request is in flight.
    HalfOpen,
}

/// The three-state machine. Time never flows backwards in the simulator,
/// so transitions are checked lazily at each call.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            trips: 0,
        }
    }

    /// Whether a request may go to the wire at `now`. An open breaker
    /// whose cooldown has elapsed moves to half-open and admits the call
    /// as its probe.
    pub fn allows(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.opened_at + self.config.cooldown {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful round-trip: closes the breaker and clears the
    /// failure streak.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record a failed round-trip at `now`. Returns `true` when this
    /// failure tripped the breaker open (the caller reports the trip
    /// upstream exactly once per opening).
    pub fn record_failure(&mut self, now: SimTime) -> bool {
        self.consecutive_failures += 1;
        let trip = match self.state {
            // A failed half-open probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.opened_at = now;
            self.trips += 1;
        }
        trip
    }

    /// Current state without side effects (does not advance open →
    /// half-open; use [`allows`](Self::allows) for that).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times this breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(60.0),
        });
        assert!(b.allows(t(0.0)));
        assert!(!b.record_failure(t(1.0)));
        assert!(!b.record_failure(t(2.0)));
        assert!(b.record_failure(t(3.0)), "third failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(t(10.0)), "open breaker rejects during cooldown");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_secs(60.0),
        });
        b.record_failure(t(1.0));
        b.record_success();
        assert!(!b.record_failure(t(2.0)), "streak restarted after success");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_decides() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(60.0),
        });
        assert!(b.record_failure(t(0.0)));
        assert!(!b.allows(t(59.0)));
        assert!(b.allows(t(60.0)), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe re-opens and restarts the cooldown from now.
        assert!(b.record_failure(t(65.0)));
        assert!(!b.allows(t(120.0)));
        assert!(b.allows(t(125.0)));
        // Successful probe closes.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn half_open_admits_every_caller_until_the_probe_reports() {
        // The probe window is not a token bucket: between the open →
        // half-open transition and the probe's result, every caller is
        // admitted. This pins the current (deliberate) semantics — the
        // simulated adaptor serializes operations per resource, so in
        // practice one probe is in flight at a time.
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(30.0),
        });
        assert!(b.record_failure(t(0.0)));
        assert!(b.allows(t(30.0)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allows(t(31.0)), "half-open keeps admitting");
        assert!(b.allows(t(32.0)));
        assert_eq!(b.state(), BreakerState::HalfOpen, "no state change");
    }

    #[test]
    fn failed_probe_restarts_cooldown_from_the_failure_instant() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(100.0),
        });
        assert!(b.record_failure(t(0.0)));
        assert!(b.allows(t(100.0)), "first probe admitted");
        // The probe fails late, at t=140: the new cooldown runs from 140,
        // not from the original opening.
        assert!(b.record_failure(t(140.0)), "failed probe counts as a trip");
        assert_eq!(b.trips(), 2);
        assert!(!b.allows(t(200.0)), "old deadline no longer applies");
        assert!(!b.allows(t(239.0)));
        assert!(b.allows(t(240.0)), "new cooldown measured from failure");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn successful_probe_fully_rearms_the_threshold() {
        // After a successful probe closes the breaker, the failure streak
        // is zero: it takes a full threshold of fresh failures to trip
        // again, not threshold minus the pre-open residue.
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(10.0),
        });
        for i in 0..3 {
            b.record_failure(t(i as f64));
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allows(t(13.0)));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_failure(t(20.0)));
        assert!(!b.record_failure(t(21.0)), "two failures do not re-trip");
        assert!(b.record_failure(t(22.0)), "the third does");
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn failures_while_open_neither_retrip_nor_extend_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(50.0),
        });
        assert!(b.record_failure(t(0.0)));
        // Stragglers already on the wire report their failures while the
        // breaker is open: no second trip, no cooldown extension.
        assert!(!b.record_failure(t(5.0)));
        assert!(!b.record_failure(t(10.0)));
        assert_eq!(b.trips(), 1);
        assert!(b.allows(t(50.0)), "cooldown still measured from the trip");
    }
}
