//! The OGF-SAGA job model (GFD.90) as used by the middleware.

use aimes_cluster::JobState;
use aimes_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Session-global job identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SagaJobId(pub u64);

impl std::fmt::Display for SagaJobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "saga.{}", self.0)
    }
}

/// SAGA job states (GFD.90 state model).
///
/// ```text
/// New ──submit──► Pending ──► Running ──► Done
///        │           │           ├──────► Failed
///        │           └──cancel──►│
///        └──────transient error─►└──────► Canceled
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SagaJobState {
    /// Created, not yet accepted by the backend.
    New,
    /// Accepted by the backend queue.
    Pending,
    Running,
    Done,
    Failed,
    Canceled,
}

impl SagaJobState {
    /// True for states a job never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SagaJobState::Done | SagaJobState::Failed | SagaJobState::Canceled
        )
    }

    /// Legal transition check, mirroring GFD.90.
    pub fn can_transition_to(self, next: SagaJobState) -> bool {
        use SagaJobState::*;
        matches!(
            (self, next),
            (New, Pending)
                | (New, Failed)
                | (New, Canceled)
                | (Pending, Running)
                | (Pending, Canceled)
                | (Pending, Failed)
                | (Running, Done)
                | (Running, Failed)
                | (Running, Canceled)
        )
    }

    /// Translate a backend (cluster) job state into the SAGA model.
    pub fn from_backend(state: JobState) -> SagaJobState {
        match state {
            JobState::Queued => SagaJobState::Pending,
            JobState::Running => SagaJobState::Running,
            JobState::Completed => SagaJobState::Done,
            JobState::Killed => SagaJobState::Failed,
            JobState::Cancelled => SagaJobState::Canceled,
        }
    }
}

/// What the middleware asks of a resource — the SAGA job description
/// attributes the pilot layer uses (`total_cpu_count`, `wall_time_limit`,
/// plus a tag for traces).
#[derive(Clone, Debug, PartialEq)]
pub struct JobDescription {
    /// `total_cpu_count`.
    pub cores: u32,
    /// `wall_time_limit`.
    pub walltime: SimDuration,
    /// `queue` — the named submission queue; `None` uses the resource's
    /// default.
    pub queue: Option<String>,
    /// Propagated into backend traces (e.g. the pilot id).
    pub tag: String,
}

impl JobDescription {
    /// Describe a pilot job.
    pub fn new(cores: u32, walltime: SimDuration, tag: impl Into<String>) -> Self {
        JobDescription {
            cores,
            walltime,
            queue: None,
            tag: tag.into(),
        }
    }

    /// Route to a named queue.
    pub fn with_queue(mut self, queue: impl Into<String>) -> Self {
        self.queue = Some(queue.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        use SagaJobState::*;
        for s in [Done, Failed, Canceled] {
            assert!(s.is_terminal());
        }
        for s in [New, Pending, Running] {
            assert!(!s.is_terminal());
        }
    }

    #[test]
    fn legal_lifecycle() {
        use SagaJobState::*;
        assert!(New.can_transition_to(Pending));
        assert!(Pending.can_transition_to(Running));
        assert!(Running.can_transition_to(Done));
        assert!(Pending.can_transition_to(Canceled));
        assert!(New.can_transition_to(Failed)); // submission failure
        assert!(!Done.can_transition_to(Running));
        assert!(!New.can_transition_to(Running)); // must pass through Pending
        assert!(!Running.can_transition_to(Pending));
    }

    #[test]
    fn backend_mapping() {
        use aimes_cluster::JobState as B;
        assert_eq!(SagaJobState::from_backend(B::Queued), SagaJobState::Pending);
        assert_eq!(
            SagaJobState::from_backend(B::Running),
            SagaJobState::Running
        );
        assert_eq!(SagaJobState::from_backend(B::Completed), SagaJobState::Done);
        assert_eq!(SagaJobState::from_backend(B::Killed), SagaJobState::Failed);
        assert_eq!(
            SagaJobState::from_backend(B::Cancelled),
            SagaJobState::Canceled
        );
    }

    #[test]
    fn description_builder() {
        let d = JobDescription::new(128, SimDuration::from_hours(2.0), "pilot.3");
        assert_eq!(d.cores, 128);
        assert_eq!(d.walltime.as_hours(), 2.0);
        assert_eq!(d.tag, "pilot.3");
    }
}
