//! Sessions and job services.
//!
//! A [`Session`] fronts the whole resource pool; a [`JobService`] fronts
//! one resource through its [`BatchAdaptor`].
//! Submissions incur the adaptor's round-trip latency, transient failures
//! are retried with backoff, and backend state changes are translated into
//! the SAGA state model and delivered to the submitter's callback — the
//! mechanism the pilot layer builds its own state model on.

use crate::adaptor::{adaptor_for, BatchAdaptor};
use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::error::{SagaError, SagaOp};
use crate::job_api::{JobDescription, SagaJobId, SagaJobState};
use aimes_cluster::{Cluster, JobId as BackendJobId, JobRequest, JobState};
use aimes_sim::{SagaPhase, SimDuration, SimRng, Simulation, TraceKind};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Callback invoked on every SAGA state transition of a job.
pub type StateCallback = Box<dyn FnMut(&mut Simulation, SagaJobState)>;

/// Callback fired when a resource's circuit breaker trips open.
pub type BreakerTripCallback = Box<dyn FnMut(&mut Simulation, &str)>;

/// Callback receiving the answer of one status query.
pub type StatusCallback = Box<dyn FnOnce(&mut Simulation, Result<SagaJobState, SagaError>)>;

/// Ceiling on retry backoff (seconds): exponential growth must not
/// outwait the failure it is meant to ride out.
const BACKOFF_CAP_SECS: f64 = 120.0;

/// Exponential backoff with jitter: the fresh round-trip latency draw *is*
/// the jitter source, doubled per burned attempt and capped. Keeping the
/// jitter inside the latency draw means retry paths consume exactly one
/// RNG draw, the same shape as the original linear backoff.
fn backoff(lat: SimDuration, attempts: u32) -> SimDuration {
    let factor = f64::from(2u32.saturating_pow(attempts.saturating_sub(1)).min(1 << 16));
    (lat * factor).min(SimDuration::from_secs(BACKOFF_CAP_SECS))
}

/// The typed trace kind for a SAGA job state (names match the legacy
/// free-string events byte for byte).
fn saga_phase(state: SagaJobState) -> SagaPhase {
    match state {
        SagaJobState::New => SagaPhase::New,
        SagaJobState::Pending => SagaPhase::Pending,
        SagaJobState::Running => SagaPhase::Running,
        SagaJobState::Done => SagaPhase::Done,
        SagaJobState::Failed => SagaPhase::Failed,
        SagaJobState::Canceled => SagaPhase::Canceled,
    }
}

struct JobRecord {
    desc: JobDescription,
    state: SagaJobState,
    backend: Option<BackendJobId>,
    attempts: u32,
    cancel_requested: bool,
    callback: Option<StateCallback>,
}

struct ServiceState {
    resource: String,
    cluster: Cluster,
    adaptor: Box<dyn BatchAdaptor>,
    rng: SimRng,
    jobs: HashMap<SagaJobId, JobRecord>,
    counter: Rc<Cell<u64>>,
    max_attempts: u32,
    // Fault injection on top of the adaptor's intrinsic flakiness. The
    // transient boost adds to the adaptor's retry-able failure chance; the
    // permanent chance fails a submission attempt outright (middleware
    // misconfiguration, credential expiry — things a retry cannot fix).
    fault_transient: f64,
    fault_permanent: f64,
    // Optional per-resource circuit breaker shared by submit, cancel and
    // status queries. None (the default) keeps the legacy always-retry
    // behaviour and its exact event/RNG streams.
    breaker: Option<CircuitBreaker>,
    trip_subscribers: Vec<BreakerTripCallback>,
}

/// Handle to the job service of one resource.
#[derive(Clone)]
pub struct JobService {
    inner: Rc<RefCell<ServiceState>>,
}

impl JobService {
    /// Create a service for `cluster`, choosing the adaptor by resource
    /// name. `counter` is the session-global id allocator.
    fn new(sim: &Simulation, cluster: Cluster, counter: Rc<Cell<u64>>) -> Self {
        let resource = cluster.name();
        let adaptor = adaptor_for(&resource);
        let rng = sim.fork_rng(&format!("saga.{resource}"));
        JobService {
            inner: Rc::new(RefCell::new(ServiceState {
                resource,
                cluster,
                adaptor,
                rng,
                jobs: HashMap::new(),
                counter,
                max_attempts: 4,
                fault_transient: 0.0,
                fault_permanent: 0.0,
                breaker: None,
                trip_subscribers: Vec::new(),
            })),
        }
    }

    /// Arm the per-resource circuit breaker. Until this is called the
    /// service behaves exactly as before (no breaker consults, no extra
    /// draws), so legacy runs replay unchanged.
    pub fn enable_breaker(&self, config: BreakerConfig) {
        self.inner.borrow_mut().breaker = Some(CircuitBreaker::new(config));
    }

    /// Subscribe to breaker trips. The callback receives the resource name
    /// each time the breaker transitions to open.
    pub fn on_breaker_trip(&self, cb: impl FnMut(&mut Simulation, &str) + 'static) {
        self.inner.borrow_mut().trip_subscribers.push(Box::new(cb));
    }

    /// Current breaker state, if one is armed.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.inner.borrow().breaker.as_ref().map(|b| b.state())
    }

    /// How often the breaker has tripped open.
    pub fn breaker_trips(&self) -> u64 {
        self.inner
            .borrow()
            .breaker
            .as_ref()
            .map_or(0, |b| b.trips())
    }

    /// Deliver a breaker trip to subscribers (re-entrancy-safe: callbacks
    /// may submit or cancel through this very service).
    fn fire_breaker_trip(&self, sim: &mut Simulation) {
        let (mut subs, resource) = {
            let mut st = self.inner.borrow_mut();
            (
                std::mem::take(&mut st.trip_subscribers),
                st.resource.clone(),
            )
        };
        sim.metrics()
            .inc(|| format!("saga.{resource}.breaker_trips"));
        sim.tracer().record_with(sim.now(), || {
            (
                format!("saga.breaker.{resource}"),
                TraceKind::Saga(SagaPhase::BreakerTrip),
                "circuit open".into(),
            )
        });
        for cb in subs.iter_mut() {
            cb(sim, &resource);
        }
        let mut st = self.inner.borrow_mut();
        let added = std::mem::take(&mut st.trip_subscribers);
        subs.extend(added);
        st.trip_subscribers = subs;
    }

    /// The resource this service fronts.
    pub fn resource(&self) -> String {
        self.inner.borrow().resource.clone()
    }

    /// Adaptor flavour (for traces).
    pub fn flavor(&self) -> &'static str {
        self.inner.borrow().adaptor.flavor()
    }

    /// The cluster behind this service (introspection used by bundles).
    pub fn cluster(&self) -> Cluster {
        self.inner.borrow().cluster.clone()
    }

    /// Inject launch failures on top of the adaptor's intrinsic flakiness:
    /// `transient` adds to the retry-able failure chance per attempt,
    /// `permanent` fails an attempt outright (no retry). Both draws come
    /// from the service's own RNG stream, so a given seed replays the same
    /// failure pattern. Zero probabilities consume no extra draws — the
    /// no-fault stream is byte-identical to a service never configured.
    pub fn inject_launch_faults(&self, transient: f64, permanent: f64) {
        let mut st = self.inner.borrow_mut();
        st.fault_transient = transient.clamp(0.0, 1.0);
        st.fault_permanent = permanent.clamp(0.0, 1.0);
    }

    /// Submit a job. The callback fires on every state transition
    /// (Pending, Running, then a terminal state). Returns immediately with
    /// the job id; the actual submission happens after the adaptor latency.
    pub fn submit(
        &self,
        sim: &mut Simulation,
        desc: JobDescription,
        callback: impl FnMut(&mut Simulation, SagaJobState) + 'static,
    ) -> SagaJobId {
        let (id, latency) = {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            let id = SagaJobId(st.counter.get());
            st.counter.set(id.0 + 1);
            let latency = st.adaptor.submission_latency(&mut st.rng);
            st.jobs.insert(
                id,
                JobRecord {
                    desc,
                    state: SagaJobState::New,
                    backend: None,
                    attempts: 0,
                    cancel_requested: false,
                    callback: Some(Box::new(callback)),
                },
            );
            (id, latency)
        };
        sim.metrics()
            .inc(|| format!("saga.{}.submissions", self.resource()));
        sim.tracer().record_with(sim.now(), || {
            (
                format!("saga.{}", id.0),
                TraceKind::Saga(SagaPhase::New),
                self.resource(),
            )
        });
        let this = self.clone();
        sim.schedule_in(latency, move |sim| this.attempt_submission(sim, id));
        id
    }

    fn attempt_submission(&self, sim: &mut Simulation, id: SagaJobId) {
        let _prof = sim.profiler().scope("saga.session");
        enum Outcome {
            Cancelled,
            Retry(SimDuration),
            Fail,
            Submitted(BackendJobId),
        }
        let now = sim.now();
        let mut tripped = false;
        let outcome = {
            let mut guard = self.inner.borrow_mut();
            let st = &mut *guard;
            let rec = st.jobs.get_mut(&id).expect("job exists");
            if rec.cancel_requested {
                Outcome::Cancelled
            } else if !st.breaker.as_mut().is_none_or(|b| b.allows(now)) {
                // Open breaker: rejected locally, no round-trip. The
                // attempt is still burned; retries back off in case the
                // breaker re-admits traffic within the attempt budget.
                rec.attempts += 1;
                let attempts = rec.attempts;
                if attempts >= st.max_attempts {
                    Outcome::Fail
                } else {
                    let lat = st.adaptor.submission_latency(&mut st.rng);
                    Outcome::Retry(backoff(lat, attempts))
                }
            } else if st.cluster.is_decommissioned() {
                // The front end died with the machine: deterministic
                // connection refusal — observable, no fault draw, and
                // evidence against the endpoint for the breaker.
                rec.attempts += 1;
                let attempts = rec.attempts;
                tripped = st.breaker.as_mut().is_some_and(|b| b.record_failure(now));
                if attempts >= st.max_attempts {
                    Outcome::Fail
                } else {
                    let lat = st.adaptor.submission_latency(&mut st.rng);
                    Outcome::Retry(backoff(lat, attempts))
                }
            } else if st.fault_permanent > 0.0 && st.rng.chance(st.fault_permanent) {
                rec.attempts += 1;
                Outcome::Fail
            } else {
                let transient_p =
                    (st.adaptor.transient_failure_chance() + st.fault_transient).min(0.95);
                let failed = st.rng.chance(transient_p);
                rec.attempts += 1;
                if failed {
                    let attempts = rec.attempts;
                    tripped = st.breaker.as_mut().is_some_and(|b| b.record_failure(now));
                    if attempts >= st.max_attempts {
                        Outcome::Fail
                    } else {
                        // Exponential backoff; the fresh round-trip draw
                        // doubles as jitter.
                        let lat = st.adaptor.submission_latency(&mut st.rng);
                        Outcome::Retry(backoff(lat, attempts))
                    }
                } else {
                    if let Some(b) = st.breaker.as_mut() {
                        b.record_success();
                    }
                    let (cores, walltime, tag, queue) = (
                        rec.desc.cores,
                        rec.desc.walltime,
                        rec.desc.tag.clone(),
                        rec.desc.queue.clone(),
                    );
                    let cluster = st.cluster.clone();
                    drop(guard);
                    let mut req = JobRequest::pilot(cores, walltime, tag);
                    req.queue = queue;
                    let backend = cluster.submit(sim, req);
                    Outcome::Submitted(backend)
                }
            }
        };
        if tripped {
            self.fire_breaker_trip(sim);
        }
        match outcome {
            Outcome::Cancelled => self.transition(sim, id, SagaJobState::Canceled),
            Outcome::Fail => self.transition(sim, id, SagaJobState::Failed),
            Outcome::Retry(delay) => {
                let this = self.clone();
                sim.metrics()
                    .inc(|| format!("saga.{}.retry_submission", self.resource()));
                sim.tracer().record_with(sim.now(), || {
                    (
                        format!("saga.{}", id.0),
                        TraceKind::Saga(SagaPhase::RetrySubmission),
                        self.resource(),
                    )
                });
                sim.schedule_in(delay, move |sim| this.attempt_submission(sim, id));
            }
            Outcome::Submitted(backend) => {
                {
                    let mut st = self.inner.borrow_mut();
                    st.jobs.get_mut(&id).expect("exists").backend = Some(backend);
                }
                self.transition(sim, id, SagaJobState::Pending);
                let this = self.clone();
                let cluster = self.inner.borrow().cluster.clone();
                cluster.watch(backend, move |sim, bstate| {
                    this.on_backend_change(sim, id, bstate);
                });
            }
        }
    }

    fn on_backend_change(&self, sim: &mut Simulation, id: SagaJobId, bstate: JobState) {
        let _prof = sim.profiler().scope("saga.session");
        let next = SagaJobState::from_backend(bstate);
        self.transition(sim, id, next);
    }

    /// Apply a state transition and deliver the callback.
    fn transition(&self, sim: &mut Simulation, id: SagaJobId, next: SagaJobState) {
        let (cb, resource) = {
            let mut st = self.inner.borrow_mut();
            let resource = st.resource.clone();
            let rec = st.jobs.get_mut(&id).expect("job exists");
            if rec.state == next || rec.state.is_terminal() {
                return;
            }
            assert!(
                rec.state.can_transition_to(next),
                "illegal SAGA transition {:?} -> {:?} for {id}",
                rec.state,
                next
            );
            rec.state = next;
            (rec.callback.take(), resource)
        };
        sim.tracer().record_with(sim.now(), || {
            (
                format!("saga.{}", id.0),
                TraceKind::Saga(saga_phase(next)),
                resource,
            )
        });
        if let Some(mut cb) = cb {
            cb(sim, next);
            if !next.is_terminal() {
                // Reinstall unless the callback's reentrancy replaced it.
                let mut st = self.inner.borrow_mut();
                let rec = st.jobs.get_mut(&id).expect("job exists");
                if rec.callback.is_none() {
                    rec.callback = Some(cb);
                }
            }
        }
    }

    /// Request cancellation. Queued-or-running jobs are cancelled after a
    /// cancellation round-trip (transient failures are retried with
    /// backoff); not-yet-submitted jobs are cancelled at their submission
    /// attempt.
    pub fn cancel(&self, sim: &mut Simulation, id: SagaJobId) {
        let (backend, latency) = {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            let Some(rec) = st.jobs.get_mut(&id) else {
                return;
            };
            if rec.state.is_terminal() {
                return;
            }
            rec.cancel_requested = true;
            let backend = rec.backend;
            let latency = st.adaptor.cancellation_latency(&mut st.rng);
            (backend, latency)
        };
        if backend.is_some() {
            let this = self.clone();
            sim.schedule_in(latency, move |sim| this.attempt_cancel(sim, id, 1));
        }
        // If not yet submitted, attempt_submission observes the flag.
    }

    /// One cancellation round-trip has completed; decide whether it
    /// reached the backend. Failed attempts retry with exponential
    /// backoff; an exhausted budget or an open breaker abandons the
    /// cancellation (the job simply runs on — exactly what a lost `qdel`
    /// does in the field).
    fn attempt_cancel(&self, sim: &mut Simulation, id: SagaJobId, attempt: u32) {
        let _prof = sim.profiler().scope("saga.session");
        enum Outcome {
            Settled,
            Retry(SimDuration),
            GiveUp,
            Cancel(BackendJobId, Cluster),
        }
        let now = sim.now();
        let mut tripped = false;
        let outcome = {
            let mut guard = self.inner.borrow_mut();
            let st = &mut *guard;
            let Some(rec) = st.jobs.get(&id) else {
                return;
            };
            let Some(backend) = rec.backend else {
                return;
            };
            if rec.state.is_terminal() {
                Outcome::Settled
            } else if !st.breaker.as_mut().is_none_or(|b| b.allows(now)) {
                Outcome::GiveUp
            } else {
                // A decommissioned front end refuses deterministically;
                // otherwise the adaptor's cancel flakiness decides. The
                // draw is gated so zero-chance adaptors stay draw-free.
                let chance = st.adaptor.cancel_failure_chance();
                let failed =
                    st.cluster.is_decommissioned() || (chance > 0.0 && st.rng.chance(chance));
                if failed {
                    tripped = st.breaker.as_mut().is_some_and(|b| b.record_failure(now));
                    if attempt >= st.max_attempts {
                        Outcome::GiveUp
                    } else {
                        let lat = st.adaptor.cancellation_latency(&mut st.rng);
                        Outcome::Retry(backoff(lat, attempt))
                    }
                } else {
                    if let Some(b) = st.breaker.as_mut() {
                        b.record_success();
                    }
                    Outcome::Cancel(backend, st.cluster.clone())
                }
            }
        };
        if tripped {
            self.fire_breaker_trip(sim);
        }
        match outcome {
            Outcome::Settled => {}
            Outcome::Retry(delay) => {
                let this = self.clone();
                sim.metrics()
                    .inc(|| format!("saga.{}.retry_cancel", self.resource()));
                sim.tracer().record_with(sim.now(), || {
                    (
                        format!("saga.{}", id.0),
                        TraceKind::Saga(SagaPhase::RetryCancel),
                        self.resource(),
                    )
                });
                sim.schedule_in(delay, move |sim| this.attempt_cancel(sim, id, attempt + 1));
            }
            Outcome::GiveUp => {
                sim.metrics()
                    .inc(|| format!("saga.{}.cancel_abandoned", self.resource()));
                sim.tracer().record_with(sim.now(), || {
                    (
                        format!("saga.{}", id.0),
                        TraceKind::Saga(SagaPhase::CancelAbandoned),
                        self.resource(),
                    )
                });
            }
            Outcome::Cancel(backend, cluster) => {
                cluster.cancel(sim, backend);
            }
        }
    }

    /// Query the current state of a job as the batch system reports it —
    /// a remote round-trip, unlike the free local [`state`](Self::state)
    /// bookkeeping. Transient failures retry with exponential backoff; an
    /// open breaker rejects the query immediately with
    /// [`SagaError::CircuitOpen`]; a decommissioned front end refuses
    /// every attempt until the budget is exhausted.
    pub fn query_status(
        &self,
        sim: &mut Simulation,
        id: SagaJobId,
        cb: impl FnOnce(&mut Simulation, Result<SagaJobState, SagaError>) + 'static,
    ) {
        if !self.inner.borrow().jobs.contains_key(&id) {
            cb(sim, Err(SagaError::UnknownJob));
            return;
        }
        let latency = {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            st.adaptor.status_latency(&mut st.rng)
        };
        let this = self.clone();
        sim.schedule_in(latency, move |sim| {
            this.attempt_status(sim, id, 1, Box::new(cb));
        });
    }

    /// One status round-trip has completed; decide whether it succeeded.
    fn attempt_status(
        &self,
        sim: &mut Simulation,
        id: SagaJobId,
        attempt: u32,
        cb: StatusCallback,
    ) {
        enum Outcome {
            Reject(SagaError),
            Retry(SimDuration),
            Exhausted(u32),
            Answer(SagaJobState),
        }
        let now = sim.now();
        let mut tripped = false;
        let outcome = {
            let mut guard = self.inner.borrow_mut();
            let st = &mut *guard;
            let Some(rec) = st.jobs.get(&id) else {
                drop(guard);
                cb(sim, Err(SagaError::UnknownJob));
                return;
            };
            let state = rec.state;
            if !st.breaker.as_mut().is_none_or(|b| b.allows(now)) {
                // An open breaker is itself a strong health signal: tell
                // the caller immediately instead of burning retries.
                Outcome::Reject(SagaError::CircuitOpen {
                    op: SagaOp::StatusQuery,
                    resource: st.resource.clone(),
                })
            } else {
                let chance = st.adaptor.status_failure_chance();
                let failed =
                    st.cluster.is_decommissioned() || (chance > 0.0 && st.rng.chance(chance));
                if failed {
                    tripped = st.breaker.as_mut().is_some_and(|b| b.record_failure(now));
                    if attempt >= st.max_attempts {
                        Outcome::Exhausted(attempt)
                    } else {
                        let lat = st.adaptor.status_latency(&mut st.rng);
                        Outcome::Retry(backoff(lat, attempt))
                    }
                } else {
                    if let Some(b) = st.breaker.as_mut() {
                        b.record_success();
                    }
                    Outcome::Answer(state)
                }
            }
        };
        if tripped {
            self.fire_breaker_trip(sim);
        }
        match outcome {
            Outcome::Reject(err) => cb(sim, Err(err)),
            Outcome::Exhausted(attempts) => cb(
                sim,
                Err(SagaError::TransientExhausted {
                    op: SagaOp::StatusQuery,
                    attempts,
                }),
            ),
            Outcome::Retry(delay) => {
                let this = self.clone();
                sim.metrics()
                    .inc(|| format!("saga.{}.retry_status", self.resource()));
                sim.tracer().record_with(sim.now(), || {
                    (
                        format!("saga.{}", id.0),
                        TraceKind::Saga(SagaPhase::RetryStatusQuery),
                        self.resource(),
                    )
                });
                sim.schedule_in(delay, move |sim| {
                    this.attempt_status(sim, id, attempt + 1, cb)
                });
            }
            Outcome::Answer(state) => cb(sim, Ok(state)),
        }
    }

    /// Current SAGA state of a job.
    pub fn state(&self, id: SagaJobId) -> Option<SagaJobState> {
        self.inner.borrow().jobs.get(&id).map(|r| r.state)
    }

    /// The backend job id, once submitted.
    pub fn backend_job(&self, id: SagaJobId) -> Option<BackendJobId> {
        self.inner.borrow().jobs.get(&id).and_then(|r| r.backend)
    }
}

/// A session over the whole resource pool.
pub struct Session {
    services: HashMap<String, JobService>,
    counter: Rc<Cell<u64>>,
}

impl Session {
    /// Empty session.
    pub fn new() -> Self {
        Session {
            services: HashMap::new(),
            counter: Rc::new(Cell::new(0)),
        }
    }

    /// Attach a resource; creates its job service with the right adaptor.
    pub fn add_resource(&mut self, sim: &Simulation, cluster: Cluster) -> JobService {
        let svc = JobService::new(sim, cluster.clone(), self.counter.clone());
        self.services.insert(cluster.name(), svc.clone());
        svc
    }

    /// The job service for a resource.
    pub fn service(&self, resource: &str) -> Option<JobService> {
        self.services.get(resource).cloned()
    }

    /// Names of all attached resources (sorted for determinism).
    pub fn resources(&self) -> Vec<String> {
        let mut names: Vec<_> = self.services.keys().cloned().collect();
        names.sort();
        names
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_cluster::ClusterConfig;
    use aimes_sim::SimTime;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn setup(cores: u32) -> (Simulation, Session, JobService) {
        let sim = Simulation::new(11);
        let cluster = Cluster::new(ClusterConfig::test("stampede", cores));
        let mut session = Session::new();
        let svc = session.add_resource(&sim, cluster);
        (sim, session, svc)
    }

    type SeenStates = Rc<RefCell<Vec<SagaJobState>>>;

    fn collect_states() -> (
        SeenStates,
        impl FnMut(&mut Simulation, SagaJobState) + 'static,
    ) {
        let seen: Rc<RefCell<Vec<SagaJobState>>> = Rc::new(RefCell::new(vec![]));
        let s2 = seen.clone();
        (seen, move |_sim: &mut Simulation, st| {
            s2.borrow_mut().push(st)
        })
    }

    #[test]
    fn job_reaches_done_through_full_lifecycle() {
        let (mut sim, _sess, svc) = setup(64);
        let (seen, cb) = collect_states();
        let id = svc.submit(&mut sim, JobDescription::new(32, d(100.0), "p0"), cb);
        assert_eq!(svc.state(id), Some(SagaJobState::New));
        sim.run_to_completion();
        assert_eq!(svc.state(id), Some(SagaJobState::Done));
        assert_eq!(
            *seen.borrow(),
            vec![
                SagaJobState::Pending,
                SagaJobState::Running,
                SagaJobState::Done
            ]
        );
        // Submission latency delayed the backend submission: the job ended
        // at latency + 100 s, not exactly 100 s.
        assert!(sim.now().as_secs() > 100.0);
        assert!(sim.now().as_secs() < 110.0);
    }

    #[test]
    fn submission_latency_applies_per_flavor() {
        // stampede → slurm (0.5–3 s).
        let (mut sim, _sess, svc) = setup(64);
        assert_eq!(svc.flavor(), "slurm");
        let (_seen, cb) = collect_states();
        let id = svc.submit(&mut sim, JobDescription::new(1, d(10.0), "p"), cb);
        // Step until the backend job exists.
        while svc.backend_job(id).is_none() && sim.step() {}
        let now = sim.now().as_secs();
        assert!((0.5..3.0).contains(&now), "latency was {now}");
    }

    #[test]
    fn cancel_before_submission_lands() {
        let (mut sim, _sess, svc) = setup(64);
        let (seen, cb) = collect_states();
        let id = svc.submit(&mut sim, JobDescription::new(32, d(100.0), "p0"), cb);
        svc.cancel(&mut sim, id);
        sim.run_to_completion();
        assert_eq!(svc.state(id), Some(SagaJobState::Canceled));
        assert_eq!(*seen.borrow(), vec![SagaJobState::Canceled]);
        assert!(svc.backend_job(id).is_none());
    }

    #[test]
    fn cancel_running_job() {
        let (mut sim, _sess, svc) = setup(64);
        let (seen, cb) = collect_states();
        let id = svc.submit(&mut sim, JobDescription::new(32, d(10_000.0), "p0"), cb);
        let svc2 = svc.clone();
        sim.schedule_at(SimTime::from_secs(100.0), move |sim| {
            svc2.cancel(sim, id);
        });
        sim.run_to_completion();
        assert_eq!(svc.state(id), Some(SagaJobState::Canceled));
        assert_eq!(
            *seen.borrow(),
            vec![
                SagaJobState::Pending,
                SagaJobState::Running,
                SagaJobState::Canceled
            ]
        );
        // Ended shortly after the cancel request (cancellation latency),
        // not at the 10 000 s walltime.
        assert!(sim.now().as_secs() < 150.0);
    }

    #[test]
    fn transient_failures_are_retried() {
        // Unknown resource → condor adaptor with 5 % failure. With many
        // submissions, some retry; all eventually succeed.
        let mut sim = Simulation::new(1313);
        let cluster = Cluster::new(ClusterConfig::test("osg-pool", 4096));
        let mut session = Session::new();
        let svc = session.add_resource(&sim, cluster);
        assert_eq!(svc.flavor(), "condor");
        let ids: Vec<_> = (0..200)
            .map(|i| {
                svc.submit(
                    &mut sim,
                    JobDescription::new(1, d(10.0), format!("p{i}")),
                    |_, _| {},
                )
            })
            .collect();
        sim.run_to_completion();
        for id in &ids {
            assert_eq!(svc.state(*id), Some(SagaJobState::Done));
        }
        let retries = sim
            .tracer()
            .snapshot()
            .iter()
            .filter(|e| e.event == "RetrySubmission")
            .count();
        assert!(retries > 0, "expected some retries at 5 % failure rate");
    }

    #[test]
    fn injected_permanent_fault_fails_without_retry() {
        let (mut sim, _sess, svc) = setup(64);
        svc.inject_launch_faults(0.0, 1.0);
        let (seen, cb) = collect_states();
        let id = svc.submit(&mut sim, JobDescription::new(32, d(100.0), "p0"), cb);
        sim.run_to_completion();
        assert_eq!(svc.state(id), Some(SagaJobState::Failed));
        assert_eq!(*seen.borrow(), vec![SagaJobState::Failed]);
        assert!(svc.backend_job(id).is_none());
        let retries = sim
            .tracer()
            .snapshot()
            .iter()
            .filter(|e| e.event == "RetrySubmission")
            .count();
        assert_eq!(retries, 0, "permanent faults must not retry");
    }

    #[test]
    fn injected_transient_fault_exhausts_attempts() {
        // Boosted to the 95 % ceiling the overwhelming majority of jobs
        // burn all four attempts; check that at least one does and that
        // every failure went through visible retries first.
        let (mut sim, _sess, svc) = setup(4096);
        svc.inject_launch_faults(1.0, 0.0);
        let ids: Vec<_> = (0..20)
            .map(|i| {
                svc.submit(
                    &mut sim,
                    JobDescription::new(1, d(10.0), format!("p{i}")),
                    |_, _| {},
                )
            })
            .collect();
        sim.run_to_completion();
        let failed = ids
            .iter()
            .filter(|id| svc.state(**id) == Some(SagaJobState::Failed))
            .count();
        assert!(failed > 0, "0.95^4 per job over 20 jobs must fail some");
        let retries = sim
            .tracer()
            .snapshot()
            .iter()
            .filter(|e| e.event == "RetrySubmission")
            .count();
        assert!(retries > 0, "transient faults retry before giving up");
    }

    #[test]
    fn zero_fault_injection_preserves_the_rng_stream() {
        // Configuring (0.0, 0.0) must be byte-identical to never touching
        // the service: the fault draws are gated, not merely weighted.
        let run = |configure: bool| {
            let (mut sim, _sess, svc) = setup(64);
            if configure {
                svc.inject_launch_faults(0.0, 0.0);
            }
            let ids: Vec<_> = (0..50)
                .map(|i| {
                    svc.submit(
                        &mut sim,
                        JobDescription::new(1, d(10.0), format!("p{i}")),
                        |_, _| {},
                    )
                })
                .collect();
            sim.run_to_completion();
            (sim.now(), sim.events_processed(), ids.len())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn session_multiplexes_resources() {
        let mut sim = Simulation::new(2);
        let mut session = Session::new();
        for spec in aimes_cluster::paper_testbed() {
            let mut cfg = spec.config;
            cfg.workload = None; // idle machines: fast test
            session.add_resource(&sim, Cluster::new(cfg));
        }
        assert_eq!(session.resources().len(), 5);
        assert_eq!(
            session.resources(),
            vec!["blacklight", "gordon", "hopper", "stampede", "trestles"]
        );
        // Ids are globally unique across services.
        let a = session.service("stampede").unwrap().submit(
            &mut sim,
            JobDescription::new(1, d(10.0), "a"),
            |_, _| {},
        );
        let b = session.service("hopper").unwrap().submit(
            &mut sim,
            JobDescription::new(1, d(10.0), "b"),
            |_, _| {},
        );
        assert_ne!(a, b);
        sim.run_to_completion();
    }

    #[test]
    fn walltime_killed_job_reports_failed() {
        // A backend job that overruns its walltime maps to Failed. Pilots
        // never do (runtime == walltime), but the mapping must hold.
        let mut sim = Simulation::new(3);
        let cluster = Cluster::new(ClusterConfig::test("stampede", 64));
        // Submit directly to the backend with runtime > walltime, then
        // check the SAGA translation function (service-level jobs are
        // always pilots).
        use aimes_cluster::JobState as B;
        let id = cluster.submit(&mut sim, JobRequest::background(8, d(100.0), d(50.0)));
        sim.run_to_completion();
        assert_eq!(cluster.job_state(id), Some(B::Killed));
        assert_eq!(SagaJobState::from_backend(B::Killed), SagaJobState::Failed);
    }

    #[test]
    fn queue_request_reaches_the_backend() {
        use aimes_cluster::QueueConfig;
        let mut sim = Simulation::new(12);
        let mut cfg = aimes_cluster::ClusterConfig::test("stampede", 64);
        cfg.queues = vec![QueueConfig::normal(), QueueConfig::debug(d(1800.0), 16)];
        let cluster = Cluster::new(cfg);
        let mut session = Session::new();
        let svc = session.add_resource(&sim, cluster.clone());
        let id = svc.submit(
            &mut sim,
            JobDescription::new(8, d(600.0), "p").with_queue("debug"),
            |_, _| {},
        );
        sim.run_to_completion();
        assert_eq!(svc.state(id), Some(SagaJobState::Done));
        let backend = svc.backend_job(id).unwrap();
        let job = cluster.job(backend).unwrap();
        assert_eq!(job.request.queue.as_deref(), Some("debug"));
        assert_eq!(job.queue_priority, 10);
    }

    #[test]
    fn unknown_job_queries_are_none() {
        let (_sim, _sess, svc) = setup(8);
        assert_eq!(svc.state(SagaJobId(99)), None);
        assert_eq!(svc.backend_job(SagaJobId(99)), None);
    }

    #[test]
    fn status_query_reports_backend_state() {
        let (mut sim, _sess, svc) = setup(64);
        let (_seen, cb) = collect_states();
        let id = svc.submit(&mut sim, JobDescription::new(32, d(500.0), "p0"), cb);
        // Let the job reach Running, then ask the front end.
        while svc.state(id) != Some(SagaJobState::Running) && sim.step() {}
        let answer: Rc<RefCell<Option<Result<SagaJobState, crate::SagaError>>>> =
            Rc::new(RefCell::new(None));
        let a2 = answer.clone();
        svc.query_status(&mut sim, id, move |_sim, res| {
            *a2.borrow_mut() = Some(res);
        });
        // The answer arrives after the status round-trip, not instantly,
        // and reports the state at answer time (the job is mid-run).
        assert!(answer.borrow().is_none());
        sim.run_to_completion();
        assert_eq!(*answer.borrow(), Some(Ok(SagaJobState::Running)));
    }

    #[test]
    fn status_query_of_unknown_job_errors() {
        let (mut sim, _sess, svc) = setup(8);
        let answer = Rc::new(RefCell::new(None));
        let a2 = answer.clone();
        svc.query_status(&mut sim, SagaJobId(99), move |_sim, res| {
            *a2.borrow_mut() = Some(res);
        });
        assert_eq!(*answer.borrow(), Some(Err(crate::SagaError::UnknownJob)));
    }

    #[test]
    fn status_query_exhausts_against_decommissioned_frontend() {
        let (mut sim, _sess, svc) = setup(64);
        let (_seen, cb) = collect_states();
        let id = svc.submit(&mut sim, JobDescription::new(32, d(10_000.0), "p0"), cb);
        while svc.state(id) != Some(SagaJobState::Running) && sim.step() {}
        svc.cluster().decommission(&mut sim);
        let answer = Rc::new(RefCell::new(None));
        let a2 = answer.clone();
        svc.query_status(&mut sim, id, move |_sim, res| {
            *a2.borrow_mut() = Some(res);
        });
        sim.run_to_completion();
        assert_eq!(
            *answer.borrow(),
            Some(Err(crate::SagaError::TransientExhausted {
                op: crate::SagaOp::StatusQuery,
                attempts: 4,
            }))
        );
    }

    #[test]
    fn breaker_trips_on_dead_endpoint_then_rejects_locally() {
        use crate::breaker::{BreakerConfig, BreakerState};
        let (mut sim, _sess, svc) = setup(64);
        svc.enable_breaker(BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(600.0),
        });
        let trips: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(vec![]));
        let t2 = trips.clone();
        svc.on_breaker_trip(move |_sim, resource| t2.borrow_mut().push(resource.to_string()));
        svc.cluster().decommission(&mut sim);
        // Every submission attempt is refused at the connection level;
        // three refusals trip the breaker, the fourth is rejected locally.
        let (seen, cb) = collect_states();
        let id = svc.submit(&mut sim, JobDescription::new(8, d(100.0), "p0"), cb);
        sim.run_to_completion();
        assert_eq!(svc.state(id), Some(SagaJobState::Failed));
        assert_eq!(*seen.borrow(), vec![SagaJobState::Failed]);
        assert_eq!(*trips.borrow(), vec!["stampede".to_string()]);
        assert_eq!(svc.breaker_state(), Some(BreakerState::Open));
        assert_eq!(svc.breaker_trips(), 1);
        // A status query against the open breaker is rejected immediately.
        let answer = Rc::new(RefCell::new(None));
        let a2 = answer.clone();
        svc.query_status(&mut sim, id, move |_sim, res| {
            *a2.borrow_mut() = Some(res);
        });
        sim.run_to_completion();
        assert_eq!(
            *answer.borrow(),
            Some(Err(crate::SagaError::CircuitOpen {
                op: crate::SagaOp::StatusQuery,
                resource: "stampede".into(),
            }))
        );
    }

    #[test]
    fn breaker_half_open_probe_closes_on_healthy_endpoint() {
        use crate::breaker::{BreakerConfig, BreakerState};
        let (mut sim, _sess, svc) = setup(4096);
        svc.enable_breaker(BreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_secs(30.0),
        });
        // Force the streak with injected transient faults, then clear the
        // fault and let the post-cooldown probe close the breaker.
        svc.inject_launch_faults(1.0, 0.0);
        let id = svc.submit(&mut sim, JobDescription::new(1, d(10.0), "p0"), |_, _| {});
        sim.run_to_completion();
        assert_eq!(svc.state(id), Some(SagaJobState::Failed));
        assert_eq!(svc.breaker_state(), Some(BreakerState::Open));
        svc.inject_launch_faults(0.0, 0.0);
        // Resubmit well past the cooldown so the probe is admitted.
        let id2 = Rc::new(RefCell::new(None));
        let (svc2, id2w) = (svc.clone(), id2.clone());
        sim.schedule_in(SimDuration::from_secs(120.0), move |sim| {
            *id2w.borrow_mut() =
                Some(svc2.submit(sim, JobDescription::new(1, d(10.0), "p1"), |_, _| {}));
        });
        sim.run_to_completion();
        let id2 = id2.borrow().unwrap();
        assert_eq!(svc.state(id2), Some(SagaJobState::Done));
        assert_eq!(svc.breaker_state(), Some(BreakerState::Closed));
    }

    #[test]
    fn cancel_retries_are_visible_in_the_trace() {
        // Condor's 5 % cancel flakiness over many cancellations must show
        // at least one retry, and every job must still end Canceled.
        let mut sim = Simulation::new(77);
        let cluster = Cluster::new(ClusterConfig::test("osg-pool", 4096));
        let mut session = Session::new();
        let svc = session.add_resource(&sim, cluster);
        let ids: Vec<_> = (0..150)
            .map(|i| {
                svc.submit(
                    &mut sim,
                    JobDescription::new(1, d(50_000.0), format!("p{i}")),
                    |_, _| {},
                )
            })
            .collect();
        let svc2 = svc.clone();
        let ids2 = ids.clone();
        sim.schedule_at(SimTime::from_secs(2_000.0), move |sim| {
            for id in &ids2 {
                svc2.cancel(sim, *id);
            }
        });
        sim.run_to_completion();
        let retries = sim
            .tracer()
            .snapshot()
            .iter()
            .filter(|e| e.event == "RetryCancel")
            .count();
        assert!(retries > 0, "expected some cancel retries at 5 %");
        for id in &ids {
            assert_eq!(svc.state(*id), Some(SagaJobState::Canceled));
        }
    }
}
