//! Batch-system adaptors.
//!
//! SAGA's value is that each resource speaks its own middleware dialect
//! behind one API. The dialects differ in ways that matter to the paper's
//! experiments: how long a submission round-trip takes (SSH/GSISSH +
//! scheduler command latency) and how often it transiently fails. Each
//! adaptor models one flavour; [`adaptor_for`] assigns flavours to the
//! testbed resources the way the real machines were fronted (SLURM on
//! Stampede, PBS/Torque on the SDSC machines and Hopper, HTCondor pools for
//! OSG-style resources).

use aimes_sim::{SimDuration, SimRng};

/// One middleware dialect: submission behaviour of a resource's front end.
pub trait BatchAdaptor {
    /// Flavour name for traces (`"slurm"`, `"pbs"`, `"condor"`).
    fn flavor(&self) -> &'static str;

    /// One submission round-trip (command + scheduler ingestion) latency.
    fn submission_latency(&self, rng: &mut SimRng) -> SimDuration;

    /// Probability that one submission attempt transiently fails (network
    /// hiccup, scheduler timeout). The session retries these.
    fn transient_failure_chance(&self) -> f64 {
        0.0
    }

    /// Latency of a cancellation round-trip.
    fn cancellation_latency(&self, rng: &mut SimRng) -> SimDuration {
        self.submission_latency(rng)
    }

    /// Probability that one cancellation attempt transiently fails. The
    /// dialects that lose submissions lose `qdel`s too.
    fn cancel_failure_chance(&self) -> f64 {
        0.0
    }

    /// Latency of one status-query round-trip (`squeue`/`qstat`/
    /// `condor_q`). Queries are lighter than submissions: no scheduler
    /// ingestion, just a front-end lookup.
    fn status_latency(&self, rng: &mut SimRng) -> SimDuration {
        self.submission_latency(rng)
    }

    /// Probability that one status query transiently fails. Front-end
    /// lookups hit the same overloaded daemons as submissions and on PBS
    /// and Condor are historically the flakiest operation of the three.
    fn status_failure_chance(&self) -> f64 {
        0.0
    }
}

/// SLURM front end: fast command round-trips, rare hiccups.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlurmAdaptor;

impl BatchAdaptor for SlurmAdaptor {
    fn flavor(&self) -> &'static str {
        "slurm"
    }
    fn submission_latency(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs(rng.uniform(0.5, 3.0))
    }
    fn transient_failure_chance(&self) -> f64 {
        0.01
    }
    fn cancel_failure_chance(&self) -> f64 {
        0.01
    }
    fn status_latency(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs(rng.uniform(0.2, 1.0))
    }
    fn status_failure_chance(&self) -> f64 {
        0.01
    }
}

/// PBS/Torque front end: slower, occasionally flaky.
#[derive(Clone, Copy, Debug, Default)]
pub struct PbsAdaptor;

impl BatchAdaptor for PbsAdaptor {
    fn flavor(&self) -> &'static str {
        "pbs"
    }
    fn submission_latency(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs(rng.uniform(2.0, 8.0))
    }
    fn transient_failure_chance(&self) -> f64 {
        0.03
    }
    fn cancel_failure_chance(&self) -> f64 {
        0.03
    }
    fn status_latency(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs(rng.uniform(1.0, 4.0))
    }
    fn status_failure_chance(&self) -> f64 {
        0.04
    }
}

/// HTCondor pool front end: matchmaking adds seconds-to-tens-of-seconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct CondorAdaptor;

impl BatchAdaptor for CondorAdaptor {
    fn flavor(&self) -> &'static str {
        "condor"
    }
    fn submission_latency(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs(rng.uniform(5.0, 20.0))
    }
    fn transient_failure_chance(&self) -> f64 {
        0.05
    }
    fn cancel_failure_chance(&self) -> f64 {
        0.05
    }
    fn status_latency(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs(rng.uniform(2.0, 10.0))
    }
    fn status_failure_chance(&self) -> f64 {
        0.06
    }
}

/// The flavour each testbed resource is fronted by.
pub fn adaptor_for(resource: &str) -> Box<dyn BatchAdaptor> {
    match resource {
        "stampede" => Box::new(SlurmAdaptor),
        "gordon" | "trestles" | "blacklight" | "hopper" => Box::new(PbsAdaptor),
        // Anything unknown is treated as an HTCondor pool (the OSG case).
        _ => Box::new(CondorAdaptor),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_within_documented_ranges() {
        let mut rng = SimRng::new(1);
        for _ in 0..200 {
            let s = SlurmAdaptor.submission_latency(&mut rng).as_secs();
            assert!((0.5..3.0).contains(&s));
            let p = PbsAdaptor.submission_latency(&mut rng).as_secs();
            assert!((2.0..8.0).contains(&p));
            let c = CondorAdaptor.submission_latency(&mut rng).as_secs();
            assert!((5.0..20.0).contains(&c));
        }
    }

    #[test]
    fn flavors_are_distinct() {
        assert_eq!(SlurmAdaptor.flavor(), "slurm");
        assert_eq!(PbsAdaptor.flavor(), "pbs");
        assert_eq!(CondorAdaptor.flavor(), "condor");
    }

    #[test]
    fn testbed_assignment() {
        assert_eq!(adaptor_for("stampede").flavor(), "slurm");
        assert_eq!(adaptor_for("hopper").flavor(), "pbs");
        assert_eq!(adaptor_for("gordon").flavor(), "pbs");
        assert_eq!(adaptor_for("some-osg-pool").flavor(), "condor");
    }

    #[test]
    fn failure_chances_ordered_by_flakiness() {
        assert!(SlurmAdaptor.transient_failure_chance() < PbsAdaptor.transient_failure_chance());
        assert!(PbsAdaptor.transient_failure_chance() < CondorAdaptor.transient_failure_chance());
    }

    #[test]
    fn per_operation_failure_chances_ordered_by_flakiness() {
        assert!(SlurmAdaptor.cancel_failure_chance() < PbsAdaptor.cancel_failure_chance());
        assert!(PbsAdaptor.cancel_failure_chance() < CondorAdaptor.cancel_failure_chance());
        assert!(SlurmAdaptor.status_failure_chance() < PbsAdaptor.status_failure_chance());
        assert!(PbsAdaptor.status_failure_chance() < CondorAdaptor.status_failure_chance());
    }

    #[test]
    fn status_latency_is_not_slower_than_submission() {
        // Queries are lighter than submissions; each adaptor's status
        // range must sit at or below its submission range.
        let mut rng = SimRng::new(9);
        for _ in 0..200 {
            assert!(SlurmAdaptor.status_latency(&mut rng).as_secs() <= 3.0);
            assert!(PbsAdaptor.status_latency(&mut rng).as_secs() <= 8.0);
            assert!(CondorAdaptor.status_latency(&mut rng).as_secs() <= 20.0);
        }
    }

    #[test]
    fn cancellation_latency_defaults_to_submission() {
        let mut r1 = SimRng::new(5);
        let mut r2 = SimRng::new(5);
        assert_eq!(
            PbsAdaptor.cancellation_latency(&mut r1),
            PbsAdaptor.submission_latency(&mut r2)
        );
    }
}
