//! Whole-cluster invariants under randomized operation sequences:
//! property tests that drive the simulator with arbitrary job mixes and
//! check conservation laws that must hold regardless of policy.

use aimes_cluster::{Cluster, ClusterConfig, JobRequest, JobState, SchedulingPolicy};
use aimes_sim::{SimDuration, SimTime, Simulation, Tracer};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct JobPlan {
    arrival: f64,
    cores: u32,
    runtime: f64,
    walltime: f64,
    cancel_at: Option<f64>,
}

fn job_plan(max_cores: u32) -> impl Strategy<Value = JobPlan> {
    (
        0.0f64..5_000.0,
        1u32..=max_cores,
        1.0f64..3_000.0,
        1.0f64..3_000.0,
        proptest::option::of(0.0f64..8_000.0),
    )
        .prop_map(|(arrival, cores, runtime, walltime, cancel_at)| JobPlan {
            arrival,
            cores,
            runtime,
            walltime,
            cancel_at,
        })
}

fn run_plan(
    policy: SchedulingPolicy,
    total_cores: u32,
    plans: &[JobPlan],
) -> (Cluster, Simulation) {
    let mut cfg = ClusterConfig::test("prop", total_cores);
    cfg.policy = policy;
    let mut sim = Simulation::with_tracer(1, Tracer::disabled());
    let cluster = Cluster::new(cfg);
    for p in plans {
        let cluster2 = cluster.clone();
        let p = p.clone();
        sim.schedule_at(SimTime::from_secs(p.arrival), move |sim| {
            let id = cluster2.submit(
                sim,
                JobRequest::background(
                    p.cores,
                    SimDuration::from_secs(p.runtime),
                    SimDuration::from_secs(p.walltime),
                ),
            );
            if let Some(at) = p.cancel_at {
                let cluster3 = cluster2.clone();
                let when = SimTime::from_secs(at).max(sim.now());
                sim.schedule_at(when, move |sim| {
                    cluster3.cancel(sim, id);
                });
            }
        });
    }
    sim.run_to_completion();
    (cluster, sim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every job terminates, all cores come back, and timing laws hold.
    #[test]
    fn all_jobs_terminate_and_cores_are_conserved(
        plans in proptest::collection::vec(job_plan(32), 1..40),
        use_fcfs in any::<bool>(),
    ) {
        let policy = if use_fcfs {
            SchedulingPolicy::Fcfs
        } else {
            SchedulingPolicy::EasyBackfill
        };
        let (cluster, sim) = run_plan(policy, 32, &plans);
        let m = cluster.metrics(sim.now());
        prop_assert_eq!(m.free_cores, 32, "all cores return at drain");
        prop_assert_eq!(m.queued_jobs, 0);
        prop_assert_eq!(m.running_jobs, 0);
        for i in 0..plans.len() {
            let job = cluster.job(aimes_cluster::JobId(i as u64)).expect("exists");
            prop_assert!(job.state.is_terminal(), "job {i} ended in {:?}", job.state);
            if let (Some(start), Some(end)) = (job.start_time, job.end_time) {
                prop_assert!(start >= job.submit_time);
                prop_assert!(end >= start);
                match job.state {
                    JobState::Completed | JobState::Killed => {
                        let expect = job.occupancy().as_secs();
                        prop_assert!((end.since(start).as_secs() - expect).abs() < 1e-6);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Core usage never exceeds capacity at any instant: reconstruct the
    /// usage timeline from job records and sweep it.
    #[test]
    fn capacity_never_exceeded(
        plans in proptest::collection::vec(job_plan(16), 1..40),
    ) {
        let (cluster, _sim) = run_plan(SchedulingPolicy::EasyBackfill, 16, &plans);
        let mut events: Vec<(f64, i64)> = Vec::new();
        for i in 0..plans.len() {
            let job = cluster.job(aimes_cluster::JobId(i as u64)).expect("exists");
            if let (Some(start), Some(end)) = (job.start_time, job.end_time) {
                // Zero-length occupations (cancelled at the start instant)
                // contribute nothing to usage.
                if end > start {
                    events.push((start.as_secs(), i64::from(job.request.cores)));
                    events.push((end.as_secs(), -i64::from(job.request.cores)));
                }
            }
        }
        // Sort by time; process releases before acquisitions at ties so a
        // back-to-back handover is not a false violation.
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then_with(|| a.1.cmp(&b.1))
        });
        let mut used = 0i64;
        for (t, delta) in events {
            used += delta;
            prop_assert!(
                used <= 16,
                "capacity exceeded at t={t}: {used} cores in use"
            );
            prop_assert!(used >= 0);
        }
    }

    /// FCFS completes the jobs in an order consistent with no-overtaking:
    /// start times are non-decreasing in submission order.
    #[test]
    fn fcfs_never_overtakes(
        plans in proptest::collection::vec(job_plan(8), 2..30),
    ) {
        // No cancellations for this property (cancelled jobs leave gaps).
        let plans: Vec<JobPlan> = plans
            .into_iter()
            .map(|mut p| {
                p.cancel_at = None;
                p
            })
            .collect();
        let (cluster, _sim) = run_plan(SchedulingPolicy::Fcfs, 8, &plans);
        // Reconstruct submission order: sort by (arrival, plan index) —
        // job ids are assigned in event order which breaks arrival ties
        // by schedule order, matching plan order only per equal arrival.
        let mut jobs: Vec<_> = (0..plans.len())
            .map(|i| cluster.job(aimes_cluster::JobId(i as u64)).expect("exists"))
            .collect();
        jobs.sort_by(|a, b| {
            a.submit_time
                .cmp(&b.submit_time)
                .then_with(|| a.id.cmp(&b.id))
        });
        let starts: Vec<f64> = jobs
            .iter()
            .filter_map(|j| j.start_time.map(|s| s.as_secs()))
            .collect();
        for w in starts.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9, "FCFS start order violated: {starts:?}");
        }
    }
}
