//! Batch-job representation and lifecycle.

use aimes_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Cluster-local job identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job.{}", self.0)
    }
}

/// Who owns a job — the synthetic background load or the experiment's
/// pilot layer. Metrics and traces are reported per owner class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum JobOwner {
    /// Synthetic competing load.
    Background,
    /// A pilot submitted by the middleware under test.
    Pilot,
}

/// Lifecycle of a batch job.
///
/// ```text
/// Queued ──start──► Running ──runtime elapses──► Completed
///   │                  │
///   │                  ├─walltime exceeded─► Killed
///   │                  └─user cancel──────► Cancelled
///   └────user cancel──────────────────────► Cancelled
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum JobState {
    Queued,
    Running,
    Completed,
    /// Terminated by the resource manager at the walltime request.
    Killed,
    Cancelled,
}

impl JobState {
    /// True for states a job can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Killed | JobState::Cancelled
        )
    }

    /// Legal transition check; the cluster asserts this on every move.
    pub fn can_transition_to(self, next: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, next),
            (Queued, Running)
                | (Queued, Cancelled)
                | (Queued, Killed)
                | (Running, Completed)
                | (Running, Killed)
                | (Running, Cancelled)
        )
    }
}

/// What a submitter asks of the resource manager.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    pub owner: JobOwner,
    /// Cores requested.
    pub cores: u32,
    /// Actual runtime, known to the simulator but *not* to the scheduler
    /// (the scheduler only sees `walltime_request`).
    pub runtime: SimDuration,
    /// Requested walltime; the job is killed when it elapses.
    pub walltime_request: SimDuration,
    /// Target queue name; `None` selects the resource's default queue.
    pub queue: Option<String>,
    /// Free-form tag propagated to traces (e.g. pilot id).
    pub tag: String,
}

impl JobRequest {
    /// A background job request.
    pub fn background(cores: u32, runtime: SimDuration, walltime: SimDuration) -> Self {
        JobRequest {
            owner: JobOwner::Background,
            cores,
            runtime,
            walltime_request: walltime,
            queue: None,
            tag: String::new(),
        }
    }

    /// A pilot job request: pilots occupy the allocation for their full
    /// walltime unless cancelled (the agent inside decides what runs).
    pub fn pilot(cores: u32, walltime: SimDuration, tag: impl Into<String>) -> Self {
        JobRequest {
            owner: JobOwner::Pilot,
            cores,
            runtime: walltime,
            walltime_request: walltime,
            queue: None,
            tag: tag.into(),
        }
    }

    /// Route the request to a named queue.
    pub fn with_queue(mut self, queue: impl Into<String>) -> Self {
        self.queue = Some(queue.into());
        self
    }
}

/// A job as tracked by the cluster.
#[derive(Clone, Debug)]
pub struct Job {
    pub id: JobId,
    pub request: JobRequest,
    pub state: JobState,
    pub submit_time: SimTime,
    pub start_time: Option<SimTime>,
    pub end_time: Option<SimTime>,
    /// Priority inherited from the resolved submission queue.
    pub queue_priority: i32,
}

impl Job {
    pub(crate) fn new(
        id: JobId,
        request: JobRequest,
        submit_time: SimTime,
        queue_priority: i32,
    ) -> Self {
        Job {
            id,
            request,
            state: JobState::Queued,
            submit_time,
            start_time: None,
            end_time: None,
            queue_priority,
        }
    }

    /// Queue wait so far (or final, once started).
    pub fn queue_wait(&self, now: SimTime) -> SimDuration {
        match self.start_time {
            Some(s) => s.since(self.submit_time),
            None => now.saturating_since(self.submit_time),
        }
    }

    /// The time the resource manager will reclaim the allocation if the job
    /// is still running: start + walltime request.
    pub fn walltime_deadline(&self) -> Option<SimTime> {
        self.start_time.map(|s| s + self.request.walltime_request)
    }

    /// Duration the job will actually occupy cores once started.
    pub fn occupancy(&self) -> SimDuration {
        self.request.runtime.min(self.request.walltime_request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }
    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn legal_transitions() {
        use JobState::*;
        assert!(Queued.can_transition_to(Running));
        assert!(Queued.can_transition_to(Cancelled));
        assert!(Running.can_transition_to(Completed));
        assert!(Running.can_transition_to(Killed));
        assert!(Running.can_transition_to(Cancelled));
        assert!(!Queued.can_transition_to(Completed));
        assert!(!Completed.can_transition_to(Running));
        assert!(!Killed.can_transition_to(Queued));
    }

    #[test]
    fn terminal_states() {
        use JobState::*;
        assert!(!Queued.is_terminal());
        assert!(!Running.is_terminal());
        assert!(Completed.is_terminal());
        assert!(Killed.is_terminal());
        assert!(Cancelled.is_terminal());
    }

    #[test]
    fn queue_wait_accrues_then_freezes() {
        let mut j = Job::new(
            JobId(1),
            JobRequest::background(4, d(100.0), d(200.0)),
            t(10.0),
            0,
        );
        assert_eq!(j.queue_wait(t(15.0)), d(5.0));
        j.start_time = Some(t(30.0));
        assert_eq!(j.queue_wait(t(99.0)), d(20.0));
    }

    #[test]
    fn occupancy_clamped_by_walltime() {
        let j = Job::new(
            JobId(1),
            JobRequest::background(4, d(500.0), d(200.0)),
            t(0.0),
            0,
        );
        assert_eq!(j.occupancy(), d(200.0));
        assert_eq!(j.walltime_deadline(), None);
    }

    #[test]
    fn pilot_request_occupies_full_walltime() {
        let r = JobRequest::pilot(64, d(3600.0), "pilot.0");
        assert_eq!(r.runtime, d(3600.0));
        assert_eq!(r.walltime_request, d(3600.0));
        assert_eq!(r.owner, JobOwner::Pilot);
        assert_eq!(r.tag, "pilot.0");
    }
}
