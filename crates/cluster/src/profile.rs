//! Core-availability profiles over future time.
//!
//! A profile answers "how many cores are free during [t1, t2)?" given the
//! conservative assumption that running jobs hold their cores until their
//! *walltime request* (the scheduler cannot know actual runtimes — exactly
//! the information asymmetry that Tsafrir et al. [paper ref 25] study).
//!
//! The same structure serves three masters:
//! * EASY backfill's head-of-queue reservation,
//! * backfill feasibility checks ("would this job delay the reservation?"),
//! * the Bundle layer's predictive queue-wait estimates for hypothetical
//!   pilot submissions.

use aimes_sim::{SimDuration, SimTime};

/// Step function: free cores as a function of time, from `origin` to
/// infinity. Segment `i` spans `[times[i], times[i+1])`; the last segment
/// extends forever.
#[derive(Clone, Debug, PartialEq)]
pub struct AvailabilityProfile {
    times: Vec<SimTime>,
    free: Vec<u32>,
}

impl AvailabilityProfile {
    /// Build a profile starting at `origin` with `free_now` free cores and
    /// the given future releases `(time, cores)` (each adds cores when a
    /// running job's walltime expires). Releases may be in any order and at
    /// or before `origin` (then they are treated as already free).
    pub fn new(origin: SimTime, free_now: u32, releases: &[(SimTime, u32)]) -> Self {
        let mut events: Vec<(SimTime, u32)> = releases
            .iter()
            .filter(|(t, _)| *t > origin)
            .copied()
            .collect();
        events.sort_by_key(|(t, _)| *t);
        let already: u32 = releases
            .iter()
            .filter(|(t, _)| *t <= origin)
            .map(|(_, c)| *c)
            .sum();

        let mut times = vec![origin];
        let mut free = vec![free_now + already];
        for (t, c) in events {
            if *times.last().expect("non-empty") == t {
                *free.last_mut().expect("non-empty") += c;
            } else {
                let cur = *free.last().expect("non-empty");
                times.push(t);
                free.push(cur + c);
            }
        }
        AvailabilityProfile { times, free }
    }

    /// The profile's origin (earliest queryable instant).
    pub fn origin(&self) -> SimTime {
        self.times[0]
    }

    /// Free cores at instant `t` (clamped to the origin).
    pub fn free_at(&self, t: SimTime) -> u32 {
        let idx = match self.times.binary_search(&t) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        self.free[idx]
    }

    /// Minimum free cores over `[start, start + duration)`.
    pub fn min_free_over(&self, start: SimTime, duration: SimDuration) -> u32 {
        let end = start + duration;
        // Segments overlapping the window: the one containing `start`
        // through the last one beginning strictly before `end`.
        let lo = match self.times.binary_search(&start) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let hi = match self.times.binary_search(&end) {
            Ok(i) | Err(i) => i,
        };
        let hi = hi.max(lo + 1);
        *self.free[lo..hi].iter().min().expect("non-empty window")
    }

    /// Earliest time ≥ `after` at which `cores` are continuously free for
    /// `duration`. Returns `None` only if `cores` exceeds the eventual
    /// all-free capacity (checked against the final segment).
    ///
    /// Single forward sweep, O(segments): the candidate start only ever
    /// advances, because a segment with too few cores invalidates every
    /// candidate whose window would touch it — the next viable start is
    /// that segment's end. Availability only changes at breakpoints, so
    /// the returned start is `after` itself or a breakpoint, exactly as
    /// if every candidate had been probed.
    pub fn earliest_fit(
        &self,
        cores: u32,
        duration: SimDuration,
        after: SimTime,
    ) -> Option<SimTime> {
        let n = self.times.len();
        let after = after.max(self.origin());
        let mut i = match self.times.binary_search(&after) {
            Ok(i) => i,
            Err(i) => i - 1, // `after` ≥ origin = times[0], so i ≥ 1
        };
        let mut candidate = after;
        loop {
            if self.free[i] < cores {
                i += 1;
                if i == n {
                    // The forever-segment is short; no start can ever fit.
                    return None;
                }
                candidate = self.times[i];
                continue;
            }
            // Segment `i` sustains the job. The window is complete once it
            // reaches `candidate + duration`; the final segment extends
            // forever.
            if i + 1 == n || self.times[i + 1] >= candidate + duration {
                return Some(candidate);
            }
            i += 1;
        }
    }

    /// Subtract `cores` over `[start, start + duration)` — a reservation.
    /// Panics if the reservation exceeds availability anywhere in the
    /// window; callers must check with [`Self::min_free_over`] first (the
    /// policies always do, via [`Self::earliest_fit`]).
    pub fn reserve(&mut self, start: SimTime, duration: SimDuration, cores: u32) {
        let end = start + duration;
        self.split_at(start);
        self.split_at(end);
        for i in 0..self.times.len() {
            let seg_start = self.times[i];
            if seg_start >= start && seg_start < end {
                assert!(
                    self.free[i] >= cores,
                    "reservation of {cores} cores exceeds {} free at {:?}",
                    self.free[i],
                    seg_start
                );
                self.free[i] -= cores;
            }
        }
    }

    /// Insert a breakpoint at `t` (no-op if one exists or `t` is before the
    /// origin).
    fn split_at(&mut self, t: SimTime) {
        if t <= self.origin() {
            return;
        }
        match self.times.binary_search(&t) {
            Ok(_) => {}
            Err(i) => {
                let inherited = self.free[i - 1];
                self.times.insert(i, t);
                self.free.insert(i, inherited);
            }
        }
    }

    /// Number of segments (diagnostics).
    pub fn segments(&self) -> usize {
        self.times.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn flat_profile() {
        let p = AvailabilityProfile::new(t(0.0), 10, &[]);
        assert_eq!(p.free_at(t(0.0)), 10);
        assert_eq!(p.free_at(t(1e9)), 10);
        assert_eq!(p.min_free_over(t(5.0), d(100.0)), 10);
    }

    #[test]
    fn releases_accumulate() {
        let p = AvailabilityProfile::new(t(0.0), 2, &[(t(10.0), 3), (t(20.0), 5)]);
        assert_eq!(p.free_at(t(0.0)), 2);
        assert_eq!(p.free_at(t(10.0)), 5);
        assert_eq!(p.free_at(t(15.0)), 5);
        assert_eq!(p.free_at(t(20.0)), 10);
    }

    #[test]
    fn releases_at_same_time_merge() {
        let p = AvailabilityProfile::new(t(0.0), 0, &[(t(10.0), 3), (t(10.0), 4)]);
        assert_eq!(p.segments(), 2);
        assert_eq!(p.free_at(t(10.0)), 7);
    }

    #[test]
    fn past_releases_are_already_free() {
        let p = AvailabilityProfile::new(t(100.0), 1, &[(t(50.0), 4)]);
        assert_eq!(p.free_at(t(100.0)), 5);
    }

    #[test]
    fn earliest_fit_immediate() {
        let p = AvailabilityProfile::new(t(0.0), 8, &[]);
        assert_eq!(p.earliest_fit(8, d(100.0), t(0.0)), Some(t(0.0)));
    }

    #[test]
    fn earliest_fit_waits_for_release() {
        let p = AvailabilityProfile::new(t(0.0), 2, &[(t(30.0), 6)]);
        assert_eq!(p.earliest_fit(8, d(10.0), t(0.0)), Some(t(30.0)));
        assert_eq!(p.earliest_fit(2, d(10.0), t(0.0)), Some(t(0.0)));
    }

    #[test]
    fn earliest_fit_respects_after() {
        let p = AvailabilityProfile::new(t(0.0), 8, &[]);
        assert_eq!(p.earliest_fit(4, d(10.0), t(42.0)), Some(t(42.0)));
    }

    #[test]
    fn earliest_fit_impossible() {
        let p = AvailabilityProfile::new(t(0.0), 2, &[(t(30.0), 6)]);
        assert_eq!(p.earliest_fit(9, d(10.0), t(0.0)), None);
    }

    #[test]
    fn earliest_fit_must_span_duration() {
        // 8 cores free only between t=10 and t=20 (reservation at 20).
        let mut p = AvailabilityProfile::new(t(0.0), 0, &[(t(10.0), 8)]);
        p.reserve(t(20.0), d(100.0), 6);
        // A 5-second job fits at t=10; a 15-second job must wait until the
        // reservation ends at t=120.
        assert_eq!(p.earliest_fit(8, d(5.0), t(0.0)), Some(t(10.0)));
        assert_eq!(p.earliest_fit(8, d(15.0), t(0.0)), Some(t(120.0)));
    }

    #[test]
    fn reserve_subtracts_over_window() {
        let mut p = AvailabilityProfile::new(t(0.0), 10, &[]);
        p.reserve(t(5.0), d(10.0), 4);
        assert_eq!(p.free_at(t(0.0)), 10);
        assert_eq!(p.free_at(t(5.0)), 6);
        assert_eq!(p.free_at(t(14.9)), 6);
        assert_eq!(p.free_at(t(15.0)), 10);
    }

    #[test]
    fn nested_reservations() {
        let mut p = AvailabilityProfile::new(t(0.0), 10, &[]);
        p.reserve(t(0.0), d(100.0), 3);
        p.reserve(t(10.0), d(20.0), 5);
        assert_eq!(p.free_at(t(5.0)), 7);
        assert_eq!(p.free_at(t(15.0)), 2);
        assert_eq!(p.free_at(t(30.0)), 7);
        assert_eq!(p.free_at(t(100.0)), 10);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn over_reservation_panics() {
        let mut p = AvailabilityProfile::new(t(0.0), 4, &[]);
        p.reserve(t(0.0), d(10.0), 5);
    }

    #[test]
    fn min_free_over_sees_dips() {
        let mut p = AvailabilityProfile::new(t(0.0), 10, &[]);
        p.reserve(t(5.0), d(5.0), 9);
        assert_eq!(p.min_free_over(t(0.0), d(20.0)), 1);
        assert_eq!(p.min_free_over(t(10.0), d(20.0)), 10);
    }

    proptest! {
        /// earliest_fit's answer always actually fits.
        #[test]
        fn prop_earliest_fit_is_feasible(
            free0 in 0u32..16,
            releases in proptest::collection::vec((1.0f64..1000.0, 1u32..8), 0..10),
            cores in 1u32..40,
            dur in 1.0f64..500.0,
        ) {
            let rel: Vec<(SimTime, u32)> =
                releases.iter().map(|(tt, c)| (t(*tt), *c)).collect();
            let p = AvailabilityProfile::new(t(0.0), free0, &rel);
            if let Some(start) = p.earliest_fit(cores, d(dur), t(0.0)) {
                prop_assert!(p.min_free_over(start, d(dur)) >= cores);
            } else {
                // Impossible means even the fully-released machine is small.
                let total: u32 = free0 + rel.iter().map(|(_, c)| c).sum::<u32>();
                prop_assert!(total < cores);
            }
        }

        /// earliest_fit returns the *earliest* feasible breakpoint: no
        /// strictly earlier breakpoint candidate fits.
        #[test]
        fn prop_earliest_fit_minimality(
            free0 in 0u32..16,
            releases in proptest::collection::vec((1.0f64..1000.0, 1u32..8), 0..10),
            cores in 1u32..30,
            dur in 1.0f64..500.0,
        ) {
            let rel: Vec<(SimTime, u32)> =
                releases.iter().map(|(tt, c)| (t(*tt), *c)).collect();
            let p = AvailabilityProfile::new(t(0.0), free0, &rel);
            if let Some(start) = p.earliest_fit(cores, d(dur), t(0.0)) {
                // Check all earlier breakpoints (availability only changes
                // there, so they are the only earlier candidates).
                let mut earlier: Vec<SimTime> = vec![t(0.0)];
                earlier.extend(rel.iter().map(|(tt, _)| *tt));
                earlier.retain(|tt| *tt < start);
                for e in earlier {
                    prop_assert!(
                        p.min_free_over(e, d(dur)) < cores,
                        "{e:?} also fits but is earlier than {start:?}"
                    );
                }
            }
        }

        /// Reservations never increase availability anywhere.
        #[test]
        fn prop_reserve_monotone(
            start in 0.0f64..100.0,
            dur in 1.0f64..100.0,
            cores in 1u32..5,
            probe in 0.0f64..300.0,
        ) {
            let p0 = AvailabilityProfile::new(t(0.0), 10, &[(t(50.0), 10)]);
            let mut p1 = p0.clone();
            p1.reserve(t(start), d(dur), cores);
            prop_assert!(p1.free_at(t(probe)) <= p0.free_at(t(probe)));
        }
    }
}
