//! The simulated testbed: the five resources the paper used.
//!
//! §IV: "We acquired data over one year, measuring experiment performance
//! on four XSEDE and one NERSC resources." The AIMES experiments drew from
//! a pool of Stampede, Gordon, Trestles, Blacklight (XSEDE) and Hopper
//! (NERSC). The specs here keep the machines' *relative* character —
//! different sizes, interconnect generations, schedulers, load levels, and
//! submission latencies — scaled so that a 2048-core pilot (the largest the
//! experiments need) fits everywhere, while whole-machine simulation stays
//! cheap. Absolute queue waits are therefore not the paper's, but their
//! dispersion and cross-resource independence (the properties the paper's
//! analysis relies on) are preserved.

use crate::cluster::ClusterConfig;
use crate::policy::SchedulingPolicy;
use aimes_sim::SimDuration;
use aimes_workload::{Distribution, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// A named resource specification that can be instantiated as a cluster.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResourceSpec {
    pub config: ClusterConfig,
    /// Failure domain the resource belongs to — the site whose shared
    /// infrastructure (filesystem, network, power) can take every member
    /// down together. Empty means unassigned (legacy specs).
    #[serde(default)]
    pub domain: String,
    /// Human-readable provenance note.
    pub note: String,
}

fn workload(util: f64, mu: f64, sigma: f64, hi_exp: u32, diurnal: f64) -> WorkloadConfig {
    WorkloadConfig {
        target_utilization: util,
        size_dist: Distribution::PowerOfTwo { lo_exp: 0, hi_exp },
        runtime_dist: Distribution::LogNormal { mu, sigma },
        overestimate_dist: Distribution::Uniform { lo: 1.5, hi: 8.0 },
        diurnal_amplitude: diurnal,
    }
}

#[allow(clippy::too_many_arguments)] // one knob per heterogeneity axis
fn spec(
    name: &str,
    cores: u32,
    cores_per_node: u32,
    policy: SchedulingPolicy,
    wl: WorkloadConfig,
    backlog: f64,
    ingress_mbps: f64,
    domain: &str,
    note: &str,
) -> ResourceSpec {
    ResourceSpec {
        domain: domain.to_string(),
        config: ClusterConfig {
            name: name.to_string(),
            total_cores: cores,
            cores_per_node,
            policy,
            queues: vec![
                crate::cluster::QueueConfig::normal(),
                // Every production machine ran a small high-priority
                // debug/development queue.
                crate::cluster::QueueConfig::debug(SimDuration::from_mins(30.0), cores / 16),
            ],
            workload: Some(wl),
            background_horizon: SimDuration::from_hours(24.0 * 14.0),
            initial_backlog_factor: backlog,
            ingress_mbps,
            egress_mbps: ingress_mbps * 0.8,
            transfer_latency: SimDuration::from_secs(2.0),
        },
        note: note.to_string(),
    }
}

/// The five-resource pool the experiments draw pilots from.
///
/// Heterogeneity knobs (size, utilization, runtime mix, policy, backlog,
/// bandwidth) are chosen so that per-resource queue-wait distributions are
/// visibly different and mutually independent — the property that makes the
/// min-over-k-resources effect work (§IV-B, Fig. 4).
pub fn paper_testbed() -> Vec<ResourceSpec> {
    vec![
        spec(
            "stampede",
            8192,
            16,
            SchedulingPolicy::EasyBackfill,
            // Large, saturated flagship: long-ish jobs, heavy tail.
            workload(0.98, 8.4, 1.5, 9, 0.3),
            1.5,
            120.0,
            "tacc",
            "XSEDE flagship analog: large, saturated, EASY backfill",
        ),
        spec(
            "gordon",
            4096,
            16,
            SchedulingPolicy::EasyBackfill,
            // Mid-size data-intensive machine, busy but less backlogged.
            workload(0.93, 8.0, 1.3, 8, 0.25),
            0.8,
            100.0,
            "sdsc",
            "XSEDE mid-size analog: data-intensive, busy",
        ),
        spec(
            "trestles",
            4096,
            32,
            SchedulingPolicy::EasyBackfill,
            // Throughput-oriented: shorter jobs, lightest load of the
            // pool — often the fastest to activate a pilot.
            workload(0.91, 7.4, 1.2, 7, 0.2),
            0.6,
            80.0,
            "sdsc",
            "XSEDE throughput analog: short jobs, lightest load",
        ),
        spec(
            "blacklight",
            2048,
            64,
            SchedulingPolicy::Fcfs,
            // Shared-memory niche machine: few, fat, long jobs, strict
            // FCFS — wait times are long and erratic.
            workload(0.93, 9.0, 1.6, 10, 0.15),
            0.8,
            60.0,
            "psc",
            "XSEDE shared-memory analog: fat long jobs, strict FCFS",
        ),
        spec(
            "hopper",
            6144,
            24,
            SchedulingPolicy::EasyBackfill,
            // DOE production machine: oversubscribed, deep backlog.
            workload(1.0, 8.6, 1.4, 9, 0.35),
            1.2,
            150.0,
            "nersc",
            "NERSC production analog: oversubscribed, deep backlog",
        ),
    ]
}

/// Look up a testbed resource by name.
pub fn testbed_resource(name: &str) -> Option<ResourceSpec> {
    paper_testbed().into_iter().find(|s| s.config.name == name)
}

/// Group resource specs by failure domain: `(domain, member names)` pairs
/// sorted by domain name, unassigned (empty-domain) specs omitted. The
/// shape a correlated-failure cascade spec wants for its domain list.
pub fn failure_domains(specs: &[ResourceSpec]) -> Vec<(String, Vec<String>)> {
    let mut by_domain: std::collections::BTreeMap<String, Vec<String>> = Default::default();
    for s in specs {
        if !s.domain.is_empty() {
            by_domain
                .entry(s.domain.clone())
                .or_default()
                .push(s.config.name.clone());
        }
    }
    by_domain.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use aimes_sim::{SimTime, Simulation};

    #[test]
    fn testbed_has_five_distinct_resources() {
        let tb = paper_testbed();
        assert_eq!(tb.len(), 5);
        let mut names: Vec<_> = tb.iter().map(|s| s.config.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn every_resource_fits_the_largest_pilot() {
        // The paper's biggest single pilot is 2048 cores (2048 tasks,
        // early binding).
        for s in paper_testbed() {
            assert!(
                s.config.total_cores >= 2048,
                "{} too small for the experiments",
                s.config.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(testbed_resource("hopper").is_some());
        assert!(testbed_resource("gordon").is_some());
        assert!(testbed_resource("bluewaters").is_none());
    }

    #[test]
    fn resources_are_heterogeneous() {
        let tb = paper_testbed();
        let utils: Vec<f64> = tb
            .iter()
            .map(|s| s.config.workload.as_ref().unwrap().target_utilization)
            .collect();
        let sizes: Vec<u32> = tb.iter().map(|s| s.config.total_cores).collect();
        let u_min = utils.iter().cloned().fold(f64::INFINITY, f64::min);
        let u_max = utils.iter().cloned().fold(0.0, f64::max);
        assert!(u_max - u_min >= 0.05, "load spread {u_min}..{u_max}");
        assert!(u_max >= 0.95, "pool should include saturated machines");
        assert!(sizes.iter().max().unwrap() / sizes.iter().min().unwrap() >= 4);
        assert!(tb.iter().any(|s| s.config.policy == SchedulingPolicy::Fcfs));
    }

    #[test]
    fn testbed_records_failure_domains() {
        let tb = paper_testbed();
        for s in &tb {
            assert!(!s.domain.is_empty(), "{} has no domain", s.config.name);
        }
        let domains = failure_domains(&tb);
        assert_eq!(domains.len(), 4, "four sites back the five resources");
        let sdsc = domains
            .iter()
            .find(|(d, _)| d == "sdsc")
            .expect("shared-site domain");
        assert_eq!(sdsc.1, vec!["gordon".to_string(), "trestles".to_string()]);
        // Legacy specs without a domain key still load and are omitted
        // from the grouping.
        let legacy: ResourceSpec =
            serde_json::from_str(&serde_json::to_string(&tb[0]).unwrap()).unwrap();
        assert_eq!(legacy.domain, "tacc");
        let mut unassigned = tb[0].clone();
        unassigned.domain.clear();
        assert!(failure_domains(&[unassigned]).is_empty());
    }

    #[test]
    fn testbed_reaches_realistic_utilization() {
        // Each machine, left alone for 5 simulated days, should be busy.
        for s in paper_testbed() {
            let mut sim = Simulation::with_tracer(3, aimes_sim::Tracer::disabled());
            let c = Cluster::new(s.config.clone());
            c.install(&mut sim);
            sim.run_until(SimTime::from_secs(5.0 * 24.0 * 3600.0));
            let m = c.metrics(sim.now());
            assert!(
                m.utilization > 0.45,
                "{} only reached {:.2} utilization",
                s.config.name,
                m.utilization
            );
        }
    }
}
