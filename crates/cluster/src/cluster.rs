//! The simulated HPC resource.
//!
//! A [`Cluster`] is a cheaply-cloneable handle (`Rc<RefCell<_>>`) to the
//! resource state, designed to be captured by simulation callbacks. It
//! combines:
//!
//! * a batch queue driven by a [`SchedulingPolicy`],
//! * core accounting with conservative walltime enforcement,
//! * a background-workload feed that keeps the machine realistically busy,
//! * the introspection surface the Bundle abstraction queries (metrics,
//!   queue composition, start-time estimation, wait history).

use crate::job::{Job, JobId, JobOwner, JobRequest, JobState};
use crate::policy::{select_starts, QueuedJobView, RunningJobView, SchedulingPolicy};
use crate::profile::AvailabilityProfile;
use aimes_sim::{EventId, JobPhase, ResourcePhase, SimDuration, SimTime, Simulation, TraceKind};
use aimes_workload::{BackgroundWorkload, WorkloadConfig};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

/// The typed trace phase for a batch-job state.
fn job_phase(state: JobState) -> JobPhase {
    match state {
        JobState::Queued => JobPhase::Queued,
        JobState::Running => JobPhase::Running,
        JobState::Completed => JobPhase::Completed,
        JobState::Killed => JobPhase::Killed,
        JobState::Cancelled => JobPhase::Cancelled,
    }
}

/// One named submission queue of a resource. Real batch systems expose
/// several (e.g. `normal`, `debug`, `large`) with different priorities and
/// walltime ceilings; pilots are routed to a queue like any job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    pub name: String,
    /// Jobs requesting more walltime than this are rejected at submission.
    pub max_walltime: SimDuration,
    /// Jobs requesting more cores than this are rejected (None = machine
    /// size).
    pub max_cores: Option<u32>,
    /// Higher priority sorts ahead of lower in the scheduler's order.
    pub priority: i32,
}

impl QueueConfig {
    /// The default production queue: whole machine, 48 h, base priority.
    pub fn normal() -> Self {
        QueueConfig {
            name: "normal".to_string(),
            max_walltime: SimDuration::from_hours(48.0),
            max_cores: None,
            priority: 0,
        }
    }

    /// A debug/development queue: short walltimes, few cores, but jumps
    /// the line.
    pub fn debug(max_walltime: SimDuration, max_cores: u32) -> Self {
        QueueConfig {
            name: "debug".to_string(),
            max_walltime,
            max_cores: Some(max_cores),
            priority: 10,
        }
    }
}

/// Static description of a resource.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Resource name, e.g. `stampede`.
    pub name: String,
    /// Total schedulable cores.
    pub total_cores: u32,
    /// Cores per node (accounting only; scheduling is core-granular).
    pub cores_per_node: u32,
    /// Batch scheduling policy.
    pub policy: SchedulingPolicy,
    /// Submission queues; the first is the default. Must be non-empty
    /// with distinct names.
    pub queues: Vec<QueueConfig>,
    /// Background load configuration; `None` leaves the machine idle.
    pub workload: Option<WorkloadConfig>,
    /// How long to keep feeding background arrivals.
    pub background_horizon: SimDuration,
    /// Queued-core demand at t = 0 as a fraction of machine size (initial
    /// backlog; avoids a cold-start transient).
    pub initial_backlog_factor: f64,
    /// Wide-area bandwidth for staging, MB/s, into the resource.
    pub ingress_mbps: f64,
    /// Wide-area bandwidth for staging, MB/s, out of the resource.
    pub egress_mbps: f64,
    /// Per-transfer latency (connection setup and the like).
    pub transfer_latency: SimDuration,
}

impl ClusterConfig {
    /// A small idle test cluster.
    pub fn test(name: &str, cores: u32) -> Self {
        ClusterConfig {
            name: name.to_string(),
            total_cores: cores,
            cores_per_node: 16,
            policy: SchedulingPolicy::EasyBackfill,
            queues: vec![QueueConfig::normal()],
            workload: None,
            background_horizon: SimDuration::from_hours(240.0),
            initial_backlog_factor: 0.0,
            ingress_mbps: 100.0,
            egress_mbps: 100.0,
            transfer_latency: SimDuration::from_secs(1.0),
        }
    }
}

/// Point-in-time resource metrics (the Bundle's on-demand view).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    pub total_cores: u32,
    pub free_cores: u32,
    pub running_jobs: usize,
    pub queued_jobs: usize,
    /// Sum of cores requested by queued jobs.
    pub queued_cores: u64,
    /// Time-averaged core utilization since simulation start.
    pub utilization: f64,
}

/// Queue composition detail (the Bundle's "queue state, queue composition,
/// and types of jobs already scheduled" view, §III-E).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueueSnapshot {
    /// (cores, requested walltime seconds) per queued job, in queue order.
    pub queued: Vec<(u32, f64)>,
    /// (cores, remaining walltime seconds) per running job.
    pub running: Vec<(u32, f64)>,
}

/// One historical record of a job start (for predictive queries).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WaitRecord {
    pub started_at: SimTime,
    pub wait: SimDuration,
    pub cores: u32,
}

/// Ordering key of a queued job: descending queue priority, then FIFO
/// (ascending [`JobId`]) within a priority class — exactly the scheduler's
/// queue order, so BTreeMap iteration *is* the queue and removal by key is
/// O(log Q) instead of the former O(Q) `Vec::retain`.
type QueueKey = (Reverse<i32>, u64);

/// Memoized `estimate_wait` state: the queue-replay availability profile
/// (independent of the probe's shape) plus per-shape results. Valid for
/// one (scheduler epoch, probe instant) pair.
struct EstCache {
    epoch: u64,
    now: SimTime,
    profile: AvailabilityProfile,
    /// Probe results keyed by (cores, walltime bit pattern).
    results: HashMap<(u32, u64), Option<SimDuration>>,
}

struct ClusterState {
    config: ClusterConfig,
    jobs: HashMap<JobId, Job>,
    /// Queued jobs in scheduler order (see [`QueueKey`]).
    queue: BTreeMap<QueueKey, JobId>,
    /// Running job ids (iteration is JobId-sorted, hence deterministic)
    /// with their scheduled completion events.
    running: BTreeMap<JobId, EventId>,
    free_cores: u32,
    next_job_id: u64,
    background: Option<BackgroundWorkload>,
    // Time-weighted utilization accounting.
    busy_core_secs: f64,
    last_change: SimTime,
    // Recent job-start records for predictive bundle queries.
    wait_history: VecDeque<WaitRecord>,
    // Per-job state-change subscribers (the SAGA layer registers here).
    watchers: HashMap<JobId, Vec<Watcher>>,
    // Coalesces same-instant dispatch requests into one event.
    dispatch_scheduled: bool,
    // Fault injection: no job starts before this instant (outage/drain
    // window). Queued jobs wait; submissions are still accepted, as a real
    // batch system keeps accepting into a paused queue.
    down_until: Option<SimTime>,
    // --- incremental scheduler state ---
    /// Monotonic epoch, bumped by every change that can alter a scheduling
    /// or estimation decision (submit/start/complete/cancel/kill/outage).
    sched_epoch: u64,
    /// Epoch whose state the last dispatch pass fully examined; a dispatch
    /// arriving with `sched_epoch == last_dispatch_epoch` is a no-op and
    /// returns in O(1).
    last_dispatch_epoch: u64,
    /// Cached policy inputs, rebuilt lazily when `views_dirty`.
    queued_views_cache: Vec<QueuedJobView>,
    running_views_cache: Vec<RunningJobView>,
    views_dirty: bool,
    /// Incrementally maintained sum of cores requested by queued jobs.
    queued_cores: u64,
    /// `estimate_wait` memo; invalidated by epoch/instant mismatch.
    est_cache: Option<EstCache>,
}

type Watcher = Box<dyn FnMut(&mut Simulation, JobState)>;

impl ClusterState {
    fn accrue_busy(&mut self, now: SimTime) {
        let busy = self.config.total_cores - self.free_cores;
        self.busy_core_secs += f64::from(busy) * now.saturating_since(self.last_change).as_secs();
        self.last_change = now;
    }

    fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_secs();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let busy_now = f64::from(self.config.total_cores - self.free_cores)
            * now.saturating_since(self.last_change).as_secs();
        (self.busy_core_secs + busy_now) / (f64::from(self.config.total_cores) * elapsed)
    }

    /// Queue-order key for a job already stored in `jobs`.
    fn queue_key(&self, id: JobId) -> QueueKey {
        (Reverse(self.jobs[&id].queue_priority), id.0)
    }

    /// Mark a scheduling-relevant state change: bumps the epoch (so
    /// no-change dispatches and stale `estimate_wait` memos are detected)
    /// and invalidates the cached policy views.
    fn touch(&mut self) {
        self.sched_epoch += 1;
        self.views_dirty = true;
    }

    /// Rebuild the cached policy inputs if anything changed since the last
    /// dispatch. Iteration order is the BTreeMaps' — deterministic: no
    /// `HashMap` iteration order may reach scheduler inputs, traces, or
    /// journals (it varies with the per-process hash seed, which would
    /// make same-seed runs diverge).
    fn ensure_views(&mut self) {
        if !self.views_dirty {
            return;
        }
        let ClusterState {
            queue,
            running,
            jobs,
            queued_views_cache,
            running_views_cache,
            ..
        } = self;
        queued_views_cache.clear();
        queued_views_cache.extend(queue.values().map(|id| {
            let j = &jobs[id];
            QueuedJobView {
                id: *id,
                cores: j.request.cores,
                walltime: j.request.walltime_request,
            }
        }));
        running_views_cache.clear();
        running_views_cache.extend(running.keys().map(|id| {
            let j = &jobs[id];
            RunningJobView {
                cores: j.request.cores,
                deadline: j.walltime_deadline().expect("running job has start"),
            }
        }));
        self.views_dirty = false;
    }

    fn transition(&mut self, id: JobId, next: JobState) {
        let job = self.jobs.get_mut(&id).expect("job exists");
        assert!(
            job.state.can_transition_to(next),
            "illegal job transition {:?} -> {:?} for {id}",
            job.state,
            next
        );
        job.state = next;
    }
}

/// Handle to a simulated resource.
///
/// ```
/// use aimes_cluster::{Cluster, ClusterConfig, JobRequest, JobState};
/// use aimes_sim::{SimDuration, Simulation};
///
/// let mut sim = Simulation::new(1);
/// let cluster = Cluster::new(ClusterConfig::test("demo", 64));
/// let job = cluster.submit(
///     &mut sim,
///     JobRequest::background(
///         32,
///         SimDuration::from_secs(100.0),  // actual runtime
///         SimDuration::from_secs(200.0),  // requested walltime
///     ),
/// );
/// sim.run_to_completion();
/// assert_eq!(cluster.job_state(job), Some(JobState::Completed));
/// assert_eq!(sim.now().as_secs(), 100.0);
/// ```
#[derive(Clone)]
pub struct Cluster {
    inner: Rc<RefCell<ClusterState>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.borrow();
        f.debug_struct("Cluster")
            .field("name", &st.config.name)
            .field("total_cores", &st.config.total_cores)
            .field("free_cores", &st.free_cores)
            .field("queued", &st.queue.len())
            .finish()
    }
}

impl Cluster {
    /// Create a cluster. Call [`Cluster::install`] to attach its background
    /// load to a simulation.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.total_cores > 0);
        assert!(
            !config.queues.is_empty(),
            "cluster needs at least one queue"
        );
        {
            let mut names: Vec<&str> = config.queues.iter().map(|q| q.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(
                names.len(),
                config.queues.len(),
                "queue names must be distinct"
            );
        }
        let state = ClusterState {
            free_cores: config.total_cores,
            config,
            jobs: HashMap::new(),
            queue: BTreeMap::new(),
            running: BTreeMap::new(),
            next_job_id: 0,
            background: None,
            busy_core_secs: 0.0,
            last_change: SimTime::ZERO,
            wait_history: VecDeque::new(),
            watchers: HashMap::new(),
            dispatch_scheduled: false,
            down_until: None,
            sched_epoch: 1,
            last_dispatch_epoch: 0,
            queued_views_cache: Vec::new(),
            running_views_cache: Vec::new(),
            views_dirty: true,
            queued_cores: 0,
            est_cache: None,
        };
        Cluster {
            inner: Rc::new(RefCell::new(state)),
        }
    }

    /// Resource name.
    pub fn name(&self) -> String {
        self.inner.borrow().config.name.clone()
    }

    /// Static configuration (cloned).
    pub fn config(&self) -> ClusterConfig {
        self.inner.borrow().config.clone()
    }

    /// Attach background load (if configured) and the initial condition to
    /// the simulation. Must be called at t = 0, once.
    pub fn install(&self, sim: &mut Simulation) {
        let (workload_cfg, cores, backlog, name) = {
            let st = self.inner.borrow();
            (
                st.config.workload.clone(),
                st.config.total_cores,
                st.config.initial_backlog_factor,
                st.config.name.clone(),
            )
        };
        let Some(cfg) = workload_cfg else {
            return;
        };
        let rng = sim.fork_rng(&format!("cluster.{name}.background"));
        let mut generator = BackgroundWorkload::new(cfg, cores, rng);
        // Seed the machine: running set + queued backlog at t = 0.
        let initial = generator.initial_condition(backlog);
        self.inner.borrow_mut().background = Some(generator);
        for job in initial {
            let req = self.clamp_to_default_queue(JobRequest::background(
                job.cores,
                job.runtime,
                job.walltime_request,
            ));
            self.submit(sim, req);
        }
        self.schedule_next_background(sim);
    }

    /// Replay a fixed background trace (e.g. parsed from a Standard
    /// Workload Format file) instead of — or on top of — the synthetic
    /// generator. Jobs whose arrival has passed are submitted immediately;
    /// walltime requests are clamped to the default queue's ceiling.
    /// Oversized jobs (wider than the machine) are skipped, as a real
    /// scheduler would reject them at submission; the number of jobs
    /// actually scheduled is returned.
    pub fn install_trace(
        &self,
        sim: &mut Simulation,
        jobs: &[aimes_workload::BackgroundJob],
    ) -> usize {
        let total = self.inner.borrow().config.total_cores;
        let mut installed = 0;
        for job in jobs {
            if job.cores > total {
                continue;
            }
            installed += 1;
            let req = self.clamp_to_default_queue(JobRequest::background(
                job.cores,
                job.runtime,
                job.walltime_request,
            ));
            let this = self.clone();
            let at = job.arrival.max(sim.now());
            sim.schedule_at(at, move |sim| {
                this.submit(sim, req);
            });
        }
        installed
    }

    /// Background jobs request at most what the default queue allows —
    /// users cannot ask for more; jobs running longer are killed at the
    /// ceiling, exactly as in production.
    fn clamp_to_default_queue(&self, mut req: JobRequest) -> JobRequest {
        let max = self.inner.borrow().config.queues[0].max_walltime;
        req.walltime_request = req.walltime_request.min(max);
        req
    }

    fn schedule_next_background(&self, sim: &mut Simulation) {
        let _prof = sim.profiler().scope("cluster.scheduler");
        let (arrival, horizon) = {
            let st = self.inner.borrow();
            let Some(bg) = st.background.as_ref() else {
                return;
            };
            (
                bg.peek_arrival(),
                SimTime::ZERO + st.config.background_horizon,
            )
        };
        if arrival > horizon {
            return;
        }
        let this = self.clone();
        sim.schedule_at(arrival.max(sim.now()), move |sim| {
            let job = {
                let mut st = this.inner.borrow_mut();
                st.background
                    .as_mut()
                    .expect("background exists")
                    .next_job()
            };
            let req = this.clamp_to_default_queue(JobRequest::background(
                job.cores,
                job.runtime,
                job.walltime_request,
            ));
            this.submit(sim, req);
            this.schedule_next_background(sim);
        });
    }

    /// Submit a job. Panics if the request exceeds the machine (real batch
    /// systems reject those at submission too — callers must size pilots to
    /// the resource, which the Execution Manager does via bundle data).
    pub fn submit(&self, sim: &mut Simulation, request: JobRequest) -> JobId {
        let id = {
            let mut st = self.inner.borrow_mut();
            assert!(
                request.cores >= 1 && request.cores <= st.config.total_cores,
                "job of {} cores cannot run on {} ({} cores)",
                request.cores,
                st.config.name,
                st.config.total_cores
            );
            // Resolve the submission queue and enforce its limits.
            let qcfg = match &request.queue {
                None => &st.config.queues[0],
                Some(name) => st
                    .config
                    .queues
                    .iter()
                    .find(|q| q.name == *name)
                    .unwrap_or_else(|| panic!("unknown queue `{name}` on {}", st.config.name)),
            };
            assert!(
                request.walltime_request <= qcfg.max_walltime,
                "walltime {:.0}s exceeds queue `{}` limit {:.0}s on {}",
                request.walltime_request.as_secs(),
                qcfg.name,
                qcfg.max_walltime.as_secs(),
                st.config.name
            );
            let q_max_cores = qcfg.max_cores.unwrap_or(st.config.total_cores);
            assert!(
                request.cores <= q_max_cores,
                "{} cores exceeds queue `{}` limit {} on {}",
                request.cores,
                qcfg.name,
                q_max_cores,
                st.config.name
            );
            let priority = qcfg.priority;
            let id = JobId(st.next_job_id);
            st.next_job_id += 1;
            let job = Job::new(id, request, sim.now(), priority);
            if job.request.owner == JobOwner::Pilot {
                sim.tracer().record_with(sim.now(), || {
                    (
                        format!("cluster.{}.{}", st.config.name, id),
                        TraceKind::Job(JobPhase::Queued),
                        job.request.tag.clone(),
                    )
                });
            }
            // Priority insertion: ahead of strictly lower-priority jobs,
            // behind equal priority (stable FIFO within a queue class) —
            // the QueueKey ordering, since ids grow monotonically.
            st.queued_cores += u64::from(job.request.cores);
            st.jobs.insert(id, job);
            let key = (Reverse(priority), id.0);
            st.queue.insert(key, id);
            st.touch();
            id
        };
        self.inc_job_counter(sim, "jobs_submitted");
        self.record_usage_gauges(sim);
        self.schedule_dispatch(sim);
        id
    }

    /// Cancel a job (queued or running). Returns true if it was live.
    pub fn cancel(&self, sim: &mut Simulation, id: JobId) -> bool {
        let cancelled = {
            let mut st = self.inner.borrow_mut();
            let Some(job) = st.jobs.get(&id) else {
                return false;
            };
            match job.state {
                JobState::Queued => {
                    st.transition(id, JobState::Cancelled);
                    st.jobs.get_mut(&id).expect("exists").end_time = Some(sim.now());
                    let key = st.queue_key(id);
                    st.queue.remove(&key).expect("queued job is in the queue");
                    st.queued_cores -= u64::from(st.jobs[&id].request.cores);
                    st.touch();
                    true
                }
                JobState::Running => {
                    st.accrue_busy(sim.now());
                    st.transition(id, JobState::Cancelled);
                    st.jobs.get_mut(&id).expect("exists").end_time = Some(sim.now());
                    let ev = st.running.remove(&id).expect("running job has event");
                    let cores = st.jobs[&id].request.cores;
                    st.free_cores += cores;
                    st.touch();
                    // Cancel the pending completion event.
                    drop(st);
                    sim.cancel(ev);
                    true
                }
                _ => false,
            }
        };
        if cancelled {
            let st = self.inner.borrow();
            if st.jobs[&id].request.owner == JobOwner::Pilot {
                sim.tracer().record_with(sim.now(), || {
                    (
                        format!("cluster.{}.{}", st.config.name, id),
                        TraceKind::Job(JobPhase::Cancelled),
                        st.jobs[&id].request.tag.clone(),
                    )
                });
            }
            drop(st);
            self.inc_job_counter(sim, "jobs_cancelled");
            self.record_usage_gauges(sim);
            self.notify(sim, id, JobState::Cancelled);
            self.schedule_dispatch(sim);
        }
        cancelled
    }

    /// Request a dispatch pass. Deferred to a same-instant event so that
    /// callers (and their watchers) observe a consistent pre-dispatch
    /// state first; multiple requests at one instant coalesce.
    fn schedule_dispatch(&self, sim: &mut Simulation) {
        {
            let mut st = self.inner.borrow_mut();
            if st.dispatch_scheduled {
                return;
            }
            st.dispatch_scheduled = true;
        }
        let this = self.clone();
        sim.schedule_now(move |sim| {
            this.inner.borrow_mut().dispatch_scheduled = false;
            this.dispatch(sim);
        });
    }

    /// Run the scheduling policy and start whatever it selects.
    ///
    /// Incremental: a pass that cannot change anything — nothing happened
    /// since the last completed pass, the queue is empty, or no cores are
    /// free (no policy can start a job on zero free cores) — returns
    /// without rebuilding views or consulting the policy.
    fn dispatch(&self, sim: &mut Simulation) {
        let _prof = sim.profiler().scope("cluster.scheduler");
        let now = sim.now();
        let starts: Vec<(JobId, SimTime, JobOwner, String, SimDuration)> = {
            let mut st = self.inner.borrow_mut();
            if st.down_until.is_some_and(|until| now < until) {
                // Outage/drain window: the scheduler is paused. A dispatch
                // pass is already scheduled for the window's end. Do NOT
                // record the epoch: the window's end is not epoch-tracked,
                // and the end-of-window pass must re-examine this state.
                return;
            }
            if st.sched_epoch == st.last_dispatch_epoch {
                return;
            }
            if st.queue.is_empty() || st.free_cores == 0 {
                st.last_dispatch_epoch = st.sched_epoch;
                return;
            }
            st.ensure_views();
            let st = &mut *st;
            let ids = select_starts(
                st.config.policy,
                now,
                st.free_cores,
                &st.running_views_cache,
                &st.queued_views_cache,
            );
            if ids.is_empty() {
                // The pass examined exactly this epoch's state and found
                // nothing to start; until something changes, every further
                // dispatch is a no-op.
                st.last_dispatch_epoch = st.sched_epoch;
                return;
            }
            // Starts mutate the state (epoch moves on), so the next
            // dispatch re-runs the policy — which is correct: it will be
            // triggered only by a further state change.
            let mut started = Vec::with_capacity(ids.len());
            for id in ids {
                st.accrue_busy(now);
                let cores = st.jobs[&id].request.cores;
                assert!(st.free_cores >= cores, "policy oversubscribed cores");
                st.free_cores -= cores;
                let key = st.queue_key(id);
                st.queue.remove(&key).expect("started job was queued");
                st.queued_cores -= u64::from(cores);
                st.transition(id, JobState::Running);
                let job = st.jobs.get_mut(&id).expect("exists");
                job.start_time = Some(now);
                let end = now + job.occupancy();
                let wait = job.queue_wait(now);
                let owner = job.request.owner;
                let tag = job.request.tag.clone();
                st.wait_history.push_back(WaitRecord {
                    started_at: now,
                    wait,
                    cores,
                });
                if st.wait_history.len() > 1024 {
                    st.wait_history.pop_front();
                }
                st.touch();
                started.push((id, end, owner, tag, wait));
            }
            started
        };
        let started = starts.len();
        for (id, end, owner, tag, _wait) in starts {
            if owner == JobOwner::Pilot {
                sim.tracer().record_with(now, || {
                    let name = self.inner.borrow().config.name.clone();
                    (
                        format!("cluster.{name}.{id}"),
                        TraceKind::Job(JobPhase::Running),
                        tag,
                    )
                });
            }
            let this = self.clone();
            let ev = sim.schedule_at(end, move |sim| this.on_completion(sim, id));
            {
                let mut st = self.inner.borrow_mut();
                st.running.insert(id, ev);
                st.touch();
            }
            self.notify(sim, id, JobState::Running);
        }
        sim.metrics().inc_by(started as u64, || {
            format!(
                "cluster.{}.jobs_dispatched",
                self.inner.borrow().config.name
            )
        });
        self.record_usage_gauges(sim);
    }

    fn on_completion(&self, sim: &mut Simulation, id: JobId) {
        let _prof = sim.profiler().scope("cluster.scheduler");
        let now = sim.now();
        let (owner, tag, final_state) = {
            let mut st = self.inner.borrow_mut();
            st.accrue_busy(now);
            st.running.remove(&id);
            let job = &st.jobs[&id];
            let final_state = if job.request.runtime > job.request.walltime_request {
                JobState::Killed
            } else {
                JobState::Completed
            };
            st.transition(id, final_state);
            let cores = st.jobs[&id].request.cores;
            let job = st.jobs.get_mut(&id).expect("exists");
            job.end_time = Some(now);
            st.free_cores += cores;
            st.touch();
            let job = &st.jobs[&id];
            (job.request.owner, job.request.tag.clone(), final_state)
        };
        if owner == JobOwner::Pilot {
            sim.tracer().record_with(now, || {
                let name = self.inner.borrow().config.name.clone();
                (
                    format!("cluster.{name}.{id}"),
                    TraceKind::Job(job_phase(final_state)),
                    tag,
                )
            });
        }
        self.inc_job_counter(
            sim,
            if final_state == JobState::Killed {
                "jobs_killed"
            } else {
                "jobs_completed"
            },
        );
        self.record_usage_gauges(sim);
        self.notify(sim, id, final_state);
        self.schedule_dispatch(sim);
    }

    /// Inject a resource fault starting now. For `kill_running = true`
    /// (an outage: node failure, emergency maintenance) every running job
    /// is killed immediately and the scheduler stays paused until the
    /// window ends; for `kill_running = false` (a drain: scheduled
    /// maintenance reservation) running jobs finish but nothing new starts.
    /// Overlapping windows extend each other. Queued jobs and new
    /// submissions are retained — they simply wait out the window.
    pub fn inject_outage(&self, sim: &mut Simulation, duration: SimDuration, kill_running: bool) {
        let now = sim.now();
        let (name, end) = {
            let mut st = self.inner.borrow_mut();
            // A decommissioned resource is down forever: there is nothing
            // left to kill or pause, and scheduling the end-of-window
            // wake-up at t = ∞ would drag the clock to infinity if the
            // event queue ever drains that far.
            if st.down_until.is_some_and(|t| t.as_secs().is_infinite()) {
                return;
            }
            let end = (now + duration).max(st.down_until.unwrap_or(SimTime::ZERO));
            st.down_until = Some(end);
            // The window changes estimate_wait's origin and pauses
            // dispatch: a scheduling-relevant change like any other.
            st.touch();
            (st.config.name.clone(), end)
        };
        sim.tracer().record(
            now,
            format!("cluster.{name}"),
            TraceKind::Resource(if kill_running {
                ResourcePhase::Outage
            } else {
                ResourcePhase::Drain
            }),
            format!("{:.0}s window", duration.as_secs()),
        );
        if kill_running {
            self.kill_running_jobs(sim, &name);
        }
        if end.as_secs().is_finite() {
            let this = self.clone();
            sim.schedule_at(end, move |sim| {
                // The window may have been extended by a later injection,
                // in which case this pass is a no-op and that injection's
                // own wake-up takes over.
                this.schedule_dispatch(sim);
            });
        }
    }

    /// Remove the resource from service for good: running AND queued jobs
    /// are killed and dispatch never resumes. Watchers see `Killed`, so
    /// submitters learn their work died with the machine.
    pub fn decommission(&self, sim: &mut Simulation) {
        let now = sim.now();
        let (name, queued) = {
            let mut st = self.inner.borrow_mut();
            st.down_until = Some(SimTime::from_secs(f64::INFINITY));
            // Queue order (priority, then FIFO): the order submitters are
            // notified in, as before.
            let queued: Vec<JobId> = std::mem::take(&mut st.queue).into_values().collect();
            st.queued_cores = 0;
            st.touch();
            for &id in &queued {
                st.transition(id, JobState::Killed);
                st.jobs.get_mut(&id).expect("queued job exists").end_time = Some(now);
            }
            (st.config.name.clone(), queued)
        };
        sim.tracer().record(
            now,
            format!("cluster.{name}"),
            TraceKind::Resource(ResourcePhase::Decommission),
            "permanent loss",
        );
        self.kill_running_jobs(sim, &name);
        self.record_usage_gauges(sim);
        for id in queued {
            self.notify(sim, id, JobState::Killed);
        }
    }

    /// Kill every running job: bookkeeping for all victims first, under
    /// one borrow; then cancel events and notify watchers
    /// re-entrancy-safely.
    fn kill_running_jobs(&self, sim: &mut Simulation, name: &str) {
        let now = sim.now();
        let victims: Vec<(JobId, EventId, JobOwner, String)> = {
            let mut st = self.inner.borrow_mut();
            // BTreeMap keys are JobId-sorted: deterministic kill (and
            // watcher-notification) order.
            let ids: Vec<JobId> = st.running.keys().copied().collect();
            let mut out = Vec::with_capacity(ids.len());
            for id in ids {
                st.accrue_busy(now);
                st.transition(id, JobState::Killed);
                let ev = st.running.remove(&id).expect("running job has event");
                let cores = st.jobs[&id].request.cores;
                st.free_cores += cores;
                st.touch();
                let job = st.jobs.get_mut(&id).expect("exists");
                job.end_time = Some(now);
                out.push((id, ev, job.request.owner, job.request.tag.clone()));
            }
            out
        };
        let killed = victims.len();
        for (id, ev, owner, tag) in victims {
            sim.cancel(ev);
            if owner == JobOwner::Pilot {
                sim.tracer().record_with(now, || {
                    (
                        format!("cluster.{name}.{id}"),
                        TraceKind::Job(JobPhase::Killed),
                        tag,
                    )
                });
            }
            self.notify(sim, id, JobState::Killed);
        }
        sim.metrics().inc_by(killed as u64, || {
            format!("cluster.{}.jobs_killed", self.inner.borrow().config.name)
        });
        self.record_usage_gauges(sim);
    }

    /// Is the resource inside an outage/drain window at `now`?
    pub fn is_down(&self, now: SimTime) -> bool {
        self.inner
            .borrow()
            .down_until
            .is_some_and(|until| now < until)
    }

    /// Has the resource been permanently removed from service? A
    /// decommissioned machine's front end is gone too: remote operations
    /// against it fail at the connection level rather than queueing.
    pub fn is_decommissioned(&self) -> bool {
        self.inner
            .borrow()
            .down_until
            .is_some_and(|until| until.as_secs().is_infinite())
    }

    /// Bump one per-resource job counter (`cluster.<name>.<which>`). One
    /// branch when metrics are disabled.
    fn inc_job_counter(&self, sim: &Simulation, which: &'static str) {
        sim.metrics()
            .inc(|| format!("cluster.{}.{which}", self.inner.borrow().config.name));
    }

    /// Append one sample to the utilization and queue-depth timelines
    /// (`cluster.<name>.{busy_cores,utilization,queue_depth}`). Passive:
    /// schedules no events and draws no randomness, so instrumented runs
    /// stay bit-identical to uninstrumented ones.
    fn record_usage_gauges(&self, sim: &Simulation) {
        let metrics = sim.metrics();
        if !metrics.is_enabled() {
            return;
        }
        let now = sim.now();
        let st = self.inner.borrow();
        let name = &st.config.name;
        let busy = f64::from(st.config.total_cores - st.free_cores);
        metrics.gauge(now, busy, || format!("cluster.{name}.busy_cores"));
        metrics.gauge(now, busy / f64::from(st.config.total_cores), || {
            format!("cluster.{name}.utilization")
        });
        metrics.gauge(now, st.queue.len() as f64, || {
            format!("cluster.{name}.queue_depth")
        });
    }

    /// Subscribe to state changes of one job. The callback fires on every
    /// transition (Running, then a terminal state); it is dropped after a
    /// terminal notification. Callbacks may submit/cancel jobs and register
    /// further watchers.
    pub fn watch(&self, id: JobId, cb: impl FnMut(&mut Simulation, JobState) + 'static) {
        self.inner
            .borrow_mut()
            .watchers
            .entry(id)
            .or_default()
            .push(Box::new(cb));
    }

    fn notify(&self, sim: &mut Simulation, id: JobId, state: JobState) {
        let Some(mut ws) = self.inner.borrow_mut().watchers.remove(&id) else {
            return;
        };
        for w in ws.iter_mut() {
            w(sim, state);
        }
        if !state.is_terminal() {
            // Put watchers back, keeping any registered during callbacks.
            let mut st = self.inner.borrow_mut();
            if let Some(mut newly) = st.watchers.remove(&id) {
                ws.append(&mut newly);
            }
            st.watchers.insert(id, ws);
        }
    }

    /// Current state of a job.
    pub fn job_state(&self, id: JobId) -> Option<JobState> {
        self.inner.borrow().jobs.get(&id).map(|j| j.state)
    }

    /// Full job record (cloned).
    pub fn job(&self, id: JobId) -> Option<Job> {
        self.inner.borrow().jobs.get(&id).cloned()
    }

    /// On-demand metrics (the Bundle's query interface reads this).
    pub fn metrics(&self, now: SimTime) -> ClusterMetrics {
        let st = self.inner.borrow();
        ClusterMetrics {
            total_cores: st.config.total_cores,
            free_cores: st.free_cores,
            running_jobs: st.running.len(),
            queued_jobs: st.queue.len(),
            queued_cores: st.queued_cores,
            utilization: st.utilization(now),
        }
    }

    /// Detailed queue composition.
    pub fn queue_snapshot(&self, now: SimTime) -> QueueSnapshot {
        let st = self.inner.borrow();
        QueueSnapshot {
            queued: st
                .queue
                .values()
                .map(|id| {
                    let j = &st.jobs[id];
                    (j.request.cores, j.request.walltime_request.as_secs())
                })
                .collect(),
            running: st
                .running
                .keys()
                .map(|id| {
                    let j = &st.jobs[id];
                    let deadline = j.walltime_deadline().expect("running");
                    (j.request.cores, deadline.saturating_since(now).as_secs())
                })
                .collect(),
        }
    }

    /// Recent job-start records, oldest first.
    pub fn wait_history(&self) -> Vec<WaitRecord> {
        self.inner.borrow().wait_history.iter().copied().collect()
    }

    /// Estimate when a hypothetical job of `cores`×`walltime` submitted now
    /// would start, by replaying the queue against the conservative
    /// availability profile (all queued jobs get reservations ahead of it).
    /// Returns the estimated wait, or `None` if the job can never fit.
    ///
    /// Memoized: the O(Q·P²) queue replay is independent of the probe's
    /// shape, so its resulting profile is cached per (scheduler epoch,
    /// probe instant) and each distinct (cores, walltime) probe against it
    /// is answered once. Repeated bundle queries between state changes —
    /// the common pattern — cost one `earliest_fit` or a map lookup.
    pub fn estimate_wait(
        &self,
        now: SimTime,
        cores: u32,
        walltime: SimDuration,
    ) -> Option<SimDuration> {
        let mut st = self.inner.borrow_mut();
        if cores > st.config.total_cores {
            return None;
        }
        // A decommissioned resource never starts anything again; during an
        // outage/drain window nothing starts before the window ends, so the
        // availability profile begins at max(now, down_until).
        let origin = match st.down_until {
            Some(t) if t.as_secs().is_infinite() => return None,
            Some(t) => now.max(t),
            None => now,
        };
        let stale = !st
            .est_cache
            .as_ref()
            .is_some_and(|c| c.epoch == st.sched_epoch && c.now == now);
        if stale {
            let st = &mut *st;
            let releases: Vec<(SimTime, u32)> = st
                .running
                .keys()
                .map(|id| {
                    let j = &st.jobs[id];
                    (j.walltime_deadline().expect("running"), j.request.cores)
                })
                .collect();
            let mut profile = AvailabilityProfile::new(origin, st.free_cores, &releases);
            for id in st.queue.values() {
                let j = &st.jobs[id];
                if let Some(start) =
                    profile.earliest_fit(j.request.cores, j.request.walltime_request, origin)
                {
                    profile.reserve(start, j.request.walltime_request, j.request.cores);
                }
            }
            st.est_cache = Some(EstCache {
                epoch: st.sched_epoch,
                now,
                profile,
                results: HashMap::new(),
            });
        }
        let cache = st.est_cache.as_mut().expect("cache just ensured");
        let key = (cores, walltime.as_secs().to_bits());
        if let Some(hit) = cache.results.get(&key) {
            return *hit;
        }
        let result = cache
            .profile
            .earliest_fit(cores, walltime, origin)
            .map(|start| start.saturating_since(now));
        cache.results.insert(key, result);
        result
    }

    /// Staging time for `megabytes` moved into (`ingress` = true) or out of
    /// the resource.
    pub fn transfer_time(&self, megabytes: f64, ingress: bool) -> SimDuration {
        let st = self.inner.borrow();
        let bw = if ingress {
            st.config.ingress_mbps
        } else {
            st.config.egress_mbps
        };
        st.config.transfer_latency + SimDuration::from_secs(megabytes / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn idle_cluster(cores: u32) -> (Simulation, Cluster) {
        let sim = Simulation::new(7);
        let c = Cluster::new(ClusterConfig::test("testres", cores));
        (sim, c)
    }

    #[test]
    fn job_runs_to_completion_on_idle_machine() {
        let (mut sim, c) = idle_cluster(64);
        let id = c.submit(&mut sim, JobRequest::background(8, d(100.0), d(200.0)));
        assert_eq!(c.job_state(id), Some(JobState::Queued)); // dispatch is deferred
        sim.run_until(sim.now()); // settle same-instant events
        assert_eq!(c.job_state(id), Some(JobState::Running)); // idle → starts at t=0
        sim.run_to_completion();
        assert_eq!(c.job_state(id), Some(JobState::Completed));
        let job = c.job(id).unwrap();
        assert_eq!(job.start_time, Some(SimTime::ZERO));
        assert_eq!(job.end_time.unwrap().as_secs(), 100.0);
    }

    #[test]
    fn walltime_kill() {
        let (mut sim, c) = idle_cluster(64);
        // Runtime 300 s but only 100 s requested → killed at 100 s.
        let id = c.submit(&mut sim, JobRequest::background(8, d(300.0), d(100.0)));
        sim.run_to_completion();
        assert_eq!(c.job_state(id), Some(JobState::Killed));
        assert_eq!(c.job(id).unwrap().end_time.unwrap().as_secs(), 100.0);
    }

    #[test]
    fn queued_job_waits_for_cores() {
        let (mut sim, c) = idle_cluster(10);
        let a = c.submit(&mut sim, JobRequest::background(8, d(100.0), d(100.0)));
        let b = c.submit(&mut sim, JobRequest::background(8, d(50.0), d(50.0)));
        sim.run_until(sim.now()); // settle same-instant dispatch
        assert_eq!(c.job_state(a), Some(JobState::Running));
        assert_eq!(c.job_state(b), Some(JobState::Queued));
        sim.run_to_completion();
        let jb = c.job(b).unwrap();
        assert_eq!(jb.start_time.unwrap().as_secs(), 100.0);
        assert_eq!(jb.queue_wait(sim.now()), d(100.0));
        assert_eq!(jb.state, JobState::Completed);
    }

    #[test]
    fn backfill_overtakes_blocked_head() {
        let (mut sim, c) = idle_cluster(12);
        let _big = c.submit(&mut sim, JobRequest::background(10, d(100.0), d(100.0)));
        let head = c.submit(&mut sim, JobRequest::background(12, d(100.0), d(100.0)));
        let small = c.submit(&mut sim, JobRequest::background(2, d(20.0), d(20.0)));
        sim.run_until(sim.now()); // settle same-instant dispatch
                                  // Head blocked until t=100; small 2-core/20 s job backfills at once.
        assert_eq!(c.job_state(head), Some(JobState::Queued));
        assert_eq!(c.job_state(small), Some(JobState::Running));
        sim.run_to_completion();
        assert_eq!(c.job(head).unwrap().start_time.unwrap().as_secs(), 100.0);
    }

    #[test]
    fn fcfs_does_not_overtake() {
        let mut cfg = ClusterConfig::test("fcfs", 10);
        cfg.policy = SchedulingPolicy::Fcfs;
        let mut sim = Simulation::new(7);
        let c = Cluster::new(cfg);
        let _big = c.submit(&mut sim, JobRequest::background(10, d(100.0), d(100.0)));
        let _head = c.submit(&mut sim, JobRequest::background(10, d(100.0), d(100.0)));
        let small = c.submit(&mut sim, JobRequest::background(2, d(20.0), d(20.0)));
        assert_eq!(c.job_state(small), Some(JobState::Queued));
        sim.run_to_completion();
        // Small starts only after the head does (t=100).
        assert!(c.job(small).unwrap().start_time.unwrap().as_secs() >= 100.0);
    }

    #[test]
    fn cancel_queued_job() {
        let (mut sim, c) = idle_cluster(4);
        let a = c.submit(&mut sim, JobRequest::background(4, d(100.0), d(100.0)));
        let b = c.submit(&mut sim, JobRequest::background(4, d(100.0), d(100.0)));
        assert!(c.cancel(&mut sim, b));
        sim.run_to_completion();
        assert_eq!(c.job_state(b), Some(JobState::Cancelled));
        assert_eq!(c.job_state(a), Some(JobState::Completed));
    }

    #[test]
    fn cancel_running_job_frees_cores_immediately() {
        let (mut sim, c) = idle_cluster(4);
        let a = c.submit(&mut sim, JobRequest::background(4, d(1000.0), d(1000.0)));
        let b = c.submit(&mut sim, JobRequest::background(4, d(10.0), d(10.0)));
        assert_eq!(c.job_state(b), Some(JobState::Queued));
        let cl = c.clone();
        sim.schedule_at(SimTime::from_secs(5.0), move |sim| {
            cl.cancel(sim, a);
        });
        sim.run_to_completion();
        assert_eq!(c.job_state(a), Some(JobState::Cancelled));
        let jb = c.job(b).unwrap();
        assert_eq!(jb.start_time.unwrap().as_secs(), 5.0);
        assert_eq!(jb.state, JobState::Completed);
        // The cancelled job's completion event must not have fired.
        assert_eq!(sim.now().as_secs(), 15.0);
    }

    #[test]
    fn cancel_twice_is_false() {
        let (mut sim, c) = idle_cluster(4);
        let a = c.submit(&mut sim, JobRequest::background(4, d(10.0), d(10.0)));
        assert!(c.cancel(&mut sim, a));
        assert!(!c.cancel(&mut sim, a));
        assert!(!c.cancel(&mut sim, JobId(999)));
    }

    #[test]
    #[should_panic(expected = "cannot run")]
    fn oversized_job_rejected() {
        let (mut sim, c) = idle_cluster(4);
        c.submit(&mut sim, JobRequest::background(8, d(10.0), d(10.0)));
    }

    #[test]
    fn metrics_reflect_state() {
        let (mut sim, c) = idle_cluster(16);
        c.submit(&mut sim, JobRequest::background(10, d(100.0), d(100.0)));
        c.submit(&mut sim, JobRequest::background(10, d(100.0), d(100.0)));
        sim.run_until(sim.now()); // settle same-instant dispatch
        let m = c.metrics(sim.now());
        assert_eq!(m.total_cores, 16);
        assert_eq!(m.free_cores, 6);
        assert_eq!(m.running_jobs, 1);
        assert_eq!(m.queued_jobs, 1);
        assert_eq!(m.queued_cores, 10);
    }

    #[test]
    fn utilization_time_weighted() {
        let (mut sim, c) = idle_cluster(10);
        // 5 cores busy for 100 s, then idle until t=200 → 25 % utilization.
        c.submit(&mut sim, JobRequest::background(5, d(100.0), d(100.0)));
        sim.run_to_completion();
        let probe = SimTime::from_secs(200.0);
        let u = c.metrics(probe).utilization;
        assert!((u - 0.25).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn estimate_wait_on_idle_machine_is_zero() {
        let (sim, c) = idle_cluster(64);
        let w = c.estimate_wait(sim.now(), 32, d(100.0)).unwrap();
        assert_eq!(w, SimDuration::ZERO);
    }

    #[test]
    fn estimate_wait_accounts_for_running_and_queued() {
        let (mut sim, c) = idle_cluster(10);
        c.submit(&mut sim, JobRequest::background(10, d(100.0), d(100.0)));
        c.submit(&mut sim, JobRequest::background(10, d(50.0), d(50.0)));
        // New 10-core job: waits for running (100 s) + queued (50 s).
        let w = c.estimate_wait(sim.now(), 10, d(10.0)).unwrap();
        assert_eq!(w, d(150.0));
        // A 1-core job cannot backfill in the estimate either, because the
        // queued 10-core job's reservation occupies the whole machine; but
        // after that reservation it fits.
        assert!(c.estimate_wait(sim.now(), 1, d(10.0)).unwrap() <= d(150.0));
        assert!(c.estimate_wait(sim.now(), 11, d(10.0)).is_none());
    }

    #[test]
    fn estimate_wait_respects_outage_window() {
        let (mut sim, c) = idle_cluster(64);
        c.inject_outage(&mut sim, d(600.0), false);
        // Nothing starts inside the window: the earliest start is its end.
        let w = c.estimate_wait(sim.now(), 8, d(100.0)).unwrap();
        assert_eq!(w, d(600.0));
    }

    #[test]
    fn estimate_wait_treats_in_window_releases_as_free() {
        // A running job whose walltime expires inside the outage window
        // frees its cores before the window ends, so at the window's end
        // the whole machine is available — the estimate must not place
        // the release after the window (nor before it).
        let (mut sim, c) = idle_cluster(10);
        c.submit(&mut sim, JobRequest::background(10, d(100.0), d(100.0)));
        sim.run_until(SimTime::from_secs(1.0)); // let the job start at t=0
        c.inject_outage(&mut sim, d(600.0), false); // drain until t=601
        let w = c.estimate_wait(sim.now(), 10, d(50.0)).unwrap();
        assert_eq!(w, d(600.0), "start at window end, release already free");
    }

    #[test]
    fn estimate_wait_none_when_decommissioned() {
        let (mut sim, c) = idle_cluster(8);
        c.decommission(&mut sim);
        assert_eq!(c.estimate_wait(sim.now(), 1, d(10.0)), None);
    }

    #[test]
    fn estimate_wait_memo_is_transparent() {
        // The same probe twice answers identically (the second from the
        // per-epoch cache), and a scheduling-relevant change invalidates
        // the cache rather than serving a stale profile.
        let (mut sim, c) = idle_cluster(10);
        let zero = c.estimate_wait(sim.now(), 10, d(50.0)).unwrap();
        assert_eq!(zero, SimDuration::ZERO);
        assert_eq!(c.estimate_wait(sim.now(), 10, d(50.0)).unwrap(), zero);
        c.submit(&mut sim, JobRequest::background(10, d(100.0), d(100.0)));
        // The queued job's reservation occupies now..100 s; the probe must
        // see it immediately, not the cached idle profile.
        assert_eq!(c.estimate_wait(sim.now(), 10, d(50.0)).unwrap(), d(100.0));
    }

    #[test]
    fn wait_history_records_starts() {
        let (mut sim, c) = idle_cluster(4);
        c.submit(&mut sim, JobRequest::background(4, d(30.0), d(30.0)));
        c.submit(&mut sim, JobRequest::background(4, d(30.0), d(30.0)));
        sim.run_to_completion();
        let h = c.wait_history();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].wait, SimDuration::ZERO);
        assert_eq!(h[1].wait, d(30.0));
    }

    #[test]
    fn background_load_keeps_machine_busy() {
        let mut cfg = ClusterConfig::test("busy", 2048);
        cfg.workload = Some(WorkloadConfig::production_like());
        cfg.initial_backlog_factor = 0.3;
        cfg.background_horizon = SimDuration::from_hours(24.0 * 7.0);
        let mut sim = Simulation::new(21);
        let c = Cluster::new(cfg);
        c.install(&mut sim);
        sim.run_until(SimTime::from_secs(7.0 * 24.0 * 3600.0));
        let m = c.metrics(sim.now());
        assert!(
            m.utilization > 0.5,
            "background load should keep utilization up, got {}",
            m.utilization
        );
    }

    #[test]
    fn pilot_job_traces_recorded() {
        let (mut sim, c) = idle_cluster(8);
        let id = c.submit(&mut sim, JobRequest::pilot(8, d(60.0), "pilot.x"));
        sim.run_to_completion();
        assert_eq!(c.job_state(id), Some(JobState::Completed));
        let comp = format!("cluster.testres.{id}");
        let evs = sim.tracer().for_component(&comp);
        let names: Vec<&str> = evs.iter().map(|e| e.event.as_str()).collect();
        assert_eq!(names, vec!["Queued", "Running", "Completed"]);
    }

    #[test]
    fn transfer_time_uses_bandwidth_and_latency() {
        let (_sim, c) = idle_cluster(8);
        // 100 MB at 100 MB/s + 1 s latency = 2 s.
        assert_eq!(c.transfer_time(100.0, true), d(2.0));
    }

    #[test]
    fn debug_queue_jumps_the_line() {
        let mut cfg = ClusterConfig::test("queued", 8);
        cfg.queues = vec![QueueConfig::normal(), QueueConfig::debug(d(1800.0), 4)];
        let mut sim = Simulation::new(1);
        let c = Cluster::new(cfg);
        // Fill the machine, then queue a normal job and a debug job.
        c.submit(&mut sim, JobRequest::background(8, d(100.0), d(100.0)));
        let normal = c.submit(&mut sim, JobRequest::background(8, d(50.0), d(50.0)));
        let debug = c.submit(
            &mut sim,
            JobRequest::background(2, d(30.0), d(30.0)).with_queue("debug"),
        );
        sim.run_to_completion();
        let n = c.job(normal).unwrap();
        let dj = c.job(debug).unwrap();
        // The debug job sits at the queue head despite submitting later;
        // with EASY it also backfills, so it starts strictly earlier.
        assert!(dj.start_time.unwrap() < n.start_time.unwrap());
        assert_eq!(dj.queue_priority, 10);
        assert_eq!(n.queue_priority, 0);
    }

    #[test]
    fn priority_order_is_fifo_within_a_class() {
        let mut cfg = ClusterConfig::test("fifo", 4);
        cfg.queues = vec![QueueConfig::normal(), QueueConfig::debug(d(3600.0), 4)];
        let mut sim = Simulation::new(1);
        let c = Cluster::new(cfg);
        c.submit(&mut sim, JobRequest::background(4, d(100.0), d(100.0)));
        sim.run_until(sim.now()); // blocker starts before the contenders arrive
        let n1 = c.submit(&mut sim, JobRequest::background(4, d(10.0), d(10.0)));
        let d1 = c.submit(
            &mut sim,
            JobRequest::background(4, d(10.0), d(10.0)).with_queue("debug"),
        );
        let d2 = c.submit(
            &mut sim,
            JobRequest::background(4, d(10.0), d(10.0)).with_queue("debug"),
        );
        sim.run_to_completion();
        let start = |id| c.job(id).unwrap().start_time.unwrap().as_secs();
        // debug jobs first (in their submit order), then the normal job.
        assert_eq!(start(d1), 100.0);
        assert_eq!(start(d2), 110.0);
        assert_eq!(start(n1), 120.0);
    }

    #[test]
    #[should_panic(expected = "unknown queue")]
    fn unknown_queue_rejected() {
        let (mut sim, c) = idle_cluster(8);
        c.submit(
            &mut sim,
            JobRequest::background(1, d(10.0), d(10.0)).with_queue("vip"),
        );
    }

    #[test]
    #[should_panic(expected = "exceeds queue `debug` limit")]
    fn queue_walltime_limit_enforced() {
        let mut cfg = ClusterConfig::test("lim", 8);
        cfg.queues = vec![QueueConfig::normal(), QueueConfig::debug(d(60.0), 8)];
        let mut sim = Simulation::new(1);
        let c = Cluster::new(cfg);
        c.submit(
            &mut sim,
            JobRequest::background(1, d(10.0), d(3600.0)).with_queue("debug"),
        );
    }

    #[test]
    #[should_panic(expected = "cores exceeds queue")]
    fn queue_core_limit_enforced() {
        let mut cfg = ClusterConfig::test("lim", 64);
        cfg.queues = vec![QueueConfig::normal(), QueueConfig::debug(d(3600.0), 4)];
        let mut sim = Simulation::new(1);
        let c = Cluster::new(cfg);
        c.submit(
            &mut sim,
            JobRequest::background(8, d(10.0), d(10.0)).with_queue("debug"),
        );
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_queue_names_rejected() {
        let mut cfg = ClusterConfig::test("dup", 8);
        cfg.queues = vec![QueueConfig::normal(), QueueConfig::normal()];
        let _ = Cluster::new(cfg);
    }

    #[test]
    fn watcher_sees_running_then_terminal() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let (mut sim, c) = idle_cluster(8);
        let seen = Rc::new(RefCell::new(vec![]));
        let id = c.submit(&mut sim, JobRequest::background(8, d(60.0), d(120.0)));
        let s2 = seen.clone();
        c.watch(id, move |_sim, st| s2.borrow_mut().push(st));
        sim.run_to_completion();
        // Dispatch is deferred, so a watch registered right after submit
        // still observes the start.
        assert_eq!(*seen.borrow(), vec![JobState::Running, JobState::Completed]);

        // Register before start: job queued behind another.
        let (mut sim, c) = idle_cluster(8);
        let seen = Rc::new(RefCell::new(vec![]));
        c.submit(&mut sim, JobRequest::background(8, d(60.0), d(60.0)));
        let id = c.submit(&mut sim, JobRequest::background(8, d(10.0), d(10.0)));
        let s2 = seen.clone();
        c.watch(id, move |_sim, st| s2.borrow_mut().push(st));
        sim.run_to_completion();
        assert_eq!(*seen.borrow(), vec![JobState::Running, JobState::Completed]);
    }

    #[test]
    fn watcher_sees_cancellation() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let (mut sim, c) = idle_cluster(8);
        let seen = Rc::new(RefCell::new(vec![]));
        let id = c.submit(&mut sim, JobRequest::background(8, d(1000.0), d(1000.0)));
        let s2 = seen.clone();
        c.watch(id, move |_sim, st| s2.borrow_mut().push(st));
        let c2 = c.clone();
        sim.schedule_at(SimTime::from_secs(5.0), move |sim| {
            c2.cancel(sim, id);
        });
        sim.run_to_completion();
        assert_eq!(*seen.borrow(), vec![JobState::Running, JobState::Cancelled]);
    }

    #[test]
    fn watcher_can_chain_submissions() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let (mut sim, c) = idle_cluster(8);
        let chained: Rc<RefCell<Option<JobId>>> = Rc::new(RefCell::new(None));
        let id = c.submit(&mut sim, JobRequest::background(8, d(30.0), d(30.0)));
        let c2 = c.clone();
        let ch = chained.clone();
        c.watch(id, move |sim, st| {
            if st == JobState::Completed {
                let next = c2.submit(sim, JobRequest::background(4, d(10.0), d(10.0)));
                *ch.borrow_mut() = Some(next);
            }
        });
        sim.run_to_completion();
        let next = chained.borrow().expect("chained job submitted");
        assert_eq!(c.job_state(next), Some(JobState::Completed));
        assert_eq!(sim.now().as_secs(), 40.0);
    }

    #[test]
    fn trace_replay_drives_the_machine() {
        use aimes_workload::BackgroundJob;
        let (mut sim, c) = idle_cluster(16);
        let jobs = vec![
            BackgroundJob {
                arrival: SimTime::from_secs(10.0),
                cores: 16,
                runtime: d(100.0),
                walltime_request: d(120.0),
            },
            BackgroundJob {
                arrival: SimTime::from_secs(20.0),
                cores: 8,
                runtime: d(50.0),
                walltime_request: d(60.0),
            },
            BackgroundJob {
                arrival: SimTime::from_secs(0.0),
                cores: 64, // wider than the machine: skipped
                runtime: d(50.0),
                walltime_request: d(60.0),
            },
        ];
        assert_eq!(c.install_trace(&mut sim, &jobs), 2);
        sim.run_to_completion();
        // Job 1 runs 10..110; job 2 queues behind it, runs 110..160.
        let j0 = c.job(JobId(0)).unwrap();
        let j1 = c.job(JobId(1)).unwrap();
        assert_eq!(j0.start_time.unwrap().as_secs(), 10.0);
        assert_eq!(j1.start_time.unwrap().as_secs(), 110.0);
        assert_eq!(j1.state, JobState::Completed);
    }

    #[test]
    fn swf_roundtrip_through_cluster_replay() {
        use aimes_workload::{from_swf, to_swf, BackgroundWorkload, WorkloadConfig};
        // Generate a synthetic stream, export to SWF, re-import, replay.
        let mut g = BackgroundWorkload::new(
            WorkloadConfig::production_like(),
            128,
            aimes_sim::SimRng::new(8),
        );
        let jobs = g.generate_until(SimTime::from_secs(6.0 * 3600.0));
        let reparsed = from_swf(&to_swf(&jobs, "sim")).unwrap();
        let (mut sim, c) = idle_cluster(128);
        let n = c.install_trace(&mut sim, &reparsed);
        assert!(n > 0);
        sim.run_to_completion();
        let m = c.metrics(sim.now());
        assert_eq!(m.queued_jobs, 0);
        assert_eq!(m.free_cores, 128);
        assert!(m.utilization > 0.0);
    }

    #[test]
    fn outage_kills_running_and_pauses_dispatch() {
        let (mut sim, c) = idle_cluster(64);
        let victim = c.submit(&mut sim, JobRequest::background(8, d(500.0), d(600.0)));
        let queued = c.submit(&mut sim, JobRequest::background(64, d(50.0), d(100.0)));
        sim.schedule_at(SimTime::from_secs(100.0), |_| {});
        sim.run_until(SimTime::from_secs(100.0));
        assert_eq!(c.job_state(victim), Some(JobState::Running));
        let seen = Rc::new(RefCell::new(None));
        let slot = Rc::clone(&seen);
        c.watch(victim, move |_sim, s| *slot.borrow_mut() = Some(s));
        c.inject_outage(&mut sim, d(300.0), true);
        // The kill is synchronous: state, watcher, and accounting all see it.
        assert_eq!(c.job_state(victim), Some(JobState::Killed));
        assert_eq!(*seen.borrow(), Some(JobState::Killed));
        assert!(c.is_down(sim.now()));
        sim.run_to_completion();
        // The queued job waited out the window and the victim's accounting
        // stops at the kill instant.
        assert_eq!(c.job(victim).unwrap().end_time.unwrap().as_secs(), 100.0);
        let jq = c.job(queued).unwrap();
        assert_eq!(jq.start_time.unwrap().as_secs(), 400.0);
        assert_eq!(jq.state, JobState::Completed);
        assert!(!c.is_down(sim.now()));
    }

    #[test]
    fn drain_lets_running_finish_but_delays_starts() {
        let (mut sim, c) = idle_cluster(10);
        let running = c.submit(&mut sim, JobRequest::background(8, d(200.0), d(300.0)));
        sim.schedule_at(SimTime::from_secs(50.0), |_| {});
        sim.run_until(SimTime::from_secs(50.0));
        c.inject_outage(&mut sim, d(400.0), false);
        let late = c.submit(&mut sim, JobRequest::background(4, d(20.0), d(30.0)));
        sim.run_to_completion();
        // Running job survives the drain; the new submission waits for the
        // window's end even though cores were free the whole time.
        let jr = c.job(running).unwrap();
        assert_eq!(jr.state, JobState::Completed);
        assert_eq!(jr.end_time.unwrap().as_secs(), 200.0);
        assert_eq!(c.job(late).unwrap().start_time.unwrap().as_secs(), 450.0);
    }

    #[test]
    fn decommission_kills_running_and_queued_for_good() {
        let (mut sim, c) = idle_cluster(16);
        let running = c.submit(&mut sim, JobRequest::background(8, d(500.0), d(600.0)));
        let queued = c.submit(&mut sim, JobRequest::background(16, d(50.0), d(100.0)));
        sim.schedule_at(SimTime::from_secs(100.0), |_| {});
        sim.run_until(SimTime::from_secs(100.0));
        let seen = Rc::new(RefCell::new(None));
        let slot = Rc::clone(&seen);
        c.watch(queued, move |_sim, s| *slot.borrow_mut() = Some(s));
        c.decommission(&mut sim);
        // Both jobs die at the decommission instant; the queued job's
        // watcher hears about it.
        assert_eq!(c.job_state(running), Some(JobState::Killed));
        assert_eq!(c.job_state(queued), Some(JobState::Killed));
        assert_eq!(*seen.borrow(), Some(JobState::Killed));
        assert_eq!(c.job(queued).unwrap().end_time.unwrap().as_secs(), 100.0);
        // The machine never comes back: a late submission never starts.
        let late = c.submit(&mut sim, JobRequest::background(4, d(10.0), d(20.0)));
        sim.run_to_completion();
        assert_eq!(c.job_state(late), Some(JobState::Queued));
        assert!(c.is_down(sim.now()));
    }

    #[test]
    fn outage_after_decommission_is_a_noop() {
        // A transient outage on a decommissioned machine must not schedule
        // the end-of-window wake-up at t = ∞ — stepping to it would pin
        // the clock at infinity.
        let (mut sim, c) = idle_cluster(16);
        c.decommission(&mut sim);
        c.inject_outage(&mut sim, d(300.0), true);
        sim.run_to_completion();
        assert!(
            sim.now().as_secs().is_finite(),
            "clock ran to {:?}",
            sim.now()
        );
        assert!(c.is_down(sim.now()));
    }

    #[test]
    fn overlapping_outage_windows_extend() {
        let (mut sim, c) = idle_cluster(16);
        c.inject_outage(&mut sim, d(100.0), true);
        sim.schedule_at(SimTime::from_secs(60.0), |_| {});
        sim.run_until(SimTime::from_secs(60.0));
        c.inject_outage(&mut sim, d(100.0), true);
        let job = c.submit(&mut sim, JobRequest::background(4, d(10.0), d(20.0)));
        sim.run_to_completion();
        assert_eq!(c.job(job).unwrap().start_time.unwrap().as_secs(), 160.0);
    }

    #[test]
    fn deterministic_background_given_seed() {
        let run = |seed: u64| {
            let mut cfg = ClusterConfig::test("det", 256);
            cfg.workload = Some(WorkloadConfig::production_like());
            let mut sim = Simulation::new(seed);
            let c = Cluster::new(cfg);
            c.install(&mut sim);
            sim.run_until(SimTime::from_secs(24.0 * 3600.0));
            let m = c.metrics(sim.now());
            (m.queued_jobs, m.free_cores, sim.events_processed())
        };
        assert_eq!(run(5), run(5));
    }
}
