//! Batch scheduling policies.
//!
//! Production HPC schedulers are overwhelmingly FCFS-with-backfill; the
//! paper's resources ran variants of EASY backfill, and the unpredictable
//! interaction between queue state, walltime requests, and backfill holes
//! is what makes Tw "notoriously unpredictable" (§IV-B, refs \[24\]\[25\]).
//! Both policies here work purely on *requested* walltimes — actual
//! runtimes are invisible to them, as in reality.

use crate::job::JobId;
use crate::profile::AvailabilityProfile;
use aimes_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which policy a cluster runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Strict first-come-first-served: nothing may overtake the queue head.
    Fcfs,
    /// EASY backfill: the queue head gets a reservation at the earliest
    /// feasible time; later jobs may start now if they cannot delay it.
    EasyBackfill,
}

/// Scheduler's view of a queued job.
#[derive(Clone, Copy, Debug)]
pub struct QueuedJobView {
    pub id: JobId,
    pub cores: u32,
    pub walltime: SimDuration,
}

/// Scheduler's view of a running job: when its cores come back under the
/// conservative walltime assumption.
#[derive(Clone, Copy, Debug)]
pub struct RunningJobView {
    pub cores: u32,
    pub deadline: SimTime,
}

/// Decide which queued jobs start *now*. `queue` is in priority order.
/// Returns ids in start order.
pub fn select_starts(
    policy: SchedulingPolicy,
    now: SimTime,
    free_cores: u32,
    running: &[RunningJobView],
    queue: &[QueuedJobView],
) -> Vec<JobId> {
    match policy {
        SchedulingPolicy::Fcfs => fcfs(free_cores, queue),
        SchedulingPolicy::EasyBackfill => easy_backfill(now, free_cores, running, queue),
    }
}

fn fcfs(mut free: u32, queue: &[QueuedJobView]) -> Vec<JobId> {
    let mut starts = Vec::new();
    for job in queue {
        if job.cores <= free {
            free -= job.cores;
            starts.push(job.id);
        } else {
            break; // strict: no overtaking
        }
    }
    starts
}

fn easy_backfill(
    now: SimTime,
    free: u32,
    running: &[RunningJobView],
    queue: &[QueuedJobView],
) -> Vec<JobId> {
    let releases: Vec<(SimTime, u32)> = running.iter().map(|r| (r.deadline, r.cores)).collect();
    let mut profile = AvailabilityProfile::new(now, free, &releases);
    let mut starts = Vec::new();
    let mut rest = queue;

    // Phase 1: start the queue head while it fits right now.
    while let Some((head, tail)) = rest.split_first() {
        if profile.min_free_over(now, head.walltime) >= head.cores {
            profile.reserve(now, head.walltime, head.cores);
            starts.push(head.id);
            rest = tail;
        } else {
            break;
        }
    }

    // Phase 2: reserve the blocked head at its earliest feasible ("shadow")
    // time, then backfill any later job that can run now without touching
    // that reservation.
    if let Some((head, tail)) = rest.split_first() {
        if let Some(shadow) = profile.earliest_fit(head.cores, head.walltime, now) {
            profile.reserve(shadow, head.walltime, head.cores);
        }
        // If even the empty machine can't fit the head (earliest_fit None),
        // it sits in the queue forever; the cluster rejects such jobs at
        // submit time, so this branch is defensive.
        //
        // `free_now` bounds min_free_over(now, ·) from above: the head's
        // shadow is strictly after `now` (otherwise phase 1 would have
        // started it), so only the backfill reservations — all at `now` —
        // lower free cores at `now`. Candidates wider than free_now can
        // therefore skip the O(segments) window scan, and once free_now
        // reaches zero no further candidate can start.
        let mut free_now = profile.free_at(now);
        for job in tail {
            if free_now == 0 {
                break;
            }
            if job.cores > free_now {
                continue;
            }
            if profile.min_free_over(now, job.walltime) >= job.cores {
                profile.reserve(now, job.walltime, job.cores);
                free_now -= job.cores;
                starts.push(job.id);
            }
        }
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }
    fn q(id: u64, cores: u32, wall: f64) -> QueuedJobView {
        QueuedJobView {
            id: JobId(id),
            cores,
            walltime: d(wall),
        }
    }
    fn r(cores: u32, deadline: f64) -> RunningJobView {
        RunningJobView {
            cores,
            deadline: t(deadline),
        }
    }

    #[test]
    fn fcfs_starts_prefix_only() {
        let queue = [q(1, 4, 10.0), q(2, 8, 10.0), q(3, 1, 10.0)];
        // 6 free: job 1 fits, job 2 doesn't; job 3 must NOT overtake.
        let starts = select_starts(SchedulingPolicy::Fcfs, t(0.0), 6, &[], &queue);
        assert_eq!(starts, vec![JobId(1)]);
    }

    #[test]
    fn fcfs_starts_all_when_room() {
        let queue = [q(1, 2, 10.0), q(2, 2, 10.0)];
        let starts = select_starts(SchedulingPolicy::Fcfs, t(0.0), 8, &[], &queue);
        assert_eq!(starts, vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn backfill_lets_small_short_job_through() {
        // 6 free now; 4 release at t=100. Head needs 10 cores → shadow 100.
        // Job 2 (2 cores, 50 s) ends at 50 < 100: backfills.
        let running = [r(4, 100.0)];
        let queue = [q(1, 10, 1000.0), q(2, 2, 50.0)];
        let starts = select_starts(SchedulingPolicy::EasyBackfill, t(0.0), 6, &running, &queue);
        assert_eq!(starts, vec![JobId(2)]);
    }

    #[test]
    fn backfill_never_delays_head_reservation() {
        // 6 free now; 4 release at t=100; head needs 10 → shadow t=100.
        // Job 2 (6 cores, 200 s) would still hold 6 cores at t=100, leaving
        // only 4 for the head → must NOT backfill.
        let running = [r(4, 100.0)];
        let queue = [q(1, 10, 1000.0), q(2, 6, 200.0)];
        let starts = select_starts(SchedulingPolicy::EasyBackfill, t(0.0), 6, &running, &queue);
        assert!(starts.is_empty());
    }

    #[test]
    fn backfill_on_spare_cores_during_shadow() {
        // 8 free now; 4 release at t=100. Head needs 10 → shadow t=100,
        // using 10 of the 12 available then. Job 2 (2 cores, long) uses
        // cores the head never needs → backfills even though it outlives
        // the shadow time.
        let running = [r(4, 100.0)];
        let queue = [q(1, 10, 1000.0), q(2, 2, 10_000.0)];
        let starts = select_starts(SchedulingPolicy::EasyBackfill, t(0.0), 8, &running, &queue);
        assert_eq!(starts, vec![JobId(2)]);
    }

    #[test]
    fn backfill_considers_all_later_jobs() {
        let running = [r(4, 100.0)];
        let queue = [
            q(1, 10, 1000.0), // blocked head
            q(2, 6, 200.0),   // would delay head
            q(3, 2, 50.0),    // fits before shadow
            q(4, 2, 50.0),    // also fits
            q(5, 4, 50.0),    // only 2 cores left now → no
        ];
        let starts = select_starts(SchedulingPolicy::EasyBackfill, t(0.0), 6, &running, &queue);
        assert_eq!(starts, vec![JobId(3), JobId(4)]);
    }

    #[test]
    fn head_starts_immediately_when_it_fits() {
        let queue = [q(1, 4, 10.0), q(2, 4, 10.0), q(3, 4, 10.0)];
        let starts = select_starts(SchedulingPolicy::EasyBackfill, t(0.0), 8, &[], &queue);
        assert_eq!(starts, vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn empty_queue_no_starts() {
        for p in [SchedulingPolicy::Fcfs, SchedulingPolicy::EasyBackfill] {
            assert!(select_starts(p, t(0.0), 100, &[], &[]).is_empty());
        }
    }

    #[test]
    fn zero_free_cores_no_starts() {
        let queue = [q(1, 1, 10.0)];
        let running = [r(8, 50.0)];
        for p in [SchedulingPolicy::Fcfs, SchedulingPolicy::EasyBackfill] {
            assert!(select_starts(p, t(0.0), 0, &running, &queue).is_empty());
        }
    }

    /// Reference model for the EASY invariant: simulate the head's shadow
    /// time with and without the backfilled jobs; it must not move later.
    fn shadow_time(
        now: SimTime,
        free: u32,
        running: &[RunningJobView],
        extra: &[(u32, SimDuration)],
        head: &QueuedJobView,
    ) -> Option<SimTime> {
        let mut rel: Vec<(SimTime, u32)> = running.iter().map(|r| (r.deadline, r.cores)).collect();
        let mut free = free;
        for (c, w) in extra {
            // Each backfilled job consumes free cores now, returns at now+w.
            assert!(free >= *c);
            free -= c;
            rel.push((now + *w, *c));
        }
        let p = AvailabilityProfile::new(now, free, &rel);
        p.earliest_fit(head.cores, head.walltime, now)
    }

    proptest! {
        /// EASY safety: backfilling never delays the queue head beyond the
        /// shadow time it would have had with no backfilling at all.
        #[test]
        fn prop_backfill_preserves_head_shadow(
            free in 0u32..32,
            running in proptest::collection::vec((1u32..16, 1.0f64..500.0), 0..8),
            jobs in proptest::collection::vec((1u32..24, 1.0f64..400.0), 1..10),
        ) {
            let now = t(0.0);
            let running: Vec<RunningJobView> =
                running.iter().map(|(c, dl)| r(*c, *dl)).collect();
            let queue: Vec<QueuedJobView> = jobs
                .iter()
                .enumerate()
                .map(|(i, (c, w))| q(i as u64, *c, *w))
                .collect();
            let starts = select_starts(
                SchedulingPolicy::EasyBackfill, now, free, &running, &queue);
            // Identify the first *non-started* job: the effective head.
            let started: std::collections::HashSet<JobId> =
                starts.iter().copied().collect();
            let head = queue.iter().find(|j| !started.contains(&j.id));
            let Some(head) = head else { return Ok(()); };
            // Jobs started from the prefix before the head are legitimate
            // FCFS starts; jobs after it are backfill. Compare the head's
            // shadow with only-prefix starts vs all starts.
            let head_pos = queue.iter().position(|j| j.id == head.id).unwrap();
            let prefix: Vec<(u32, SimDuration)> = queue[..head_pos]
                .iter()
                .filter(|j| started.contains(&j.id))
                .map(|j| (j.cores, j.walltime))
                .collect();
            let all: Vec<(u32, SimDuration)> = queue
                .iter()
                .filter(|j| started.contains(&j.id))
                .map(|j| (j.cores, j.walltime))
                .collect();
            let shadow_without = shadow_time(now, free, &running, &prefix, head);
            let shadow_with = shadow_time(now, free, &running, &all, head);
            match (shadow_without, shadow_with) {
                (Some(a), Some(b)) => prop_assert!(
                    b <= a,
                    "backfill delayed head: {a:?} -> {b:?}"
                ),
                (None, _) => {} // head can never fit (oversized) — cluster rejects these
                (Some(_), None) => prop_assert!(false, "backfill made head infeasible"),
            }
        }

        /// Started jobs always fit within currently free cores.
        #[test]
        fn prop_starts_fit_in_free_cores(
            free in 0u32..32,
            jobs in proptest::collection::vec((1u32..24, 1.0f64..400.0), 1..10),
        ) {
            let queue: Vec<QueuedJobView> = jobs
                .iter()
                .enumerate()
                .map(|(i, (c, w))| q(i as u64, *c, *w))
                .collect();
            for p in [SchedulingPolicy::Fcfs, SchedulingPolicy::EasyBackfill] {
                let starts = select_starts(p, t(0.0), free, &[], &queue);
                let used: u32 = queue
                    .iter()
                    .filter(|j| starts.contains(&j.id))
                    .map(|j| j.cores)
                    .sum();
                prop_assert!(used <= free);
            }
        }
    }
}
