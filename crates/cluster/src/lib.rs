//! # aimes-cluster — HPC batch-system simulator
//!
//! The paper's experiments ran pilots through the batch queues of four XSEDE
//! resources and one NERSC resource; the dominant TTC component (Tw) is the
//! pilots' queue wait, which is "determined by the resource load, the length
//! of its queue, and the policies regulating priorities among jobs" and is
//! "outside user and middleware control" (§IV-B). This crate reproduces
//! that machinery:
//!
//! * [`job`] — batch-job lifecycle (queued → running → completed/killed).
//! * [`profile`] — core-availability profiles over future time, the shared
//!   engine behind EASY-backfill reservations and bundle-level queue-wait
//!   prediction.
//! * [`policy`] — scheduling policies: FCFS and EASY backfill (the
//!   production standard; Tsafrir et al. \[25\] in the paper).
//! * [`cluster`] — the simulated resource: submission, dispatch, walltime
//!   enforcement, cancellation, background-load feeding, and the metrics
//!   that the Bundle abstraction queries.
//! * [`catalog`] — the five paper resources with heterogeneous sizes,
//!   loads, policies, and submission latencies.
//!
//! Scheduling granularity is the core (space-sharing), matching how the
//! paper counts pilot sizes; node-packing effects are outside the paper's
//! scope and are absorbed into the background-load calibration.

pub mod catalog;
pub mod cluster;
pub mod job;
pub mod policy;
pub mod profile;

pub use catalog::{paper_testbed, testbed_resource, ResourceSpec};
pub use cluster::{Cluster, ClusterConfig, ClusterMetrics, QueueConfig, QueueSnapshot};
pub use job::{Job, JobId, JobOwner, JobRequest, JobState};
pub use policy::SchedulingPolicy;
pub use profile::AvailabilityProfile;
