//! Dynamic (adaptive) execution — the paper's §V future work: "we will
//! also study dynamic execution where application strategies change during
//! execution to maintain the coupling between dynamic workloads and
//! dynamic resources."
//!
//! The adaptive runner starts with a base late-binding strategy and
//! *revises it while it runs*: if no pilot has become active within a
//! patience window, it consults the bundle again (with information from
//! `now`, not from submission time) and submits reinforcement pilots on
//! the best currently-unused resources. Late binding makes this seamless —
//! queued units simply flow to whichever pilot activates first, original
//! or reinforcement.

use crate::middleware::RunOptions;
use crate::ttc::{decompose, TtcBreakdown};
use aimes_bundle::{Bundle, QueryMode};
use aimes_cluster::{Cluster, ClusterConfig};
use aimes_pilot::{PilotDescription, PilotManager, PilotState, UnitManager};
use aimes_saga::Session;
use aimes_sim::{ManagerPhase, SimDuration, SimTime, Simulation, TraceKind, Tracer};
use aimes_skeleton::{SkeletonApp, SkeletonConfig};
use aimes_strategy::{ExecutionManager, ExecutionStrategy};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// Adaptation policy.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// The initial strategy (must be late binding for reinforcements to
    /// be useful; asserted).
    pub base: ExecutionStrategy,
    /// How long to wait for the first activation before reinforcing.
    pub patience: SimDuration,
    /// Pilots added per reinforcement round.
    pub reinforce_by: u32,
    /// Maximum reinforcement rounds.
    pub max_rounds: u32,
}

impl AdaptiveConfig {
    /// A sensible default: start with `k` pilots, after 15 minutes of no
    /// activation add one pilot per round, up to two rounds.
    pub fn patient(base: ExecutionStrategy) -> Self {
        AdaptiveConfig {
            base,
            patience: SimDuration::from_mins(15.0),
            reinforce_by: 1,
            max_rounds: 2,
        }
    }
}

/// Outcome of an adaptive run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdaptiveRunResult {
    pub breakdown: TtcBreakdown,
    pub initial_resources: Vec<String>,
    pub reinforcement_resources: Vec<String>,
    pub reinforcement_rounds: u32,
    pub units_done: usize,
    pub units_failed: usize,
}

/// Execute with in-flight strategy revision.
pub fn run_adaptive(
    resources: &[ClusterConfig],
    app_config: &SkeletonConfig,
    config: &AdaptiveConfig,
    options: &RunOptions,
) -> Result<AdaptiveRunResult, String> {
    assert_eq!(
        config.base.binding,
        aimes_pilot::Binding::Late,
        "adaptive reinforcement requires late binding"
    );
    options
        .info
        .validate()
        .map_err(|e| format!("invalid info config: {e}"))?;
    let tracer = if options.trace {
        Tracer::new()
    } else {
        Tracer::disabled()
    };
    let mut sim = Simulation::with_tracer(options.seed, tracer);

    let mut session = Session::new();
    // The patience check re-ranks with *current* information, so its
    // queries flow through the same information plane (hot pool,
    // staleness ladder) as the initial derivation.
    let bundle = Rc::new(RefCell::new(Bundle::with_info_config(options.info.clone())));
    for cfg in resources {
        let cluster = Cluster::new(cfg.clone());
        cluster.install(&mut sim);
        session.add_resource(&sim, cluster.clone());
        bundle.borrow_mut().add(cluster);
    }
    let session = Rc::new(session);

    let mut app_rng = sim.fork_rng("skeleton");
    let app = SkeletonApp::generate(app_config, &mut app_rng)?;
    let n_tasks = app.tasks().len() as u32;

    sim.schedule_at(options.submit_at, |_| {});
    sim.run_until(options.submit_at);
    let submitted = sim.now();

    let em = ExecutionManager::default();
    let mut selection_rng = sim.fork_rng("resource-selection");
    let plan = em.derive_plan_with_rng(
        submitted,
        &app,
        &mut bundle.borrow_mut(),
        &config.base,
        &mut selection_rng,
    )?;

    let pm = PilotManager::new(session);
    let um = UnitManager::new(pm.clone(), plan.um_config.clone());
    let finished: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    {
        let pm2 = pm.clone();
        let fin = finished.clone();
        um.on_all_done(move |sim| {
            *fin.borrow_mut() = Some(sim.now());
            pm2.cancel_all(sim);
        });
    }
    pm.submit(&mut sim, plan.pilots.clone());
    um.submit_units(&mut sim, app.tasks());

    // The adaptation loop: periodic patience checks.
    let reinforcements: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(vec![]));
    let rounds: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
    schedule_patience_check(
        &mut sim,
        pm.clone(),
        bundle.clone(),
        config.clone(),
        plan.pilots[0].cores,
        plan.pilots[0].walltime,
        reinforcements.clone(),
        rounds.clone(),
    );

    let deadline = submitted + options.deadline;
    while finished.borrow().is_none() {
        if sim.now() > deadline {
            return Err(format!(
                "adaptive run missed its deadline ({} tasks, stats {:?})",
                n_tasks,
                um.stats()
            ));
        }
        if !sim.step() {
            break;
        }
    }
    let finished_at = finished
        .borrow()
        .ok_or_else(|| format!("drained before completion ({:?})", um.stats()))?;

    let stats = um.stats();
    let breakdown = decompose(&um.units(), &pm.pilots(), submitted, finished_at);
    let reinforcement_resources = reinforcements.borrow().clone();
    let reinforcement_rounds = *rounds.borrow();
    Ok(AdaptiveRunResult {
        breakdown,
        initial_resources: plan.resources,
        reinforcement_resources,
        reinforcement_rounds,
        units_done: stats.done,
        units_failed: stats.failed,
    })
}

#[allow(clippy::too_many_arguments)]
fn schedule_patience_check(
    sim: &mut Simulation,
    pm: PilotManager,
    bundle: Rc<RefCell<Bundle>>,
    config: AdaptiveConfig,
    cores: u32,
    walltime: SimDuration,
    reinforcements: Rc<RefCell<Vec<String>>>,
    rounds: Rc<RefCell<u32>>,
) {
    let patience = config.patience;
    sim.schedule_in(patience, move |sim| {
        let pilots = pm.pilots();
        let any_active = pilots
            .iter()
            .any(|p| p.state == PilotState::Active || p.time_of(PilotState::Active).is_some());
        let all_terminal = pilots.iter().all(|p| p.state.is_terminal());
        if any_active || all_terminal {
            return; // activation achieved (or run already over): stop adapting
        }
        if *rounds.borrow() >= config.max_rounds {
            return;
        }
        *rounds.borrow_mut() += 1;
        // Re-rank with *current* information, excluding resources that
        // already host one of our pilots.
        let used: std::collections::HashSet<String> = pilots
            .iter()
            .map(|p| p.description.resource.clone())
            .collect();
        let ranked =
            bundle
                .borrow_mut()
                .rank_by_setup_time(sim.now(), cores, walltime, QueryMode::OnDemand);
        let fresh: Vec<String> = ranked
            .into_iter()
            .map(|(name, _)| name)
            .filter(|name| !used.contains(name))
            .take(config.reinforce_by as usize)
            .collect();
        if !fresh.is_empty() {
            sim.tracer().record_with(sim.now(), || {
                (
                    "adaptive".into(),
                    TraceKind::Manager(ManagerPhase::Reinforce),
                    fresh.join(","),
                )
            });
            sim.metrics()
                .inc(|| "middleware.adaptive.reinforcements".into());
            let descs: Vec<PilotDescription> = fresh
                .iter()
                .map(|r| PilotDescription::new(r.clone(), cores, walltime))
                .collect();
            reinforcements.borrow_mut().extend(fresh);
            pm.submit(sim, descs);
        }
        // Keep watching until activation or round budget exhausted.
        schedule_patience_check(
            sim,
            pm,
            bundle,
            config,
            cores,
            walltime,
            reinforcements,
            rounds,
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_cluster::ClusterConfig;
    use aimes_skeleton::{paper_bag, TaskDurationSpec};
    use aimes_strategy::{PilotSizing, ResourceSelection};

    fn opts(seed: u64) -> RunOptions {
        RunOptions {
            seed,
            submit_at: SimTime::from_secs(600.0),
            ..Default::default()
        }
    }

    /// A pool where the initially chosen resource is hopeless (fully
    /// occupied for a long time) but another is idle.
    fn skewed_pool() -> Vec<ClusterConfig> {
        let mut blocked = ClusterConfig::test("blocked", 256);
        // A background config with 100 % long-job load and deep backlog:
        // the queue never advances within the test horizon.
        blocked.workload = Some(aimes_workload::WorkloadConfig {
            target_utilization: 1.2,
            size_dist: aimes_workload::Distribution::Constant { value: 256.0 },
            runtime_dist: aimes_workload::Distribution::Constant { value: 1e6 },
            overestimate_dist: aimes_workload::Distribution::Constant { value: 1.0 },
            diurnal_amplitude: 0.0,
        });
        blocked.initial_backlog_factor = 3.0;
        vec![blocked, ClusterConfig::test("open", 256)]
    }

    fn pinned_strategy(resource: &str) -> ExecutionStrategy {
        let mut s = ExecutionStrategy::paper_late(2);
        s.pilot_count = 1;
        s.sizing = PilotSizing::Fixed(16);
        s.selection = ResourceSelection::Fixed(vec![resource.to_string()]);
        s
    }

    #[test]
    fn reinforcement_rescues_a_stuck_run() {
        let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
        let config = AdaptiveConfig {
            base: pinned_strategy("blocked"),
            patience: SimDuration::from_mins(10.0),
            reinforce_by: 1,
            max_rounds: 2,
        };
        let r = run_adaptive(&skewed_pool(), &app, &config, &opts(4)).unwrap();
        assert_eq!(r.units_done, 16);
        assert!(r.reinforcement_rounds >= 1);
        assert!(r.reinforcement_resources.contains(&"open".to_string()));
        // The rescue bounded TTC to roughly patience + execution.
        assert!(
            r.breakdown.ttc.as_secs() < 3600.0,
            "ttc {:?}",
            r.breakdown.ttc
        );
    }

    #[test]
    fn no_reinforcement_when_pilot_activates_quickly() {
        let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
        let config = AdaptiveConfig {
            base: pinned_strategy("open"),
            patience: SimDuration::from_mins(10.0),
            reinforce_by: 1,
            max_rounds: 2,
        };
        let r = run_adaptive(&skewed_pool(), &app, &config, &opts(5)).unwrap();
        assert_eq!(r.units_done, 16);
        assert_eq!(r.reinforcement_rounds, 0);
        assert!(r.reinforcement_resources.is_empty());
    }

    #[test]
    fn rounds_are_bounded() {
        // Both resources hopeless: adaptation must stop at max_rounds and
        // the run must surface an error, not spin.
        let mut pool = skewed_pool();
        pool[1] = pool[0].clone();
        pool[1].name = "blocked2".into();
        let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
        let config = AdaptiveConfig {
            base: pinned_strategy("blocked"),
            patience: SimDuration::from_mins(10.0),
            reinforce_by: 1,
            max_rounds: 3,
        };
        let opts = RunOptions {
            seed: 6,
            submit_at: SimTime::from_secs(600.0),
            deadline: SimDuration::from_hours(6.0),
            ..Default::default()
        };
        let err = run_adaptive(&pool, &app, &config, &opts).unwrap_err();
        assert!(err.contains("deadline") || err.contains("drained"), "{err}");
    }

    #[test]
    fn invalid_info_config_is_rejected_up_front() {
        let app = paper_bag(8, TaskDurationSpec::Uniform15Min);
        let config = AdaptiveConfig::patient(pinned_strategy("open"));
        let mut o = opts(8);
        o.info.hot_pool_k = 0;
        let err = run_adaptive(&skewed_pool(), &app, &config, &o).unwrap_err();
        assert!(err.contains("invalid info config"), "{err}");
    }

    #[test]
    #[should_panic(expected = "late binding")]
    fn early_binding_rejected() {
        let app = paper_bag(8, TaskDurationSpec::Uniform15Min);
        let config = AdaptiveConfig::patient(ExecutionStrategy::paper_early());
        let _ = run_adaptive(&skewed_pool(), &app, &config, &opts(7));
    }
}
