//! The flight recorder: a bounded, always-on ring buffer of the run's
//! most recent events, dumped as a checksummed post-mortem snapshot when
//! something dies.
//!
//! The journal ([`crate::journal`]) is opt-in and complete; the tracer is
//! opt-in and verbose. The flight recorder is neither: it is *always on*,
//! costs one `VecDeque` rotation plus one small string per event, and
//! retains only the last N events — enough to reconstruct the final
//! moments of a failed chaos run without full tracing. On any `RunError`
//! or a detector Declared-Dead verdict the middleware snapshots the ring
//! into a self-verifying text dump.
//!
//! Recording is strictly passive: no simulation events, no RNG draws —
//! an enabled recorder produces bit-identical journals to a disabled
//! one (pinned by the golden-journal tests).
//!
//! Snapshot format (one line per retained event, FNV-1a-64 checksum over
//! the body):
//!
//! ```text
//! # flight-recorder snapshot v1
//! # reason: resource-lost-one
//! # total: 214 dropped: 150 retained: 64
//! 150 9180.000 {"type":"unit_transition",...}
//! ...
//! 213 9600.000 {"type":"detector",...}
//! # checksum: fnv1a64 4f0e6c2a91b7d3e5
//! ```

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use aimes_sim::SimTime;

/// Default ring capacity: enough to hold the tail of a large run while
/// staying cheap to snapshot.
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

/// One retained event: a monotone sequence number, the simulation time,
/// and a one-line description (the journal event's JSON, for events that
/// are journal-shaped).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecorderEvent {
    pub seq: u64,
    pub at_secs: f64,
    pub what: String,
}

/// The bounded ring. Construction validates the capacity (a zero-sized
/// recorder would silently retain nothing — reject it instead).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    next_seq: u64,
    ring: VecDeque<RecorderEvent>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events.
    pub fn new(capacity: usize) -> Result<Self, String> {
        if capacity == 0 {
            return Err("flight-recorder capacity 0: must retain at least one event".into());
        }
        Ok(FlightRecorder {
            capacity,
            next_seq: 0,
            ring: VecDeque::with_capacity(capacity.min(4096)),
        })
    }

    /// Record one event. The description closure runs unconditionally
    /// (the recorder is always on); keep it to one cheap serialization.
    pub fn record_with(&mut self, at: SimTime, what: impl FnOnce() -> String) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(RecorderEvent {
            seq: self.next_seq,
            at_secs: at.as_secs(),
            what: what(),
        });
        self.next_seq += 1;
    }

    /// Total events recorded since construction (including dropped ones).
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Freeze the ring into a checksummed snapshot.
    pub fn snapshot(&self, reason: &str) -> RecorderSnapshot {
        let events: Vec<RecorderEvent> = self.ring.iter().cloned().collect();
        let dropped = self.next_seq - events.len() as u64;
        RecorderSnapshot {
            reason: reason.to_string(),
            total_events: self.next_seq,
            dropped,
            events,
        }
    }
}

/// A frozen, checksummed post-mortem snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecorderSnapshot {
    pub reason: String,
    /// Events recorded over the run's lifetime.
    pub total_events: u64,
    /// Events that fell off the front of the ring.
    pub dropped: u64,
    /// The retained tail, oldest first, contiguous sequence numbers.
    pub events: Vec<RecorderEvent>,
}

/// FNV-1a 64 over a byte string — the same dependency-free digest the
/// golden-journal tests use.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl RecorderSnapshot {
    /// The checksummed body: header counts plus one line per event.
    fn body(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# reason: {}\n# total: {} dropped: {} retained: {}\n",
            self.reason,
            self.total_events,
            self.dropped,
            self.events.len()
        ));
        for e in &self.events {
            out.push_str(&format!("{} {:.3} {}\n", e.seq, e.at_secs, e.what));
        }
        out
    }

    /// The snapshot's checksum (FNV-1a-64 over the body), as hex.
    pub fn checksum(&self) -> String {
        format!("{:016x}", fnv1a64(self.body().as_bytes()))
    }

    /// Serialize to the dump format.
    pub fn to_text(&self) -> String {
        format!(
            "# flight-recorder snapshot v1\n{}# checksum: fnv1a64 {}\n",
            self.body(),
            self.checksum()
        )
    }

    /// Parse a dump and verify its checksum and internal consistency.
    pub fn from_text(text: &str) -> Result<RecorderSnapshot, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("# flight-recorder snapshot v1") => {}
            other => return Err(format!("bad snapshot header: {other:?}")),
        }
        let reason = lines
            .next()
            .and_then(|l| l.strip_prefix("# reason: "))
            .ok_or("missing reason line")?
            .to_string();
        let counts = lines
            .next()
            .and_then(|l| l.strip_prefix("# total: "))
            .ok_or("missing counts line")?;
        let parts: Vec<&str> = counts.split_whitespace().collect();
        // "{total} dropped: {dropped} retained: {retained}"
        if parts.len() != 5 || parts[1] != "dropped:" || parts[3] != "retained:" {
            return Err(format!("malformed counts line `{counts}`"));
        }
        let total_events: u64 = parts[0].parse().map_err(|_| "bad total".to_string())?;
        let dropped: u64 = parts[2].parse().map_err(|_| "bad dropped".to_string())?;
        let retained: usize = parts[4].parse().map_err(|_| "bad retained".to_string())?;

        let mut events = Vec::with_capacity(retained);
        let mut checksum_line = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("# checksum: fnv1a64 ") {
                checksum_line = Some(rest.trim().to_string());
                break;
            }
            let mut fields = line.splitn(3, ' ');
            let seq: u64 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad event line `{line}`"))?;
            let at_secs: f64 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad event line `{line}`"))?;
            let what = fields.next().unwrap_or("").to_string();
            events.push(RecorderEvent { seq, at_secs, what });
        }
        let snapshot = RecorderSnapshot {
            reason,
            total_events,
            dropped,
            events,
        };
        let declared = checksum_line.ok_or("missing checksum line")?;
        let actual = snapshot.checksum();
        if declared != actual {
            return Err(format!(
                "checksum mismatch: declared {declared}, computed {actual} — dump is torn or tampered"
            ));
        }
        snapshot.verify()?;
        Ok(snapshot)
    }

    /// Internal consistency: counts add up and the retained tail is a
    /// contiguous, monotone run of sequence numbers ending at
    /// `total_events - 1` — i.e. the tail really reconstructs the last N
    /// events.
    pub fn verify(&self) -> Result<(), String> {
        if self.dropped + self.events.len() as u64 != self.total_events {
            return Err(format!(
                "counts disagree: dropped {} + retained {} != total {}",
                self.dropped,
                self.events.len(),
                self.total_events
            ));
        }
        for (i, e) in self.events.iter().enumerate() {
            let expect = self.dropped + i as u64;
            if e.seq != expect {
                return Err(format!(
                    "sequence gap at index {i}: expected {expect}, found {}",
                    e.seq
                ));
            }
        }
        if let Some(last) = self.events.last() {
            if last.seq + 1 != self.total_events {
                return Err("tail does not end at the last recorded event".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(FlightRecorder::new(0).unwrap_err().contains("capacity 0"));
        assert!(FlightRecorder::new(1).is_ok());
    }

    #[test]
    fn ring_retains_only_the_tail() {
        let mut r = FlightRecorder::new(3).unwrap();
        for i in 0..10u64 {
            r.record_with(t(i as f64), || format!("event-{i}"));
        }
        assert_eq!(r.total(), 10);
        assert_eq!(r.len(), 3);
        let snap = r.snapshot("test");
        assert_eq!(snap.dropped, 7);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(snap.events[0].what, "event-7");
        snap.verify().expect("tail is contiguous");
    }

    #[test]
    fn snapshot_roundtrips_with_checksum() {
        let mut r = FlightRecorder::new(4).unwrap();
        for i in 0..6u64 {
            r.record_with(t(100.0 + i as f64), || {
                format!("{{\"type\":\"demo\",\"i\":{i}}}")
            });
        }
        let snap = r.snapshot("resource-lost-one");
        let text = snap.to_text();
        assert!(text.starts_with("# flight-recorder snapshot v1\n"));
        assert!(text.contains("# reason: resource-lost-one"));
        let back = RecorderSnapshot::from_text(&text).expect("parses and verifies");
        assert_eq!(back, snap);
    }

    #[test]
    fn tampered_dumps_are_rejected() {
        let mut r = FlightRecorder::new(4).unwrap();
        r.record_with(t(1.0), || "a".into());
        r.record_with(t(2.0), || "b".into());
        let text = r.snapshot("x").to_text();
        let tampered = text.replace(" b\n", " c\n");
        assert!(
            RecorderSnapshot::from_text(&tampered)
                .unwrap_err()
                .contains("checksum mismatch"),
            "edited payload must fail verification"
        );
        let torn = text
            .lines()
            .filter(|l| !l.starts_with("# checksum"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(RecorderSnapshot::from_text(&torn)
            .unwrap_err()
            .contains("missing checksum"));
    }

    #[test]
    fn empty_recorder_snapshots_cleanly() {
        let r = FlightRecorder::new(8).unwrap();
        assert!(r.is_empty());
        let snap = r.snapshot("early-death");
        assert_eq!(snap.total_events, 0);
        let back = RecorderSnapshot::from_text(&snap.to_text()).unwrap();
        assert_eq!(back.events.len(), 0);
    }
}
