//! The paper's experiment definitions (Table I) and the §V ablations.
//!
//! Table I: four experiments over nine bag-of-tasks sizes (2^3..2^11
//! single-core tasks). Experiments 1–2 use early binding, direct
//! scheduling, one pilot with `#Tasks` cores and walltime `Tx + Ts + Trp`;
//! experiments 3–4 use late binding, backfill scheduling, three pilots
//! with `#Tasks/#Pilots` cores and walltime `(Tx + Ts + Trp) · #Pilots`.
//! Task durations are 15 min constant (1, 3) or truncated Gaussian
//! (2, 4). Resources are drawn from the five-resource pool per run, as in
//! the paper's methodology.

use crate::experiment::ExperimentConfig;
use aimes_cluster::{paper_testbed, ClusterConfig};
use aimes_skeleton::{paper_task_counts, TaskDurationSpec};
use aimes_strategy::{ExecutionStrategy, ResourceSelection};

/// The simulated five-resource pool (4 "XSEDE" + 1 "NERSC" analogs).
pub fn testbed() -> Vec<ClusterConfig> {
    paper_testbed().into_iter().map(|s| s.config).collect()
}

/// The strategy of Table I experiments 1–2, with the paper's
/// random-from-pool resource selection.
pub fn early_strategy() -> ExecutionStrategy {
    let mut s = ExecutionStrategy::paper_early();
    s.selection = ResourceSelection::Random;
    s
}

/// The strategy of Table I experiments 3–4.
pub fn late_strategy(pilots: u32) -> ExecutionStrategy {
    let mut s = ExecutionStrategy::paper_late(pilots);
    s.selection = ResourceSelection::Random;
    s
}

/// Build experiment 1–4 from Table I.
///
/// * `repetitions` — runs per application size;
/// * `base_seed` — experiment family seed;
/// * `sizes` — `None` for the paper's nine sizes.
pub fn experiment(
    id: u32,
    repetitions: usize,
    base_seed: u64,
    sizes: Option<Vec<u32>>,
) -> ExperimentConfig {
    let (strategy, duration_spec, description) = match id {
        1 => (
            early_strategy(),
            TaskDurationSpec::Uniform15Min,
            "Early binding, direct scheduler, 1 pilot (#Tasks cores), 15 min tasks",
        ),
        2 => (
            early_strategy(),
            TaskDurationSpec::Gaussian,
            "Early binding, direct scheduler, 1 pilot (#Tasks cores), Gaussian tasks",
        ),
        3 => (
            late_strategy(3),
            TaskDurationSpec::Uniform15Min,
            "Late binding, backfill scheduler, 3 pilots (#Tasks/3 cores), 15 min tasks",
        ),
        4 => (
            late_strategy(3),
            TaskDurationSpec::Gaussian,
            "Late binding, backfill scheduler, 3 pilots (#Tasks/3 cores), Gaussian tasks",
        ),
        other => panic!("Table I defines experiments 1-4, not {other}"),
    };
    ExperimentConfig {
        id: format!("exp{id}"),
        description: description.to_string(),
        strategy,
        duration_spec,
        task_counts: sizes.unwrap_or_else(paper_task_counts),
        repetitions,
        base_seed,
        resources: testbed(),
        // Submissions spread over half a day of background evolution.
        submit_window_hours: (4.0, 16.0),
    }
}

/// Table I as printable rows: (experiment, #tasks, duration, binding,
/// scheduler, #pilots, pilot size, walltime formula).
pub fn table1_rows() -> Vec<[String; 8]> {
    let mut rows = Vec::new();
    for id in 1..=4u32 {
        let cfg = experiment(id, 1, 0, None);
        let (binding, scheduler, pilots, size, wall) = match id {
            1 | 2 => ("Early", "Direct", "1", "#Tasks", "Tx + Ts + Trp"),
            _ => (
                "Late",
                "Backfill",
                "1-3",
                "#Tasks / #Pilots",
                "(Tx + Ts + Trp) * #Pilots",
            ),
        };
        let duration = match cfg.duration_spec {
            TaskDurationSpec::Uniform15Min => "15 min",
            TaskDurationSpec::Gaussian => "1-30 min (trunc. Gaussian)",
        };
        rows.push([
            format!("{id}"),
            "2^n, n = [3, 11]".to_string(),
            duration.to_string(),
            binding.to_string(),
            scheduler.to_string(),
            pilots.to_string(),
            size.to_string(),
            wall.to_string(),
        ]);
    }
    rows
}

/// §V ablation: late binding with a sweep of pilot counts (where does the
/// min-over-k benefit saturate? The paper: "already overcome by using
/// three resources").
pub fn pilot_count_ablation(
    pilots: u32,
    repetitions: usize,
    base_seed: u64,
    sizes: Option<Vec<u32>>,
) -> ExperimentConfig {
    assert!((1..=5).contains(&pilots));
    let strategy = late_strategy(pilots);
    ExperimentConfig {
        id: format!("ablation-pilots-{pilots}"),
        description: format!("Late binding, backfill, {pilots} pilot(s) — pilot-count sweep"),
        strategy,
        duration_spec: TaskDurationSpec::Uniform15Min,
        task_counts: sizes.unwrap_or_else(|| vec![256, 1024]),
        repetitions,
        base_seed,
        resources: testbed(),
        submit_window_hours: (4.0, 16.0),
    }
}

/// Scheduler ablation: late binding with round-robin instead of backfill.
pub fn scheduler_ablation(
    use_backfill: bool,
    repetitions: usize,
    base_seed: u64,
    sizes: Option<Vec<u32>>,
) -> ExperimentConfig {
    let mut strategy = late_strategy(3);
    if !use_backfill {
        strategy.scheduler = aimes_pilot::UnitScheduler::RoundRobin;
    }
    ExperimentConfig {
        id: format!(
            "ablation-sched-{}",
            if use_backfill { "backfill" } else { "rr" }
        ),
        description: "Late binding scheduler ablation: backfill vs round robin".into(),
        strategy,
        duration_spec: TaskDurationSpec::Gaussian,
        task_counts: sizes.unwrap_or_else(|| vec![256, 1024]),
        repetitions,
        base_seed,
        resources: testbed(),
        submit_window_hours: (4.0, 16.0),
    }
}

/// Resource-selection ablation: bundle-informed ranking vs the paper's
/// random draw (quantifies the value of the Bundle's information).
pub fn selection_ablation(
    ranked: bool,
    repetitions: usize,
    base_seed: u64,
    sizes: Option<Vec<u32>>,
) -> ExperimentConfig {
    let mut strategy = late_strategy(3);
    strategy.selection = if ranked {
        ResourceSelection::RankedByWait
    } else {
        ResourceSelection::Random
    };
    ExperimentConfig {
        id: format!(
            "ablation-select-{}",
            if ranked { "ranked" } else { "random" }
        ),
        description: "Resource selection ablation: bundle-ranked vs random".into(),
        strategy,
        duration_spec: TaskDurationSpec::Uniform15Min,
        task_counts: sizes.unwrap_or_else(|| vec![256, 1024]),
        repetitions,
        base_seed,
        resources: testbed(),
        submit_window_hours: (4.0, 16.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_pilot::{Binding, UnitScheduler};

    #[test]
    fn four_experiments_match_table1() {
        let e1 = experiment(1, 4, 0, None);
        assert_eq!(e1.strategy.binding, Binding::Early);
        assert_eq!(e1.strategy.scheduler, UnitScheduler::Direct);
        assert_eq!(e1.strategy.pilot_count, 1);
        assert_eq!(e1.duration_spec, TaskDurationSpec::Uniform15Min);
        assert_eq!(
            e1.task_counts,
            vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048]
        );

        let e4 = experiment(4, 4, 0, None);
        assert_eq!(e4.strategy.binding, Binding::Late);
        assert_eq!(e4.strategy.scheduler, UnitScheduler::Backfill);
        assert_eq!(e4.strategy.pilot_count, 3);
        assert_eq!(e4.duration_spec, TaskDurationSpec::Gaussian);
    }

    #[test]
    #[should_panic(expected = "experiments 1-4")]
    fn experiment_ids_bounded() {
        experiment(5, 1, 0, None);
    }

    #[test]
    fn testbed_has_five_resources() {
        assert_eq!(testbed().len(), 5);
    }

    #[test]
    fn table1_rows_render() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0][3], "Early");
        assert_eq!(rows[2][4], "Backfill");
    }

    #[test]
    fn ablations_build() {
        assert_eq!(pilot_count_ablation(5, 2, 0, None).strategy.pilot_count, 5);
        assert_eq!(
            scheduler_ablation(false, 2, 0, None).strategy.scheduler,
            UnitScheduler::RoundRobin
        );
        assert_eq!(
            selection_ablation(true, 2, 0, None).strategy.selection,
            ResourceSelection::RankedByWait
        );
    }
}
