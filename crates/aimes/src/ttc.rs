//! TTC decomposition.
//!
//! §IV-A: "We compare the performance of our execution strategies by
//! measuring applications TTC: the sum of a set of possibly overlapping
//! time components." Fig. 3 reports three components:
//!
//! * **Tw** — "time setting up the execution including waiting for the
//!   pilot(s) to become active on the target resource(s)";
//! * **Tx** — "time executing all the application tasks on the available
//!   pilot(s)";
//! * **Ts** — "time staging application data in and out".
//!
//! Components are measured as the *union* of the respective activity
//! intervals (they overlap during execution, hence
//! `TTC < Tw + Tx + Ts` once the pipeline is full — the Fig. 3 caption).

use aimes_pilot::{ComputeUnit, Pilot, PilotState, UnitState};
use aimes_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Measured decomposition of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TtcBreakdown {
    /// Total time to completion: submission → last unit done.
    pub ttc: SimDuration,
    /// Setup + queue wait: submission → first pilot Active.
    pub tw: SimDuration,
    /// Union of task-execution intervals.
    pub tx: SimDuration,
    /// Union of staging intervals (input and output).
    pub ts: SimDuration,
    /// Recovery overhead: union of the windows between a unit's restart
    /// (re-entering PendingExecution after a failure) and the moment it is
    /// executing again — time the run spent healing rather than working.
    pub tr: SimDuration,
    /// Detection latency: union of the windows between a pilot going
    /// silent (its last sign of life) and the detector declaring it dead.
    /// Zero for oracle-driven recovery (the declaration is instantaneous)
    /// and for runs without failures. Filled in by the middleware from the
    /// pilot manager's detection windows; [`decompose`] cannot see them.
    #[serde(default)]
    pub td: SimDuration,
}

/// Total length of the union of `[start, end)` intervals.
pub fn interval_union(mut intervals: Vec<(SimTime, SimTime)>) -> SimDuration {
    intervals.retain(|(a, b)| b > a);
    if intervals.is_empty() {
        return SimDuration::ZERO;
    }
    intervals.sort_by_key(|(a, _)| *a);
    let mut total = SimDuration::ZERO;
    let (mut cur_start, mut cur_end) = intervals[0];
    for (a, b) in intervals.into_iter().skip(1) {
        if a <= cur_end {
            cur_end = cur_end.max(b);
        } else {
            total += cur_end.since(cur_start);
            cur_start = a;
            cur_end = b;
        }
    }
    total += cur_end.since(cur_start);
    total
}

/// Successive state-pair intervals of a unit, restart-aware: pairs each
/// occurrence of `from` with the next transition after it.
fn unit_intervals(unit: &ComputeUnit, from: UnitState) -> Vec<(SimTime, SimTime)> {
    let ts = &unit.timestamps;
    let mut out = Vec::new();
    for (i, (state, time)) in ts.iter().enumerate() {
        if *state == from {
            if let Some((_, end)) = ts.get(i + 1) {
                out.push((*time, *end));
            }
        }
    }
    out
}

/// Recovery windows of one unit: every re-entry to PendingExecution (a
/// restart) opens a window that closes when the unit next executes, or at
/// its terminal transition, or — if neither happened — at `finished`.
fn recovery_intervals(unit: &ComputeUnit, finished: SimTime) -> Vec<(SimTime, SimTime)> {
    let ts = &unit.timestamps;
    let mut out = Vec::new();
    let mut pending_seen = 0u32;
    for (i, (state, time)) in ts.iter().enumerate() {
        if *state == UnitState::PendingExecution {
            pending_seen += 1;
            if pending_seen >= 2 {
                let end = ts[i + 1..]
                    .iter()
                    .find(|(s, _)| *s == UnitState::Executing || s.is_terminal())
                    .map(|(_, t)| *t)
                    .unwrap_or(finished);
                out.push((*time, end));
            }
        }
    }
    out
}

/// Core-hours burned on execution attempts that never delivered: every
/// Executing interval whose successor is not StagingOutput was aborted (a
/// pilot death or an injected unit fault), and its reserved cores were
/// wasted for the interval's length.
pub fn wasted_core_hours(units: &[ComputeUnit]) -> f64 {
    let mut total = 0.0;
    for u in units {
        let ts = &u.timestamps;
        for (i, (state, time)) in ts.iter().enumerate() {
            if *state != UnitState::Executing {
                continue;
            }
            if let Some((next, end)) = ts.get(i + 1) {
                if *next != UnitState::StagingOutput {
                    total += f64::from(u.task.cores) * end.since(*time).as_secs() / 3600.0;
                }
            }
        }
    }
    total
}

/// Split the aborted core-hours ([`wasted_core_hours`]) into truly
/// wasted vs salvaged-by-checkpoint: a completed unit's checkpointed
/// progress was carried forward instead of redone, so that share of its
/// aborted execution time did real work. Units that never completed
/// forfeit their checkpoints — everything aborted counts as wasted.
/// Returns `(wasted, salvaged)`; the pair always sums to
/// `wasted_core_hours` and salvaged is zero when checkpointing is off.
pub fn salvage_split(units: &[ComputeUnit]) -> (f64, f64) {
    let mut wasted = 0.0;
    let mut salvaged = 0.0;
    for u in units {
        let ts = &u.timestamps;
        let mut aborted_secs = 0.0;
        for (i, (state, time)) in ts.iter().enumerate() {
            if *state != UnitState::Executing {
                continue;
            }
            if let Some((next, end)) = ts.get(i + 1) {
                if *next != UnitState::StagingOutput {
                    aborted_secs += end.since(*time).as_secs();
                }
            }
        }
        let salvaged_secs = if u.state == UnitState::Done {
            u.salvaged.as_secs().min(aborted_secs)
        } else {
            0.0
        };
        let cores = f64::from(u.task.cores);
        salvaged += cores * salvaged_secs / 3600.0;
        wasted += cores * (aborted_secs - salvaged_secs) / 3600.0;
    }
    (wasted, salvaged)
}

/// Compute the decomposition for one run.
///
/// * `submitted` — when the middleware began enacting the strategy;
/// * `finished` — when the last unit reached a terminal state.
pub fn decompose(
    units: &[ComputeUnit],
    pilots: &[Pilot],
    submitted: SimTime,
    finished: SimTime,
) -> TtcBreakdown {
    let first_active = pilots
        .iter()
        .filter_map(|p| p.time_of(PilotState::Active))
        .min();
    let tw = match first_active {
        Some(t) => t.saturating_since(submitted),
        None => finished.saturating_since(submitted),
    };
    let mut exec: Vec<(SimTime, SimTime)> = Vec::new();
    let mut staging: Vec<(SimTime, SimTime)> = Vec::new();
    let mut recovery: Vec<(SimTime, SimTime)> = Vec::new();
    for u in units {
        exec.extend(unit_intervals(u, UnitState::Executing));
        staging.extend(unit_intervals(u, UnitState::StagingInput));
        staging.extend(unit_intervals(u, UnitState::StagingOutput));
        recovery.extend(recovery_intervals(u, finished));
    }
    TtcBreakdown {
        ttc: finished.saturating_since(submitted),
        tw,
        tx: interval_union(exec),
        ts: interval_union(staging),
        tr: interval_union(recovery),
        td: SimDuration::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_pilot::{PilotDescription, PilotId, UnitId};
    use aimes_skeleton::{FileSpec, TaskId, TaskSpec};
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn union_of_disjoint() {
        let u = interval_union(vec![(t(0.0), t(10.0)), (t(20.0), t(25.0))]);
        assert_eq!(u, d(15.0));
    }

    #[test]
    fn union_of_overlapping() {
        let u = interval_union(vec![
            (t(0.0), t(10.0)),
            (t(5.0), t(15.0)),
            (t(14.0), t(16.0)),
        ]);
        assert_eq!(u, d(16.0));
    }

    #[test]
    fn union_ignores_empty_and_inverted() {
        let u = interval_union(vec![(t(5.0), t(5.0)), (t(1.0), t(2.0))]);
        assert_eq!(u, d(1.0));
        assert_eq!(interval_union(vec![]), SimDuration::ZERO);
    }

    fn mk_unit(id: u32, events: &[(UnitState, f64)]) -> ComputeUnit {
        let task = TaskSpec {
            id: TaskId(id),
            stage: 0,
            stage_name: "s".into(),
            cores: 1,
            duration: d(900.0),
            inputs: vec![FileSpec {
                name: "in".into(),
                size_mb: 1.0,
            }],
            outputs: vec![FileSpec {
                name: "out".into(),
                size_mb: 0.002,
            }],
            dependencies: vec![],
        };
        // Construct through the public-ish surface: replay transitions.
        let mut unit = ComputeUnit {
            id: UnitId(id),
            task,
            state: events.last().map(|(s, _)| *s).unwrap_or(UnitState::New),
            pilot: Some(PilotId(0)),
            attempts: 1,
            checkpointed: SimDuration::ZERO,
            salvaged: SimDuration::ZERO,
            timestamps: {
                let mut v = vec![(UnitState::New, t(0.0))];
                v.extend(events.iter().map(|(s, tt)| (*s, t(*tt))));
                v
            },
        };
        unit.state = unit.timestamps.last().unwrap().0;
        unit
    }

    fn mk_pilot(active_at: f64) -> Pilot {
        let mut p = Pilot {
            id: PilotId(0),
            description: PilotDescription::new("r", 8, d(3600.0)),
            state: PilotState::Active,
            saga_job: None,
            timestamps: vec![(PilotState::New, t(0.0))],
        };
        p.timestamps.push((PilotState::Active, t(active_at)));
        p
    }

    #[test]
    fn decompose_single_unit_run() {
        let unit = mk_unit(
            0,
            &[
                (UnitState::PendingExecution, 1.0),
                (UnitState::StagingInput, 100.0),
                (UnitState::Executing, 102.0),
                (UnitState::StagingOutput, 1002.0),
                (UnitState::Done, 1003.0),
            ],
        );
        let b = decompose(&[unit], &[mk_pilot(100.0)], t(0.0), t(1003.0));
        assert_eq!(b.ttc, d(1003.0));
        assert_eq!(b.tw, d(100.0));
        assert_eq!(b.tx, d(900.0));
        assert_eq!(b.ts, d(3.0)); // 2 s input + 1 s output
    }

    #[test]
    fn components_overlap_so_sum_exceeds_ttc() {
        // Two units staggered: while one executes another stages.
        let u0 = mk_unit(
            0,
            &[
                (UnitState::PendingExecution, 0.0),
                (UnitState::StagingInput, 10.0),
                (UnitState::Executing, 20.0),
                (UnitState::StagingOutput, 80.0),
                (UnitState::Done, 90.0),
            ],
        );
        let u1 = mk_unit(
            1,
            &[
                (UnitState::PendingExecution, 0.0),
                (UnitState::StagingInput, 20.0),
                (UnitState::Executing, 30.0),
                (UnitState::StagingOutput, 90.0),
                (UnitState::Done, 100.0),
            ],
        );
        let b = decompose(&[u0, u1], &[mk_pilot(10.0)], t(0.0), t(100.0));
        assert_eq!(b.ttc, d(100.0));
        assert_eq!(b.tw, d(10.0));
        assert_eq!(b.tx, d(70.0)); // union of [20,80] and [30,90]
        assert_eq!(b.ts, d(40.0)); // [10,20],[20,30],[80,90],[90,100]
        assert!(b.tw + b.tx + b.ts > b.ttc);
    }

    #[test]
    fn tw_uses_first_active_pilot() {
        let unit = mk_unit(
            0,
            &[
                (UnitState::PendingExecution, 0.0),
                (UnitState::StagingInput, 501.0),
                (UnitState::Executing, 502.0),
                (UnitState::StagingOutput, 503.0),
                (UnitState::Done, 504.0),
            ],
        );
        let pilots = vec![mk_pilot(500.0), mk_pilot(2000.0)];
        let b = decompose(&[unit], &pilots, t(0.0), t(504.0));
        assert_eq!(b.tw, d(500.0));
    }

    #[test]
    fn no_pilot_ever_active_makes_tw_the_whole_run() {
        let mut p = mk_pilot(0.0);
        p.timestamps = vec![(PilotState::New, t(0.0))];
        p.state = PilotState::Failed;
        let b = decompose(&[], &[p], t(0.0), t(300.0));
        assert_eq!(b.tw, d(300.0));
    }

    #[test]
    fn restart_intervals_counted() {
        let unit = mk_unit(
            0,
            &[
                (UnitState::PendingExecution, 0.0),
                (UnitState::StagingInput, 1.0),
                (UnitState::Executing, 2.0),
                // pilot died at 50, restart
                (UnitState::PendingExecution, 50.0),
                (UnitState::StagingInput, 60.0),
                (UnitState::Executing, 61.0),
                (UnitState::StagingOutput, 961.0),
                (UnitState::Done, 962.0),
            ],
        );
        let b = decompose(&[unit], &[mk_pilot(1.0)], t(0.0), t(962.0));
        // Executing: [2,50] (aborted attempt) + [61,961].
        assert_eq!(b.tx, d(948.0));
    }

    #[test]
    fn restart_opens_a_recovery_window() {
        let unit = mk_unit(
            0,
            &[
                (UnitState::PendingExecution, 0.0),
                (UnitState::StagingInput, 1.0),
                (UnitState::Executing, 2.0),
                // pilot died at 50, restart; re-executing at 61
                (UnitState::PendingExecution, 50.0),
                (UnitState::StagingInput, 60.0),
                (UnitState::Executing, 61.0),
                (UnitState::StagingOutput, 961.0),
                (UnitState::Done, 962.0),
            ],
        );
        let b = decompose(
            std::slice::from_ref(&unit),
            &[mk_pilot(1.0)],
            t(0.0),
            t(962.0),
        );
        // Recovery window [50, 61]; the first attempt has none.
        assert_eq!(b.tr, d(11.0));
        // The aborted [2,50] attempt wasted 48 core-seconds (1 core).
        assert!((wasted_core_hours(&[unit]) - 48.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn unhealed_restart_window_runs_to_finish_or_terminal() {
        // Restarted but never re-executed: window closes at `finished`.
        let hung = mk_unit(
            0,
            &[
                (UnitState::PendingExecution, 0.0),
                (UnitState::StagingInput, 1.0),
                (UnitState::Executing, 2.0),
                (UnitState::PendingExecution, 50.0),
            ],
        );
        let b = decompose(&[hung], &[mk_pilot(1.0)], t(0.0), t(200.0));
        assert_eq!(b.tr, d(150.0));
        // Restarted then written off: window closes at the Failed stamp.
        let failed = mk_unit(
            1,
            &[
                (UnitState::PendingExecution, 0.0),
                (UnitState::StagingInput, 1.0),
                (UnitState::Executing, 2.0),
                (UnitState::PendingExecution, 50.0),
                (UnitState::Failed, 80.0),
            ],
        );
        let b = decompose(&[failed], &[mk_pilot(1.0)], t(0.0), t(200.0));
        assert_eq!(b.tr, d(30.0));
    }

    #[test]
    fn clean_run_has_no_recovery_and_no_waste() {
        let unit = mk_unit(
            0,
            &[
                (UnitState::PendingExecution, 1.0),
                (UnitState::StagingInput, 100.0),
                (UnitState::Executing, 102.0),
                (UnitState::StagingOutput, 1002.0),
                (UnitState::Done, 1003.0),
            ],
        );
        let b = decompose(
            std::slice::from_ref(&unit),
            &[mk_pilot(100.0)],
            t(0.0),
            t(1003.0),
        );
        assert_eq!(b.tr, SimDuration::ZERO);
        assert_eq!(wasted_core_hours(&[unit]), 0.0);
    }

    #[test]
    fn salvage_split_partitions_the_aborted_time() {
        // One restart: [2,50] aborted (48 s), second attempt delivers.
        let mut unit = mk_unit(
            0,
            &[
                (UnitState::PendingExecution, 0.0),
                (UnitState::StagingInput, 1.0),
                (UnitState::Executing, 2.0),
                (UnitState::PendingExecution, 50.0),
                (UnitState::StagingInput, 60.0),
                (UnitState::Executing, 61.0),
                (UnitState::StagingOutput, 961.0),
                (UnitState::Done, 962.0),
            ],
        );
        // No checkpointing: the whole aborted interval is wasted.
        let (w, s) = salvage_split(std::slice::from_ref(&unit));
        assert!((w - 48.0 / 3600.0).abs() < 1e-12);
        assert_eq!(s, 0.0);
        // 30 s banked at a checkpoint boundary: that share did real work.
        unit.checkpointed = d(30.0);
        unit.salvaged = d(30.0);
        let (w, s) = salvage_split(std::slice::from_ref(&unit));
        assert!((w - 18.0 / 3600.0).abs() < 1e-12);
        assert!((s - 30.0 / 3600.0).abs() < 1e-12);
        assert!((w + s - wasted_core_hours(&[unit.clone()])).abs() < 1e-12);
        // A unit that never completed forfeits its checkpoints.
        unit.timestamps.truncate(5); // ends at the restart
        unit.state = UnitState::PendingExecution;
        let (w, s) = salvage_split(&[unit]);
        assert!((w - 48.0 / 3600.0).abs() < 1e-12);
        assert_eq!(s, 0.0);
    }

    proptest! {
        /// Union is monotone and bounded by the enclosing span.
        #[test]
        fn prop_union_bounds(
            ivs in proptest::collection::vec((0.0f64..1000.0, 0.0f64..100.0), 1..40),
        ) {
            let intervals: Vec<(SimTime, SimTime)> =
                ivs.iter().map(|(a, w)| (t(*a), t(a + w))).collect();
            let u = interval_union(intervals.clone());
            let longest: f64 = ivs.iter().map(|(_, w)| *w).fold(0.0, f64::max);
            let sum: f64 = ivs.iter().map(|(_, w)| *w).sum();
            let span = ivs
                .iter()
                .map(|(a, w)| a + w)
                .fold(0.0, f64::max)
                - ivs.iter().map(|(a, _)| *a).fold(f64::INFINITY, f64::min);
            prop_assert!(u.as_secs() <= sum + 1e-6);
            prop_assert!(u.as_secs() >= longest - 1e-6);
            prop_assert!(u.as_secs() <= span + 1e-6);
        }
    }
}
