//! Summary statistics for experiment repetitions.

use serde::{Deserialize, Serialize};

/// Summary of a sample of measurements.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub stdev: f64,
    pub min: f64,
    pub max: f64,
    pub median: f64,
    /// Half-width of the 95 % confidence interval of the mean (normal
    /// approximation; the experiment repetitions are independent).
    pub ci95: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let stdev = var.sqrt();
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            stdev,
            min: sorted[0],
            max: sorted[n - 1],
            median,
            ci95: 1.96 * stdev / (n as f64).sqrt(),
        })
    }

    /// Coefficient of variation (stdev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stdev / self.mean
        }
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation
/// between closest ranks (type-7 estimator, the numpy/R default).
/// Returns `None` for an empty sample.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median / tail quantiles in one pass: `(p50, p95, p99)`.
pub fn p50_p95_p99(values: &[f64]) -> Option<(f64, f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
    let pick = |q: f64| {
        let pos = q * (sorted.len() - 1) as f64;
        let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    Some((pick(0.50), pick(0.95), pick(0.99)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[5.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stdev, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        // Sample stdev with Bessel correction: sqrt(32/7).
        assert!((s.stdev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Summary::of(&[0.0, 0.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn percentile_of_empty_is_none() {
        assert!(percentile(&[], 0.5).is_none());
        assert!(p50_p95_p99(&[]).is_none());
    }

    #[test]
    fn percentile_of_single_element_is_that_element() {
        // Every quantile of a one-point sample is the point: pos is always
        // 0 and the lo==hi branch must not index out of bounds.
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            assert_eq!(percentile(&[42.5], q), Some(42.5));
        }
        assert_eq!(p50_p95_p99(&[42.5]), Some((42.5, 42.5, 42.5)));
    }

    #[test]
    fn percentile_two_elements_interpolates() {
        assert_eq!(percentile(&[10.0, 20.0], 0.5), Some(15.0));
        let (p50, p95, p99) = p50_p95_p99(&[10.0, 20.0]).unwrap();
        assert_eq!(p50, 15.0);
        assert!((p95 - 19.5).abs() < 1e-12);
        assert!((p99 - 19.9).abs() < 1e-12);
    }

    #[test]
    fn finite_inputs_give_finite_outputs() {
        // The helpers are documented for NaN-free samples; check the
        // contract's other side — finite in, finite out, even with
        // extreme magnitudes, duplicates, and signed zeros.
        let samples: [&[f64]; 4] = [
            &[f64::MIN, f64::MAX],
            &[-0.0, 0.0, 0.0],
            &[1e-300, 1e300, -1e300],
            &[7.0; 9],
        ];
        for s in samples {
            for q in [0.0, 0.5, 1.0] {
                assert!(percentile(s, q).unwrap().is_finite());
            }
            let sm = Summary::of(s).unwrap();
            assert!(sm.mean.is_finite());
            assert!(sm.median.is_finite());
            assert!(sm.min <= sm.median && sm.median <= sm.max);
        }
    }

    #[test]
    fn percentile_known_uniform() {
        // 0..=100: the q-quantile of this grid IS 100q exactly under the
        // type-7 (linear interpolation) estimator.
        let values: Vec<f64> = (0..=100).map(f64::from).collect();
        assert_eq!(percentile(&values, 0.0), Some(0.0));
        assert_eq!(percentile(&values, 0.50), Some(50.0));
        assert_eq!(percentile(&values, 0.95), Some(95.0));
        assert_eq!(percentile(&values, 0.99), Some(99.0));
        assert_eq!(percentile(&values, 1.0), Some(100.0));
        assert_eq!(p50_p95_p99(&values), Some((50.0, 95.0, 99.0)));
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        // Four points: p50 sits halfway between ranks 1 and 2.
        let values = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&values, 0.5), Some(25.0));
        // p95 of 4 points: pos = 2.85 → 30 + 0.85*10.
        let p95 = percentile(&values, 0.95).unwrap();
        assert!((p95 - 38.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_ignores_input_order() {
        let values = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&values, 0.5), Some(5.0));
    }

    #[test]
    fn percentile_clamps_q() {
        let values = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&values, -0.5), Some(1.0));
        assert_eq!(percentile(&values, 1.5), Some(3.0));
    }

    proptest! {
        #[test]
        fn prop_percentile_within_bounds(
            values in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q in 0.0f64..1.0,
        ) {
            let p = percentile(&values, q).unwrap();
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(min <= p && p <= max);
            // Monotone in q.
            let p2 = percentile(&values, (q + 0.1).min(1.0)).unwrap();
            prop_assert!(p <= p2 + 1e-9);
        }

        #[test]
        fn prop_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&values).unwrap();
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.min <= s.median && s.median <= s.max);
            prop_assert!(s.stdev >= 0.0);
            prop_assert!(s.ci95 >= 0.0);
        }

        #[test]
        fn prop_constant_sample_no_spread(v in -1e6f64..1e6, n in 1usize..50) {
            let s = Summary::of(&vec![v; n]).unwrap();
            // Tolerances are relative: the mean of n ~1e6 values carries
            // accumulated rounding of a few ulps.
            let tol = 1e-9 * v.abs().max(1.0);
            prop_assert!(s.stdev.abs() <= tol);
            prop_assert!((s.mean - v).abs() <= tol);
        }
    }
}
