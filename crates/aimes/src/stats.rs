//! Summary statistics for experiment repetitions.

use serde::{Deserialize, Serialize};

/// Summary of a sample of measurements.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub stdev: f64,
    pub min: f64,
    pub max: f64,
    pub median: f64,
    /// Half-width of the 95 % confidence interval of the mean (normal
    /// approximation; the experiment repetitions are independent).
    pub ci95: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let stdev = var.sqrt();
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            stdev,
            min: sorted[0],
            max: sorted[n - 1],
            median,
            ci95: 1.96 * stdev / (n as f64).sqrt(),
        })
    }

    /// Coefficient of variation (stdev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stdev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[5.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stdev, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        // Sample stdev with Bessel correction: sqrt(32/7).
        assert!((s.stdev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Summary::of(&[0.0, 0.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&values).unwrap();
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.min <= s.median && s.median <= s.max);
            prop_assert!(s.stdev >= 0.0);
            prop_assert!(s.ci95 >= 0.0);
        }

        #[test]
        fn prop_constant_sample_no_spread(v in -1e6f64..1e6, n in 1usize..50) {
            let s = Summary::of(&vec![v; n]).unwrap();
            // Tolerances are relative: the mean of n ~1e6 values carries
            // accumulated rounding of a few ulps.
            let tol = 1e-9 * v.abs().max(1.0);
            prop_assert!(s.stdev.abs() <= tol);
            prop_assert!((s.mean - v).abs() <= tol);
        }
    }
}
