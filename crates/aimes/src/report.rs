//! Rendering of experiment results as the paper's tables and figures.
//!
//! Figures are emitted as markdown tables and CSV series (one column per
//! line in the original figure) so the regenerated data can be compared
//! against the paper point by point.

use crate::experiment::ExperimentResult;
use aimes_sim::MetricsSummary;
use std::fmt::Write as _;

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Figure 2: TTC comparison across experiments, one column per
/// experiment, one row per application size.
pub fn fig2_table(results: &[&ExperimentResult]) -> String {
    assert!(!results.is_empty());
    let mut headers = vec!["#Tasks".to_string()];
    headers.extend(results.iter().map(|r| {
        format!(
            "{} TTC(s) [{} {}]",
            r.id, r.strategy_label, r.duration_label
        )
    }));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let sizes: Vec<u32> = results[0].points.iter().map(|p| p.n_tasks).collect();
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|n| {
            let mut row = vec![n.to_string()];
            for r in results {
                let p = r.points.iter().find(|p| p.n_tasks == *n);
                row.push(match p {
                    Some(p) if p.ttc.n > 0 => format!("{:.0}", p.ttc.mean),
                    _ => "-".to_string(),
                });
            }
            row
        })
        .collect();
    markdown_table(&header_refs, &rows)
}

/// Figure 3 (one panel): TTC, Tw, Tx, Ts per application size for one
/// experiment.
pub fn fig3_table(result: &ExperimentResult) -> String {
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.n_tasks.to_string(),
                format!("{:.0}", p.ttc.mean),
                format!("{:.0}", p.tw.mean),
                format!("{:.0}", p.tx.mean),
                format!("{:.0}", p.ts.mean),
            ]
        })
        .collect();
    format!(
        "{} ({} {})\n{}",
        result.id,
        result.strategy_label,
        result.duration_label,
        markdown_table(&["#Tasks", "TTC(s)", "Tw(s)", "Tx(s)", "Ts(s)"], &rows)
    )
}

/// Figure 4 (one panel): TTC mean ± stdev (the error bars) per size.
pub fn fig4_table(result: &ExperimentResult) -> String {
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.n_tasks.to_string(),
                format!("{:.0}", p.ttc.mean),
                format!("{:.0}", p.ttc.stdev),
                format!("{:.0}", p.ttc.min),
                format!("{:.0}", p.ttc.max),
                format!("{:.2}", p.ttc.cv()),
            ]
        })
        .collect();
    format!(
        "{} ({} {})\n{}",
        result.id,
        result.strategy_label,
        result.duration_label,
        markdown_table(
            &["#Tasks", "TTC mean(s)", "TTC stdev(s)", "min", "max", "CV"],
            &rows
        )
    )
}

/// Recovery summary: one row per run with the self-healing counters and
/// overhead metrics (restarts, replacements, re-plans, recovery TTC
/// component Tr, detection TTC component Td, wasted vs checkpoint-salvaged
/// core-hours, mean
/// time-to-recovery, mean time-to-detection, and the information-plane
/// degradation counters: fallback decisions served below the fresh path
/// and the total staleness behind them).
pub fn recovery_table(runs: &[crate::middleware::RunResult]) -> String {
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.strategy_label.clone(),
                r.n_tasks.to_string(),
                format!("{}/{}", r.units_done, r.n_tasks),
                r.restarts.to_string(),
                r.replacements.to_string(),
                r.replans.to_string(),
                format!("{:.0}", r.breakdown.tr.as_secs()),
                format!("{:.0}", r.breakdown.td.as_secs()),
                format!("{:.2}", r.wasted_core_hours),
                format!("{:.2}", r.salvaged_core_hours),
                format!("{:.0}", r.mean_recovery_secs),
                format!("{:.0}", r.mean_detection_secs),
                r.info_fallbacks.to_string(),
                format!("{:.0}", r.stale_decision_secs),
            ]
        })
        .collect();
    markdown_table(
        &[
            "Strategy",
            "#Tasks",
            "Done",
            "Restarts",
            "Replacements",
            "Replans",
            "Tr(s)",
            "Td(s)",
            "Wasted(ch)",
            "Salvaged(ch)",
            "MeanRec(s)",
            "MeanTd(s)",
            "InfoFB",
            "Stale(s)",
        ],
        &rows,
    )
}

/// Telemetry summary block: three markdown tables (counters, gauge
/// timelines, dwell histograms), metric names sorted — the rendering of
/// [`RunResult::metrics`](crate::middleware::RunResult::metrics).
pub fn metrics_table(summary: &MetricsSummary) -> String {
    let mut out = String::new();
    if summary.is_empty() {
        return "(no metrics recorded)\n".into();
    }
    if !summary.counters.is_empty() {
        let rows: Vec<Vec<String>> = summary
            .counters
            .iter()
            .map(|(name, v)| vec![name.clone(), v.to_string()])
            .collect();
        let _ = writeln!(
            out,
            "#### Counters\n\n{}",
            markdown_table(&["Metric", "Count"], &rows)
        );
    }
    if !summary.gauges.is_empty() {
        let rows: Vec<Vec<String>> = summary
            .gauges
            .iter()
            .map(|(name, g)| {
                vec![
                    name.clone(),
                    g.samples.to_string(),
                    format!("{:.2}", g.min),
                    format!("{:.2}", g.max),
                    format!("{:.2}", g.time_weighted_mean),
                    format!("{:.2}", g.last),
                ]
            })
            .collect();
        let _ = writeln!(
            out,
            "#### Gauge timelines\n\n{}",
            markdown_table(
                &["Metric", "Samples", "Min", "Max", "TW-mean", "Last"],
                &rows
            )
        );
    }
    if !summary.histograms.is_empty() {
        let rows: Vec<Vec<String>> = summary
            .histograms
            .iter()
            .map(|(name, h)| {
                vec![
                    name.clone(),
                    h.count.to_string(),
                    format!("{:.2}", h.mean),
                    format!("{:.2}", h.p50),
                    format!("{:.2}", h.p95),
                    format!("{:.2}", h.p99),
                    format!("{:.2}", h.max),
                ]
            })
            .collect();
        let _ = writeln!(
            out,
            "#### Histograms (seconds)\n\n{}",
            markdown_table(
                &["Metric", "Count", "Mean", "p50", "p95", "p99", "Max"],
                &rows
            )
        );
    }
    out
}

/// Markers assigned to series in order (the paper's four experiments fit).
const MARKERS: [char; 6] = ['1', '2', '3', '4', '5', '6'];

/// Render multiple series as a terminal chart: one column per x position,
/// y scaled linearly or logarithmically. Series are labelled with the
/// markers `1..`, collisions show the *later* series (drawn in order).
pub fn ascii_chart(
    title: &str,
    x_labels: &[String],
    series: &[(&str, Vec<f64>)],
    height: usize,
    log_y: bool,
) -> String {
    assert!(height >= 2, "chart needs at least two rows");
    assert!(!x_labels.is_empty());
    let finite: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .filter(|v| v.is_finite() && (!log_y || *v > 0.0))
        .collect();
    if finite.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), v| {
            (a.min(*v), b.max(*v))
        });
    let (lo, hi) = if (hi - lo).abs() < f64::EPSILON {
        (lo * 0.9, hi * 1.1 + 1.0)
    } else {
        (lo, hi)
    };
    let scale = |v: f64| -> Option<usize> {
        if !v.is_finite() || (log_y && v <= 0.0) {
            return None;
        }
        let t = if log_y {
            (v.ln() - lo.ln()) / (hi.ln() - lo.ln())
        } else {
            (v - lo) / (hi - lo)
        };
        Some(((height - 1) as f64 * t.clamp(0.0, 1.0)).round() as usize)
    };
    // Column position per x index: evenly spaced, 6 chars apart.
    let col_width = 6usize;
    let plot_width = x_labels.len() * col_width;
    let mut grid = vec![vec![' '; plot_width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for (xi, y) in ys.iter().enumerate() {
            if let Some(row) = scale(*y) {
                let col = xi * col_width + col_width / 2;
                grid[height - 1 - row][col] = marker;
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{title}  [{}]",
        if log_y { "log y" } else { "linear y" }
    );
    for (ri, row) in grid.iter().enumerate() {
        let frac = (height - 1 - ri) as f64 / (height - 1) as f64;
        let y_val = if log_y {
            (lo.ln() + frac * (hi.ln() - lo.ln())).exp()
        } else {
            lo + frac * (hi - lo)
        };
        let _ = writeln!(out, "{:>9.0} |{}", y_val, row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(plot_width));
    let mut xrow = format!("{:>10}", "");
    for l in x_labels {
        xrow.push_str(&format!("{l:^col_width$}"));
    }
    let _ = writeln!(out, "{xrow}");
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} = {name}", MARKERS[i % MARKERS.len()]))
        .collect();
    let _ = writeln!(out, "{:>10}{}", "", legend.join("   "));
    out
}

/// Figure 2 as a terminal chart (log-y, like reading the paper's figure).
pub fn fig2_chart(results: &[&ExperimentResult]) -> String {
    let x: Vec<String> = results[0]
        .points
        .iter()
        .map(|p| p.n_tasks.to_string())
        .collect();
    let series: Vec<(&str, Vec<f64>)> = results
        .iter()
        .map(|r| {
            (
                r.id.as_str(),
                r.points.iter().map(|p| p.ttc.mean).collect::<Vec<f64>>(),
            )
        })
        .collect();
    ascii_chart("TTC vs #tasks", &x, &series, 16, true)
}

/// CSV export: one row per (experiment, size) with all summaries.
pub fn csv_export(results: &[&ExperimentResult]) -> String {
    let mut out = String::from(
        "experiment,strategy,durations,n_tasks,runs,ttc_mean,ttc_stdev,ttc_min,ttc_max,\
         tw_mean,tw_stdev,tx_mean,ts_mean\n",
    );
    for r in results {
        for p in &r.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1}",
                r.id,
                r.strategy_label,
                r.duration_label,
                p.n_tasks,
                p.ttc.n,
                p.ttc.mean,
                p.ttc.stdev,
                p.ttc.min,
                p.ttc.max,
                p.tw.mean,
                p.tw.stdev,
                p.tx.mean,
                p.ts.mean
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentPoint;
    use crate::stats::Summary;

    fn summary(mean: f64, stdev: f64) -> Summary {
        Summary {
            n: 4,
            mean,
            stdev,
            min: mean - stdev,
            max: mean + stdev,
            median: mean,
            ci95: stdev,
        }
    }

    fn result(id: &str) -> ExperimentResult {
        ExperimentResult {
            id: id.into(),
            description: "test".into(),
            strategy_label: "late-backfill-3p".into(),
            duration_label: "uniform".into(),
            points: vec![
                ExperimentPoint {
                    n_tasks: 8,
                    runs: vec![],
                    errors: vec![],
                    ttc: summary(1000.0, 100.0),
                    tw: summary(600.0, 90.0),
                    tx: summary(900.0, 10.0),
                    ts: summary(5.0, 1.0),
                },
                ExperimentPoint {
                    n_tasks: 16,
                    runs: vec![],
                    errors: vec![],
                    ttc: summary(1100.0, 120.0),
                    tw: summary(650.0, 95.0),
                    tx: summary(920.0, 12.0),
                    ts: summary(10.0, 2.0),
                },
            ],
        }
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| a | b |"));
        assert!(lines[1].contains("---"));
    }

    #[test]
    fn fig2_has_one_column_per_experiment() {
        let r1 = result("exp1");
        let r3 = result("exp3");
        let t = fig2_table(&[&r1, &r3]);
        assert!(t.contains("exp1"));
        assert!(t.contains("exp3"));
        assert!(t.lines().count() == 4); // header + sep + 2 sizes
        assert!(t.contains("| 8 | 1000 | 1000 |"));
    }

    #[test]
    fn fig3_lists_components() {
        let t = fig3_table(&result("exp3"));
        assert!(t.contains("Tw(s)"));
        assert!(t.contains("| 8 | 1000 | 600 | 900 | 5 |"));
    }

    #[test]
    fn fig4_lists_spread() {
        let t = fig4_table(&result("exp1"));
        assert!(t.contains("stdev"));
        assert!(t.contains("| 8 | 1000 | 100 |"));
        assert!(t.contains("0.10")); // CV
    }

    #[test]
    fn ascii_chart_renders_all_series() {
        let x = vec!["8".to_string(), "64".to_string(), "512".to_string()];
        let series = vec![
            ("exp1", vec![1000.0, 5000.0, 20000.0]),
            ("exp3", vec![1500.0, 1600.0, 2000.0]),
        ];
        let chart = ascii_chart("TTC", &x, &series, 10, true);
        assert!(chart.contains("log y"));
        assert!(chart.contains("1 = exp1"));
        assert!(chart.contains("2 = exp3"));
        // Both markers appear in the plot area.
        let plot: String = chart.lines().filter(|l| l.contains('|')).collect();
        assert!(plot.contains('1'));
        assert!(plot.contains('2'));
        // 10 plot rows + axis + labels + legend.
        assert_eq!(chart.lines().count(), 14);
    }

    #[test]
    fn ascii_chart_handles_flat_and_missing_data() {
        let x = vec!["1".to_string()];
        let flat = ascii_chart("flat", &x, &[("a", vec![5.0])], 4, false);
        assert!(flat.contains('1'));
        let nan = ascii_chart("nan", &x, &[("a", vec![f64::NAN])], 4, false);
        assert!(nan.contains("no data"));
        // Log scale drops non-positive values instead of panicking.
        let neg = ascii_chart("neg", &x, &[("a", vec![-3.0])], 4, true);
        assert!(neg.contains("no data"));
    }

    #[test]
    fn fig2_chart_smoke() {
        let r1 = result("exp1");
        let r3 = result("exp3");
        let chart = fig2_chart(&[&r1, &r3]);
        assert!(chart.contains("TTC vs #tasks"));
        assert!(chart.contains("1 = exp1"));
    }

    #[test]
    fn recovery_table_lists_healing_counters() {
        let run = crate::middleware::RunResult {
            strategy_label: "late-backfill-3p".into(),
            n_tasks: 16,
            breakdown: crate::ttc::TtcBreakdown {
                tr: aimes_sim::SimDuration::from_secs(120.0),
                td: aimes_sim::SimDuration::from_secs(60.0),
                ..Default::default()
            },
            resources_used: vec!["a".into()],
            units_done: 16,
            units_failed: 0,
            restarts: 3,
            pilot_setup_secs: vec![],
            charged_core_hours: 10.0,
            used_core_hours: 8.0,
            replacements: 2,
            replans: 1,
            wasted_core_hours: 0.75,
            salvaged_core_hours: 0.25,
            mean_recovery_secs: 90.0,
            mean_detection_secs: 45.0,
            false_suspicions: 1,
            info_fallbacks: 4,
            stale_decision_secs: 1800.0,
            domain_alarms: 1,
            evacuations: 2,
            evacuation_lead_secs: Some(42.0),
            metrics: None,
        };
        let t = recovery_table(&[run]);
        assert!(t.contains("Replacements"));
        assert!(t.contains("Td(s)"));
        assert!(t.contains("InfoFB"));
        assert!(t.contains("Salvaged(ch)"));
        assert!(t.contains(
            "| late-backfill-3p | 16 | 16/16 | 3 | 2 | 1 | 120 | 60 | 0.75 | 0.25 | 90 | 45 | 4 | 1800 |"
        ));
    }

    #[test]
    fn metrics_table_renders_all_sections() {
        use aimes_sim::{MetricsRegistry, SimTime};
        let reg = MetricsRegistry::new();
        reg.inc(|| "saga.a.submissions".into());
        reg.gauge(SimTime::from_secs(0.0), 2.0, || {
            "cluster.a.busy_cores".into()
        });
        reg.gauge(SimTime::from_secs(5.0), 4.0, || {
            "cluster.a.busy_cores".into()
        });
        reg.observe(1.5, || "unit.dwell.executing".into());
        let t = metrics_table(&reg.summary());
        assert!(t.contains("Counters"));
        assert!(t.contains("saga.a.submissions"));
        assert!(t.contains("Gauge timelines"));
        assert!(t.contains("cluster.a.busy_cores"));
        assert!(t.contains("Histograms"));
        assert!(t.contains("unit.dwell.executing"));
        assert_eq!(
            metrics_table(&Default::default()),
            "(no metrics recorded)\n"
        );
    }

    #[test]
    fn metrics_table_renders_zero_sample_histograms() {
        use aimes_sim::telemetry::HistogramSummary;
        use aimes_sim::MetricsSummary;
        // A histogram family can exist with no observations (e.g. a dwell
        // state never entered in a quick run). All derived quantities are
        // defined as 0 and the table must render them, not NaN or panic.
        let mut summary = MetricsSummary::default();
        summary.histograms.insert(
            "unit.dwell.staging_output".into(),
            HistogramSummary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            },
        );
        let t = metrics_table(&summary);
        assert!(t.contains("Histograms"));
        assert!(t.contains("unit.dwell.staging_output"));
        assert!(t.contains("| 0 |"), "zero count renders: {t}");
        assert!(!t.contains("NaN"));
        assert!(!t.contains("inf"));
    }

    #[test]
    fn csv_rows_per_point() {
        let r1 = result("exp1");
        let csv = csv_export(&[&r1]);
        assert_eq!(csv.lines().count(), 3); // header + 2 points
        assert!(csv.lines().nth(1).unwrap().starts_with("exp1,"));
    }
}
