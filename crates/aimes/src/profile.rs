//! The `aimes-profile-v1` document: serialized engine self-profiles.
//!
//! [`aimes_sim::profile`] collects per-label wall-time attribution and
//! queue-health counters inside one run; this module turns one or many
//! such [`ProfileReport`]s into a stable JSON document and a human
//! self-time table.
//!
//! Field volatility follows the campaign-manifest convention
//! ([`crate::campaign`]): scope *counts* and engine counters are
//! deterministic (same seed → same document), while wall-clock timing is
//! volatile and therefore **gated** — a document built with
//! `timing: None` carries a deterministic `null` in every host-timing
//! slot, so parallel sweeps that write profiles stay byte-identical
//! across worker counts, exactly like `--campaign-timing`.

use crate::stats;
use aimes_sim::profile::{EngineStats, ProfileReport};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Schema identifier stamped into every profile document.
pub const PROFILE_SCHEMA: &str = "aimes-profile-v1";

/// Host memory accounting sampled by the binaries' counting allocator
/// (volatile: depends on host, worker count, and concurrent activity).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AllocSection {
    /// Allocation calls during the profiled region.
    pub allocs: u64,
    /// Bytes passed to the allocator during the profiled region.
    pub bytes_allocated: u64,
    /// Peak live heap bytes since process start (atomic-max tracked).
    pub peak_bytes: u64,
    /// `allocs / engine.events_processed` (0 when no events ran).
    pub allocs_per_event: f64,
}

/// Engine queue-health counters (deterministic; sums across runs, with
/// the high-water mark taking the max).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EngineSection {
    pub events_processed: u64,
    pub events_scheduled: u64,
    pub events_cancelled: u64,
    pub pending_events_hwm: u64,
    pub compactions: u64,
}

impl From<EngineStats> for EngineSection {
    fn from(s: EngineStats) -> Self {
        EngineSection {
            events_processed: s.events_processed,
            events_scheduled: s.events_scheduled,
            events_cancelled: s.events_cancelled,
            pending_events_hwm: s.pending_events_hwm,
            compactions: s.compactions,
        }
    }
}

/// Volatile per-label timing, present only in timing mode.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LabelTiming {
    /// Wall seconds exclusively inside this label (children subtracted).
    pub exclusive_secs: f64,
    /// `exclusive_secs / attributed_secs` across all labels.
    pub share: f64,
    /// Exclusive microseconds per call: mean and bucket-interpolated
    /// quantiles from the label's log-scale histogram.
    pub mean_us: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
}

/// One attribution label. The count is deterministic; timing is gated.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LabelSection {
    pub label: String,
    pub count: u64,
    pub timing: Option<LabelTiming>,
}

/// Volatile whole-document timing, present only in timing mode.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TimingSection {
    /// Wall clock of the profiled region, measured by the harness.
    pub total_wall_secs: f64,
    /// Sum of per-label exclusive seconds (CPU seconds across workers in
    /// a parallel sweep).
    pub attributed_secs: f64,
    /// `attributed / total_wall` — only meaningful for single-threaded
    /// harnesses (the `experiments profile` command), where exclusive
    /// times tile the wall clock; `None` for parallel sweeps.
    pub coverage: Option<f64>,
    /// Per-run wall-second quantiles (type-7, via [`crate::stats`]) when
    /// the harness recorded per-run walls.
    pub run_wall_secs: Option<RunWallSummary>,
}

/// Type-7 percentiles over per-run wall seconds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RunWallSummary {
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

impl RunWallSummary {
    /// Summarize per-run wall seconds with [`stats::p50_p95_p99`].
    pub fn of(run_walls: &[f64]) -> Option<Self> {
        let (p50, p95, p99) = stats::p50_p95_p99(run_walls)?;
        Some(RunWallSummary { p50, p95, p99 })
    }
}

/// The serialized `aimes-profile-v1` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfileDoc {
    /// Always [`PROFILE_SCHEMA`].
    pub schema: String,
    /// Producing command (`profile`, `ablation-faults`, ...).
    pub command: String,
    /// Base experiment seed.
    pub seed: u64,
    /// Number of runs merged into this document.
    pub runs: u64,
    pub engine: EngineSection,
    /// Sorted by label name (deterministic order).
    pub labels: Vec<LabelSection>,
    pub timing: Option<TimingSection>,
    pub alloc: Option<AllocSection>,
}

/// Volatile inputs the harness measured around the profiled region; pass
/// `None` to [`ProfileDoc::build`] for a deterministic document.
#[derive(Clone, Debug, Default)]
pub struct TimingInputs {
    /// Wall clock of the whole profiled region.
    pub total_wall_secs: f64,
    /// Whether attributed/total coverage is meaningful (sequential
    /// harness).
    pub sequential: bool,
    /// Per-run wall seconds, when the harness tracked them.
    pub run_walls: Vec<f64>,
    /// Allocator accounting, when the binary installs the counting shim.
    pub alloc: Option<AllocSection>,
}

impl ProfileDoc {
    /// Assemble a document from a (possibly merged) report.
    pub fn build(
        command: &str,
        seed: u64,
        runs: u64,
        report: &ProfileReport,
        timing: Option<TimingInputs>,
    ) -> Self {
        let attributed = report.attributed_secs();
        let labels = report
            .labels
            .iter()
            .map(|l| LabelSection {
                label: l.label.clone(),
                count: l.count,
                timing: timing.as_ref().map(|_| LabelTiming {
                    exclusive_secs: l.exclusive_secs,
                    share: if attributed > 0.0 {
                        l.exclusive_secs / attributed
                    } else {
                        0.0
                    },
                    mean_us: l.hist.mean(),
                    p50_us: l.hist.quantile(0.50),
                    p95_us: l.hist.quantile(0.95),
                    p99_us: l.hist.quantile(0.99),
                }),
            })
            .collect();
        let alloc = timing.as_ref().and_then(|t| t.alloc);
        ProfileDoc {
            schema: PROFILE_SCHEMA.into(),
            command: command.into(),
            seed,
            runs,
            engine: report.engine.into(),
            labels,
            timing: timing.map(|t| TimingSection {
                total_wall_secs: t.total_wall_secs,
                attributed_secs: attributed,
                coverage: (t.sequential && t.total_wall_secs > 0.0)
                    .then(|| attributed / t.total_wall_secs),
                run_wall_secs: RunWallSummary::of(&t.run_walls),
            }),
            alloc,
        }
    }

    /// Schema sanity check, mirroring the campaign manifest's validate.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != PROFILE_SCHEMA {
            return Err(format!(
                "schema mismatch: document says {:?}, reader expects {PROFILE_SCHEMA:?}",
                self.schema
            ));
        }
        if self.runs == 0 {
            return Err("document merges zero runs".into());
        }
        let mut prev: Option<&str> = None;
        for l in &self.labels {
            if l.timing.is_some() != self.timing.is_some() {
                return Err(format!(
                    "label {:?} timing presence disagrees with document timing mode",
                    l.label
                ));
            }
            if let Some(p) = prev {
                if p >= l.label.as_str() {
                    return Err(format!("labels not sorted: {:?} before {:?}", p, l.label));
                }
            }
            prev = Some(&l.label);
        }
        Ok(())
    }
}

/// Thread-safe collection point for per-run [`ProfileReport`]s, keyed by
/// job index so the merged result is worker-count invariant (reports are
/// folded in job order, like the campaign manifest's canonical ordering).
#[derive(Default)]
pub struct ProfileAccumulator {
    slots: Mutex<Vec<(u64, ProfileReport)>>,
}

impl ProfileAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one run's report under its job index.
    pub fn record(&self, job: u64, report: ProfileReport) {
        self.slots
            .lock()
            .expect("profile accumulator poisoned")
            .push((job, report));
    }

    /// Number of reports recorded so far.
    pub fn runs(&self) -> u64 {
        self.slots
            .lock()
            .expect("profile accumulator poisoned")
            .len() as u64
    }

    /// Merge all recorded reports in job order.
    pub fn merged(&self) -> ProfileReport {
        let mut slots = self.slots.lock().expect("profile accumulator poisoned");
        slots.sort_by_key(|(job, _)| *job);
        let mut merged = ProfileReport::default();
        for (_, report) in slots.iter() {
            merged.merge(report);
        }
        merged
    }
}

/// Render the self-time table: top-N labels by exclusive wall, with
/// per-call quantiles from each label's histogram.
pub fn self_time_table(report: &ProfileReport, top_n: usize) -> String {
    let mut labels: Vec<_> = report.labels.iter().collect();
    labels.sort_by(|a, b| {
        b.exclusive_secs
            .total_cmp(&a.exclusive_secs)
            .then_with(|| a.label.cmp(&b.label))
    });
    let attributed = report.attributed_secs();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>10} {:>7} {:>10} {:>10} {:>10}",
        "label", "calls", "excl s", "share", "p50 µs", "p95 µs", "p99 µs"
    );
    for l in labels.iter().take(top_n) {
        let share = if attributed > 0.0 {
            100.0 * l.exclusive_secs / attributed
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>10.4} {:>6.1}% {:>10.2} {:>10.2} {:>10.2}",
            l.label,
            l.count,
            l.exclusive_secs,
            share,
            l.hist.quantile(0.50),
            l.hist.quantile(0.95),
            l.hist.quantile(0.99),
        );
    }
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>10.4} {:>6.1}%",
        "total attributed",
        report.total_calls(),
        attributed,
        if attributed > 0.0 { 100.0 } else { 0.0 },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_sim::Profiler;

    fn sample_report() -> ProfileReport {
        let prof = Profiler::new();
        {
            let _outer = prof.scope("harness");
            for _ in 0..5 {
                let _d = prof.scope("engine.dispatch");
            }
        }
        prof.record_engine(EngineStats {
            events_processed: 5,
            events_scheduled: 6,
            events_cancelled: 1,
            pending_events_hwm: 3,
            compactions: 0,
        });
        prof.report()
    }

    #[test]
    fn doc_without_timing_has_no_volatile_field() {
        let doc = ProfileDoc::build("profile", 42, 1, &sample_report(), None);
        doc.validate().expect("valid doc");
        let json = serde_json::to_string(&doc).unwrap();
        // Campaign-manifest convention: gated fields serialize as an
        // explicit, deterministic `null` rather than being omitted.
        assert!(
            json.contains("\"timing\":null"),
            "gated timing leaked: {json}"
        );
        assert!(
            json.contains("\"alloc\":null"),
            "gated alloc leaked: {json}"
        );
        assert!(json.contains("\"schema\":\"aimes-profile-v1\""));
        // Round-trips.
        let back: ProfileDoc = serde_json::from_str(&json).unwrap();
        back.validate().expect("round-tripped doc valid");
        assert_eq!(back.engine.events_processed, 5);
    }

    #[test]
    fn doc_with_timing_carries_shares_and_coverage() {
        let report = sample_report();
        let attributed = report.attributed_secs();
        let doc = ProfileDoc::build(
            "profile",
            42,
            1,
            &report,
            Some(TimingInputs {
                total_wall_secs: attributed * 1.01,
                sequential: true,
                run_walls: vec![attributed],
                alloc: None,
            }),
        );
        doc.validate().expect("valid doc");
        let timing = doc.timing.expect("timing present");
        let coverage = timing.coverage.expect("sequential harness has coverage");
        assert!((coverage - 1.0 / 1.01).abs() < 1e-9);
        assert!(timing.run_wall_secs.is_some());
        let shares: f64 = doc
            .labels
            .iter()
            .map(|l| l.timing.expect("per-label timing").share)
            .sum();
        assert!((shares - 1.0).abs() < 1e-9, "shares sum to 1, got {shares}");
    }

    #[test]
    fn accumulator_is_job_order_invariant() {
        let build = |order: &[u64]| {
            let acc = ProfileAccumulator::new();
            for &job in order {
                let prof = Profiler::new();
                for _ in 0..(job + 1) {
                    let _g = prof.scope("engine.dispatch");
                }
                prof.record_engine(EngineStats {
                    events_processed: job + 1,
                    events_scheduled: job + 1,
                    events_cancelled: 0,
                    pending_events_hwm: job + 1,
                    compactions: 0,
                });
                acc.record(job, prof.report());
            }
            let merged = acc.merged();
            ProfileDoc::build("sweep", 7, acc.runs(), &merged, None)
        };
        let a = serde_json::to_string(&build(&[0, 1, 2])).unwrap();
        let b = serde_json::to_string(&build(&[2, 0, 1])).unwrap();
        assert_eq!(a, b, "merged document must not depend on arrival order");
        let doc: ProfileDoc = serde_json::from_str(&a).unwrap();
        assert_eq!(doc.engine.events_processed, 6);
        assert_eq!(doc.engine.pending_events_hwm, 3, "hwm maxes across runs");
    }

    #[test]
    fn self_time_table_ranks_by_exclusive_wall() {
        let table = self_time_table(&sample_report(), 10);
        assert!(table.contains("engine.dispatch"));
        assert!(table.contains("harness"));
        assert!(table.contains("total attributed"));
        let header_pos = table.find("label").unwrap();
        let total_pos = table.find("total attributed").unwrap();
        assert!(header_pos < total_pos);
    }

    #[test]
    fn validate_rejects_mixed_timing_presence() {
        let mut doc = ProfileDoc::build("profile", 1, 1, &sample_report(), None);
        doc.labels[0].timing = Some(LabelTiming {
            exclusive_secs: 1.0,
            share: 1.0,
            mean_us: 1.0,
            p50_us: 1.0,
            p95_us: 1.0,
            p99_us: 1.0,
        });
        assert!(doc.validate().is_err());
    }
}
