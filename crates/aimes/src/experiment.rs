//! The experiment runner: the "virtual laboratory" mode of the middleware.
//!
//! §IV-A methodology, reproduced: each experiment combines one execution
//! strategy with one skeleton class across the nine application sizes;
//! every application runs many times; submission instants are drawn from a
//! window "to avoid effects of short-term resource load patterns"; each
//! repetition gets its own seed so it faces an independent realization of
//! the background load.
//!
//! Repetitions are independent simulations, so they fan out across host
//! cores on the vendored rayon worker pool (each simulation itself stays
//! single-threaded and deterministic). Worker count comes from
//! `rayon::ThreadPoolBuilder` (the bench binaries' `--jobs` flag) or the
//! `AIMES_JOBS` env var, defaulting to `available_parallelism`; results
//! are collected in input order and every run derives its own seed via
//! [`per_run_seed`], so output is byte-identical at any worker count.

use crate::campaign::{CampaignSender, Progress};
use crate::middleware::{run_application, RunError, RunOptions, RunResult};
use crate::profile::ProfileAccumulator;
use crate::stats::Summary;
use aimes_cluster::ClusterConfig;
use aimes_sim::{Profiler, SimRng, SimTime};
use aimes_skeleton::{paper_bag, SkeletonConfig, TaskDurationSpec};
use aimes_strategy::ExecutionStrategy;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One experiment: a strategy × a skeleton family × sizes × repetitions.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Short id, e.g. `exp3`.
    pub id: String,
    /// Human-readable description for reports.
    pub description: String,
    pub strategy: ExecutionStrategy,
    pub duration_spec: TaskDurationSpec,
    pub task_counts: Vec<u32>,
    pub repetitions: usize,
    pub base_seed: u64,
    pub resources: Vec<ClusterConfig>,
    /// Submission window in hours after simulation start.
    pub submit_window_hours: (f64, f64),
}

impl ExperimentConfig {
    /// The skeleton for one application size.
    pub fn skeleton(&self, n_tasks: u32) -> SkeletonConfig {
        paper_bag(n_tasks, self.duration_spec)
    }

    /// The seed for one (size, repetition) run. See [`per_run_seed`].
    pub fn run_seed(&self, n_tasks: u32, rep: usize) -> u64 {
        per_run_seed(self.base_seed, &self.id, n_tasks, rep)
    }

    /// Submission instant inside the window, drawn from the run's seed.
    pub fn submit_instant(&self, run_seed: u64) -> SimTime {
        let mut rng = SimRng::new(run_seed).fork("submit-offset");
        let (lo, hi) = self.submit_window_hours;
        SimTime::from_secs(rng.uniform(lo * 3600.0, hi * 3600.0))
    }
}

/// Stable per-run seed, independent of execution order.
///
/// This is the one definition shared by the campaign engine and the bench
/// binaries (`bench_report`'s e2e campaigns and metrics emission); any
/// drift between them would silently change what the perf gate measures,
/// so the formula is pinned by `per_run_seed_is_pinned` below.
pub fn per_run_seed(base_seed: u64, id: &str, n_tasks: u32, rep: usize) -> u64 {
    SimRng::new(base_seed)
        .fork_indexed(&format!("{id}-{n_tasks}"), rep as u64)
        .root_seed()
}

/// All runs for one application size, with summaries.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentPoint {
    pub n_tasks: u32,
    pub runs: Vec<RunResult>,
    pub errors: Vec<String>,
    pub ttc: Summary,
    pub tw: Summary,
    pub tx: Summary,
    pub ts: Summary,
}

/// A completed experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResult {
    pub id: String,
    pub description: String,
    pub strategy_label: String,
    pub duration_label: String,
    pub points: Vec<ExperimentPoint>,
}

impl ExperimentResult {
    /// The TTC series `(n_tasks, mean_ttc_secs)` — one Fig. 2 line.
    pub fn ttc_series(&self) -> Vec<(u32, f64)> {
        self.points
            .iter()
            .map(|p| (p.n_tasks, p.ttc.mean))
            .collect()
    }
}

const EMPTY_SUMMARY: Summary = Summary {
    n: 0,
    mean: f64::NAN,
    stdev: f64::NAN,
    min: f64::NAN,
    max: f64::NAN,
    median: f64::NAN,
    ci95: f64::NAN,
};

/// Observability hooks for a campaign: where each run reports its record
/// and progress tick. Both default to off; `run_experiment` passes the
/// empty set.
#[derive(Clone, Copy, Default)]
pub struct CampaignHooks<'a> {
    /// Manifest channel; each run sends one [`RunRecord`] keyed by its
    /// job index (arm = the experiment id).
    pub recorder: Option<&'a CampaignSender>,
    /// Live stderr status line; ticked once per finished run.
    pub progress: Option<&'a Progress>,
    /// Engine self-profiling: when set, each run gets its own
    /// [`Profiler`] and ships its report here keyed by job index, so the
    /// merged profile is worker-count invariant. Strictly passive.
    pub profile: Option<&'a ProfileAccumulator>,
}

/// Run every (size × repetition) combination in parallel.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    run_experiment_with(config, CampaignHooks::default())
}

/// [`run_experiment`] with campaign observability attached.
pub fn run_experiment_with(config: &ExperimentConfig, hooks: CampaignHooks) -> ExperimentResult {
    let jobs: Vec<(usize, u32, usize)> = config
        .task_counts
        .iter()
        .flat_map(|n| (0..config.repetitions).map(move |r| (*n, r)))
        .enumerate()
        .map(|(job, (n, rep))| (job, n, rep))
        .collect();
    let mut outcomes = jobs
        .par_iter()
        .map(|(job, n, rep)| {
            let started = hooks.recorder.map_or(0.0, |s| s.elapsed_secs());
            let seed = config.run_seed(*n, *rep);
            // The profiler handle is created inside the worker closure and
            // never crosses threads; only its plain-data report does.
            let profiler = hooks.profile.map(|_| Profiler::new());
            let (outcome, build_secs, simulate_secs) = run_one(config, *n, seed, profiler.clone());
            if let (Some(acc), Some(prof)) = (hooks.profile, &profiler) {
                acc.record(*job as u64, prof.report());
            }
            if let Some(sender) = hooks.recorder {
                sender.record_outcome(
                    *job as u64,
                    &config.id,
                    &config.id,
                    *rep as u64,
                    *n,
                    seed,
                    &outcome,
                    started,
                    build_secs,
                    simulate_secs,
                );
            }
            if let Some(progress) = hooks.progress {
                progress.tick(outcome.is_err());
            }
            outcome.map_err(|e| e.to_string())
        })
        .collect::<Vec<Result<RunResult, String>>>()
        .into_iter();

    // The pool returns outcomes in job order — repetitions contiguous per
    // size — so each point consumes its own chunk in one pass, moving
    // every RunResult and error instead of re-scanning and cloning.
    let points = config
        .task_counts
        .iter()
        .map(|n| {
            let mut runs = Vec::with_capacity(config.repetitions);
            let mut errors = Vec::new();
            for out in outcomes.by_ref().take(config.repetitions) {
                match out {
                    Ok(r) => runs.push(r),
                    Err(e) => errors.push(e),
                }
            }
            let summarize = |f: &dyn Fn(&RunResult) -> f64| {
                Summary::of(&runs.iter().map(f).collect::<Vec<_>>()).unwrap_or(EMPTY_SUMMARY)
            };
            ExperimentPoint {
                n_tasks: *n,
                ttc: summarize(&|r| r.breakdown.ttc.as_secs()),
                tw: summarize(&|r| r.breakdown.tw.as_secs()),
                tx: summarize(&|r| r.breakdown.tx.as_secs()),
                ts: summarize(&|r| r.breakdown.ts.as_secs()),
                runs,
                errors,
            }
        })
        .collect();

    ExperimentResult {
        id: config.id.clone(),
        description: config.description.clone(),
        strategy_label: config.strategy.label(),
        duration_label: config.duration_spec.label().to_string(),
        points,
    }
}

/// Execute one repetition, returning the outcome plus the wall split
/// between scenario construction (skeleton + options) and simulation.
fn run_one(
    config: &ExperimentConfig,
    n_tasks: u32,
    seed: u64,
    profiler: Option<Profiler>,
) -> (Result<RunResult, RunError>, f64, f64) {
    let t_build = std::time::Instant::now();
    let submit_at = config.submit_instant(seed);
    let skeleton = config.skeleton(n_tasks);
    let options = RunOptions {
        seed,
        submit_at,
        profiler,
        ..Default::default()
    };
    let build_secs = t_build.elapsed().as_secs_f64();
    let t_sim = std::time::Instant::now();
    let outcome = run_application(&config.resources, &skeleton, &config.strategy, &options);
    (outcome, build_secs, t_sim.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            id: "test".into(),
            description: "idle-pool smoke experiment".into(),
            strategy: ExecutionStrategy::paper_late(2),
            duration_spec: TaskDurationSpec::Uniform15Min,
            task_counts: vec![8, 16],
            repetitions: 3,
            base_seed: 99,
            resources: ["a", "b", "c"]
                .iter()
                .map(|n| ClusterConfig::test(n, 512))
                .collect(),
            submit_window_hours: (0.1, 0.5),
        }
    }

    #[test]
    fn experiment_produces_points_and_summaries() {
        let result = run_experiment(&small_config());
        assert_eq!(result.points.len(), 2);
        for p in &result.points {
            assert_eq!(p.runs.len(), 3, "errors: {:?}", p.errors);
            assert!(p.errors.is_empty());
            assert_eq!(p.ttc.n, 3);
            assert!(p.ttc.mean > 900.0);
            // Components are unions within the run: bounded by TTC.
            assert!(p.tw.mean <= p.ttc.mean);
            assert!(p.tx.mean <= p.ttc.mean);
            assert!(p.ts.mean <= p.ttc.mean);
        }
        let series = result.ttc_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, 8);
    }

    #[test]
    fn runs_are_reproducible_across_invocations() {
        let a = run_experiment(&small_config());
        let b = run_experiment(&small_config());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.ttc.mean, pb.ttc.mean);
            assert_eq!(pa.tw.mean, pb.tw.mean);
        }
    }

    #[test]
    fn per_run_seed_is_pinned() {
        // The exact legacy derivation, inlined: bench_report used to
        // duplicate this formula by hand, so the shared helper must keep
        // producing byte-for-byte the same seeds forever.
        for (base, id, n, rep) in [
            (42u64, "exp1", 8u32, 0usize),
            (42, "exp1", 2048, 7),
            (20160523, "exp4", 512, 3),
        ] {
            let legacy = SimRng::new(base)
                .fork_indexed(&format!("{id}-{n}"), rep as u64)
                .root_seed();
            assert_eq!(per_run_seed(base, id, n, rep), legacy);
        }
        let cfg = small_config();
        assert_eq!(cfg.run_seed(8, 2), per_run_seed(99, "test", 8, 2));
    }

    #[test]
    fn all_error_points_round_trip_through_json() {
        // No resources → every repetition fails → the point carries
        // EMPTY_SUMMARY (all NaN). The serde_json shim writes non-finite
        // floats as `null`; deserialization must map them back to NaN
        // instead of rejecting the document.
        let mut cfg = small_config();
        cfg.resources.clear();
        cfg.task_counts = vec![8];
        let result = run_experiment(&cfg);
        let p = &result.points[0];
        assert!(p.runs.is_empty());
        assert_eq!(p.errors.len(), 3, "all runs should fail: {:?}", p.errors);
        assert_eq!(p.ttc.n, 0);
        assert!(p.ttc.mean.is_nan());

        let json = serde_json::to_string(&result).expect("serialize");
        let back: ExperimentResult = serde_json::from_str(&json).expect("round-trip");
        assert_eq!(back.points.len(), 1);
        let bp = &back.points[0];
        assert_eq!(bp.errors, p.errors);
        assert_eq!(bp.ttc.n, 0);
        assert!(bp.ttc.mean.is_nan() && bp.ttc.ci95.is_nan());
        // And a second trip is stable: NaN → null → NaN.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn repetitions_differ_from_each_other() {
        // Different seeds → different skeleton samples and submit offsets;
        // with Gaussian durations the TTC spread must be visible even on
        // an idle pool.
        let mut cfg = small_config();
        cfg.duration_spec = TaskDurationSpec::Gaussian;
        cfg.task_counts = vec![8];
        let result = run_experiment(&cfg);
        let p = &result.points[0];
        assert!(p.ttc.stdev > 0.0, "repetitions should vary: {:?}", p.ttc);
    }
}
