//! Crash-consistent run journal: an append-only event log of everything
//! the middleware decided or observed during a run — binding decisions,
//! pilot and unit state transitions, detector verdicts, breaker trips,
//! blacklists, re-plans.
//!
//! Every entry carries a sequence number and an FNV-1a checksum over its
//! own content, so a journal cut off mid-write (a crash) is recognized by
//! its torn tail: [`RunJournal::from_jsonl`] keeps the longest valid
//! prefix and drops the rest, which is exactly the prefix a resumed run
//! must retrace. Because the simulation is deterministic in its seed,
//! *resume* is re-execution: [`crate::middleware::resume_application`]
//! replays the run from scratch and verifies the interrupted journal is a
//! bit-for-bit prefix of the replay — any divergence means the journal
//! does not describe the run it claims to, and resuming would fabricate
//! history.

use aimes_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One journaled middleware event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type")]
pub enum JournalEvent {
    /// The run began: everything that seeds determinism.
    RunStarted {
        seed: u64,
        strategy: String,
        n_tasks: u32,
    },
    /// A pilot changed state. `resource` / `cores` identify where the
    /// pilot is placed and how big it is, so post-mortem analytics can
    /// reconstruct per-resource timelines and core-utilization from the
    /// journal alone. Both default for journals written before they
    /// existed.
    PilotTransition {
        pilot: u32,
        state: String,
        #[serde(default)]
        resource: String,
        #[serde(default)]
        cores: u32,
    },
    /// A unit changed state; `pilot` is its binding at transition time, so
    /// the `StagingInput` entries double as the binding-decision log.
    /// `cores` is the task's core request (defaults for old journals).
    UnitTransition {
        unit: u32,
        state: String,
        pilot: Option<u32>,
        #[serde(default)]
        cores: u32,
    },
    /// A suspicion-detector verdict (Suspected / Recovered /
    /// DeclaredDead) with the silence that justified it.
    Detector {
        pilot: u32,
        resource: String,
        verdict: String,
        silent_secs: f64,
    },
    /// A signal arrived for a decommissioned or terminal target and was
    /// dropped rather than acted on.
    StaleSignal {
        pilot: u32,
        resource: String,
        detail: String,
    },
    /// The information plane served a decision below the fresh path:
    /// which resource was asked, how the answer classified
    /// (fresh/stale/corrupt/unavailable), which fallback rung produced
    /// it, the information age behind it, and the wait it reported
    /// (`None` = "does not fit"). Never emitted on a healthy channel.
    InfoFallback {
        resource: String,
        class: String,
        rung: String,
        age_secs: f64,
        wait_secs: Option<f64>,
    },
    /// A resource's circuit breaker opened.
    BreakerTrip { resource: String },
    /// A resource was excluded from replacement routing.
    Blacklist { resource: String },
    /// The strategy was re-derived over the surviving resources.
    Replan { resource: String, pilots: u32 },
    /// Correlated-failure alarm: enough suspicions/deaths landed in one
    /// failure domain within the alarm window to predict a cascade.
    DomainAlarm {
        domain: String,
        members: Vec<String>,
    },
    /// A surviving pilot in an alarmed domain was preemptively drained.
    Evacuation {
        domain: String,
        resource: String,
        pilot: u32,
    },
    /// An aborted attempt banked its progress at a checkpoint boundary;
    /// `progress_secs` is the cumulative checkpointed execution time.
    Checkpoint { unit: u32, progress_secs: f64 },
    /// A new attempt started from the last checkpoint instead of from
    /// zero, salvaging `salvaged_secs` of already-done execution.
    ResumeFromCheckpoint { unit: u32, salvaged_secs: f64 },
    /// The run completed.
    RunFinished { ttc_secs: f64 },
}

/// One checksummed journal line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Dense sequence number, starting at 0.
    pub seq: u64,
    /// Simulation time of the event, in seconds.
    pub at_secs: f64,
    pub event: JournalEvent,
    /// FNV-1a over `seq`, the bit pattern of `at_secs`, and the event's
    /// canonical JSON — torn or tampered lines fail this check.
    pub crc: u32,
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn entry_crc(seq: u64, at_secs: f64, event: &JournalEvent) -> u32 {
    let payload = serde_json::to_string(event).expect("journal events serialize");
    // The time goes in by bit pattern: no float-formatting ambiguity.
    fnv1a(format!("{seq}|{:016x}|{payload}", at_secs.to_bits()).as_bytes())
}

/// The append-only journal of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunJournal {
    entries: Vec<JournalEntry>,
}

impl RunJournal {
    pub fn new() -> Self {
        RunJournal::default()
    }

    /// Append one event at simulation time `at`.
    pub fn record(&mut self, at: SimTime, event: JournalEvent) {
        let seq = self.entries.len() as u64;
        let at_secs = at.as_secs();
        let crc = entry_crc(seq, at_secs, &event);
        self.entries.push(JournalEntry {
            seq,
            at_secs,
            event,
            crc,
        });
    }

    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize as JSON Lines — one self-checking entry per line, the
    /// shape an append-only on-disk log would have.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&serde_json::to_string(e).expect("journal entries serialize"));
            out.push('\n');
        }
        out
    }

    /// Load from JSON Lines, tolerating a torn tail: parsing stops at the
    /// first line that is unparsable, checksum-invalid, or out of
    /// sequence, and everything from there on is dropped. The valid
    /// prefix is what a crashed writer is guaranteed to have persisted.
    pub fn from_jsonl(text: &str) -> RunJournal {
        let mut entries = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(entry) = serde_json::from_str::<JournalEntry>(line) else {
                break;
            };
            if entry.seq != entries.len() as u64
                || entry.crc != entry_crc(entry.seq, entry.at_secs, &entry.event)
            {
                break;
            }
            entries.push(entry);
        }
        RunJournal { entries }
    }

    /// Like [`RunJournal::from_jsonl`], but also reports how many
    /// non-empty trailing lines were discarded as a torn tail. Post-mortem
    /// tools use this so a truncated artifact is *announced* rather than
    /// silently analyzed as if it were the whole run.
    pub fn read_lenient(text: &str) -> (RunJournal, usize) {
        let journal = RunJournal::from_jsonl(text);
        let total = text.lines().filter(|l| !l.trim().is_empty()).count();
        let discarded = total.saturating_sub(journal.len());
        (journal, discarded)
    }

    /// Full integrity check: every entry in sequence with a valid
    /// checksum. `Err((seq, detail))` names the first bad entry.
    pub fn verify(&self) -> Result<(), (u64, String)> {
        for (i, e) in self.entries.iter().enumerate() {
            if e.seq != i as u64 {
                return Err((
                    i as u64,
                    format!("sequence gap: entry {i} has seq {}", e.seq),
                ));
            }
            if e.crc != entry_crc(e.seq, e.at_secs, &e.event) {
                return Err((e.seq, format!("checksum mismatch at seq {}", e.seq)));
            }
        }
        Ok(())
    }

    /// Check that `self` (an interrupted run's journal) is an exact
    /// prefix of `other` (the resumed run's journal). Any mismatch means
    /// the replay diverged from the recorded history.
    pub fn is_prefix_of(&self, other: &RunJournal) -> Result<(), (u64, String)> {
        // Compare the common prefix first: a content mismatch is the more
        // precise diagnosis than a length difference.
        for (a, b) in self.entries.iter().zip(&other.entries) {
            if a != b {
                return Err((
                    a.seq,
                    format!("entry {} differs: recorded {a:?}, replayed {b:?}", a.seq),
                ));
            }
        }
        if self.entries.len() > other.entries.len() {
            return Err((
                other.entries.len() as u64,
                format!(
                    "replay has {} entries, interrupted journal {}",
                    other.entries.len(),
                    self.entries.len()
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample() -> RunJournal {
        let mut j = RunJournal::new();
        j.record(
            t(0.0),
            JournalEvent::RunStarted {
                seed: 7,
                strategy: "late-3p".into(),
                n_tasks: 16,
            },
        );
        j.record(
            t(12.5),
            JournalEvent::PilotTransition {
                pilot: 0,
                state: "Active".into(),
                resource: "alpha".into(),
                cores: 64,
            },
        );
        j.record(
            t(13.0),
            JournalEvent::UnitTransition {
                unit: 3,
                state: "StagingInput".into(),
                pilot: Some(0),
                cores: 1,
            },
        );
        j.record(
            t(500.0),
            JournalEvent::Detector {
                pilot: 0,
                resource: "alpha".into(),
                verdict: "DeclaredDead".into(),
                silent_secs: 300.0,
            },
        );
        j
    }

    #[test]
    fn jsonl_roundtrip_is_identity() {
        let j = sample();
        assert!(j.verify().is_ok());
        let back = RunJournal::from_jsonl(&j.to_jsonl());
        assert_eq!(j, back);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let j = sample();
        let mut text = j.to_jsonl();
        // Simulate a crash mid-append: the last line is cut in half.
        let cut = text.len() - 25;
        text.truncate(cut);
        let back = RunJournal::from_jsonl(&text);
        assert_eq!(back.len(), j.len() - 1);
        assert!(back.verify().is_ok());
        assert!(back.is_prefix_of(&j).is_ok());
    }

    #[test]
    fn read_lenient_reports_discarded_tail() {
        let j = sample();
        let (back, discarded) = RunJournal::read_lenient(&j.to_jsonl());
        assert_eq!(back, j);
        assert_eq!(discarded, 0);

        // A torn last line plus junk after it: both count as discarded.
        let mut text = j.to_jsonl();
        let cut = text.len() - 25;
        text.truncate(cut);
        text.push_str("\nnot json at all\n");
        let (back, discarded) = RunJournal::read_lenient(&text);
        assert_eq!(back.len(), j.len() - 1);
        assert_eq!(discarded, 2);
    }

    #[test]
    fn old_schema_journals_still_parse() {
        // Lines written before `resource`/`cores` existed must round-trip
        // through serde defaults. The CRC below is over the *old* payload,
        // so we re-derive it the way a pre-upgrade writer would have.
        let event = serde_json::from_str::<JournalEvent>(
            r#"{"type":"PilotTransition","pilot":1,"state":"Active"}"#,
        )
        .expect("old-schema event parses");
        match event {
            JournalEvent::PilotTransition {
                pilot,
                ref state,
                ref resource,
                cores,
            } => {
                assert_eq!(pilot, 1);
                assert_eq!(state, "Active");
                assert_eq!(resource, "");
                assert_eq!(cores, 0);
            }
            ref other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn corruption_is_caught_by_the_checksum() {
        let j = sample();
        let text = j.to_jsonl();
        // Flip a digit inside the third line's payload (not its crc).
        let corrupted = text.replacen("\"unit\":3", "\"unit\":4", 1);
        assert_ne!(text, corrupted, "the edit must land");
        let back = RunJournal::from_jsonl(&corrupted);
        assert_eq!(back.len(), 2, "valid prefix ends before the bad line");
    }

    #[test]
    fn out_of_sequence_entries_end_the_prefix() {
        let j = sample();
        let text = j.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        // Drop line 1: line 2's seq no longer matches its position.
        let gapped = format!("{}\n{}\n{}\n", lines[0], lines[2], lines[3]);
        let back = RunJournal::from_jsonl(&gapped);
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn prefix_verification_spots_divergence() {
        let a = sample();
        let mut b = sample();
        assert!(a.is_prefix_of(&b).is_ok());
        b.record(t(600.0), JournalEvent::RunFinished { ttc_secs: 600.0 });
        assert!(a.is_prefix_of(&b).is_ok(), "longer replay is fine");
        assert!(
            b.is_prefix_of(&a).is_err(),
            "replay shorter than the record is divergence"
        );
        let mut c = RunJournal::new();
        c.record(
            t(0.0),
            JournalEvent::RunStarted {
                seed: 8, // different seed → different first entry
                strategy: "late-3p".into(),
                n_tasks: 16,
            },
        );
        let err = a.is_prefix_of(&c).unwrap_err();
        assert_eq!(err.0, 0);
    }
}
