//! Campaign observability: the cross-run manifest, live progress, and
//! pool-utilization records.
//!
//! A campaign (a sweep of hundreds of runs fanned out over the worker
//! pool) was a black box until its final table printed. This module gives
//! it a flight record of its own:
//!
//! - [`CampaignRecorder`] — every run reports a [`RunRecord`] into a
//!   bounded channel; a writer thread appends them to `campaign.jsonl`
//!   **in completion order** (the live, crash-legible view), and
//!   [`CampaignRecorder::close`] canonicalizes the file to **job order**
//!   via a temp file + atomic rename, so the finished manifest is
//!   byte-identical at any worker count.
//! - [`Progress`] — an opt-in, rate-limited live status line on stderr
//!   (completed/total, runs/sec, ETA, failure count). Default off, so the
//!   worker-count byte-compare gates never see it.
//! - [`PoolRecord`] — a serialized snapshot of the vendored pool's
//!   per-worker accounting (see `rayon::pool_stats`).
//!
//! Determinism contract: at defaults the manifest holds only
//! run-deterministic fields (seeds, TTC components, counters, error
//! taxonomy) — `timing` is `null` and no pool record is written. Wall
//! times, worker indices, and pool stats are inherently worker-count
//! dependent, so they only appear under the opt-in timing mode
//! (`--campaign-timing` in the bench binaries).

use crate::middleware::{RunError, RunResult};
use serde::{Deserialize, Serialize};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::time::Instant;

/// Manifest schema identifier, bumped on incompatible record changes.
pub const CAMPAIGN_SCHEMA: &str = "aimes-campaign-v1";

/// Capacity of the run→writer channel. Full channel back-pressures the
/// workers (simulation runs are seconds; a line write is microseconds, so
/// in practice it never fills).
const CHANNEL_CAPACITY: usize = 1024;

/// First line of every manifest: what campaign this is.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignMeta {
    /// Record discriminator, always `"meta"`.
    pub kind: String,
    /// Schema identifier ([`CAMPAIGN_SCHEMA`]).
    pub schema: String,
    /// The sweep or campaign that produced this manifest
    /// (e.g. `ablation-cascade`, `campaign-throughput`).
    pub command: String,
    /// Base seed of the campaign.
    pub seed: u64,
    /// Total jobs fanned out; the canonical manifest holds exactly this
    /// many run records, jobs `0..total_jobs`.
    pub total_jobs: u64,
}

impl CampaignMeta {
    pub fn new(command: &str, seed: u64, total_jobs: u64) -> Self {
        Self {
            kind: "meta".into(),
            schema: CAMPAIGN_SCHEMA.into(),
            command: command.into(),
            seed,
            total_jobs,
        }
    }
}

/// Worker-count-dependent wall-clock fields, present only in timing mode.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunTiming {
    /// Pool worker index that executed the run (-1 if run off-pool).
    pub worker: i64,
    /// Wall-clock offsets from campaign start, seconds.
    pub wall_start_secs: f64,
    pub wall_end_secs: f64,
    /// Per-phase wall split: constructing the scenario (world, faults,
    /// strategy), simulating it, and folding the outcome into records.
    pub build_secs: f64,
    pub simulate_secs: f64,
    pub aggregate_secs: f64,
}

/// One run's row in the manifest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    /// Record discriminator, always `"run"`.
    pub kind: String,
    /// Job index in the fan-out order (the canonical sort key).
    pub job: u64,
    /// The sweep this run belongs to (mirrors [`CampaignMeta::command`]).
    pub sweep: String,
    /// Arm label within the sweep (e.g. `0.10/detect`, `evac+ckpt`).
    pub arm: String,
    /// Repetition index within the arm.
    pub rep: u64,
    pub n_tasks: u32,
    /// The run's own derived seed (not the campaign base seed).
    pub seed: u64,
    /// `"ok"` or `"failed"`.
    pub outcome: String,
    /// [`RunError::kind`] taxonomy key; `null` on success.
    pub error_kind: Option<String>,
    /// Rendered error message; `null` on success. Identical to the
    /// stderr failure line's trailing cause.
    pub error: Option<String>,
    /// TTC components, seconds; `null` on failure.
    pub ttc_secs: Option<f64>,
    pub tw_secs: Option<f64>,
    pub tx_secs: Option<f64>,
    pub ts_secs: Option<f64>,
    pub tr_secs: Option<f64>,
    pub td_secs: Option<f64>,
    /// Fallback / recovery counters (0 on failure).
    pub restarts: u64,
    pub replacements: u64,
    pub replans: u64,
    pub false_suspicions: u64,
    pub info_fallbacks: u64,
    pub domain_alarms: u64,
    pub evacuations: u64,
    pub wasted_core_hours: f64,
    pub salvaged_core_hours: f64,
    pub stale_decision_secs: f64,
    /// Volatile wall-clock fields; `null` unless timing mode is on.
    pub timing: Option<RunTiming>,
}

impl RunRecord {
    fn base(job: u64, sweep: &str, arm: &str, rep: u64, n_tasks: u32, seed: u64) -> Self {
        Self {
            kind: "run".into(),
            job,
            sweep: sweep.into(),
            arm: arm.into(),
            rep,
            n_tasks,
            seed,
            outcome: String::new(),
            error_kind: None,
            error: None,
            ttc_secs: None,
            tw_secs: None,
            tx_secs: None,
            ts_secs: None,
            tr_secs: None,
            td_secs: None,
            restarts: 0,
            replacements: 0,
            replans: 0,
            false_suspicions: 0,
            info_fallbacks: 0,
            domain_alarms: 0,
            evacuations: 0,
            wasted_core_hours: 0.0,
            salvaged_core_hours: 0.0,
            stale_decision_secs: 0.0,
            timing: None,
        }
    }

    /// Record for a completed run.
    pub fn ok(
        job: u64,
        sweep: &str,
        arm: &str,
        rep: u64,
        n_tasks: u32,
        seed: u64,
        r: &RunResult,
    ) -> Self {
        let mut rec = Self::base(job, sweep, arm, rep, n_tasks, seed);
        rec.outcome = "ok".into();
        rec.ttc_secs = Some(r.breakdown.ttc.as_secs());
        rec.tw_secs = Some(r.breakdown.tw.as_secs());
        rec.tx_secs = Some(r.breakdown.tx.as_secs());
        rec.ts_secs = Some(r.breakdown.ts.as_secs());
        rec.tr_secs = Some(r.breakdown.tr.as_secs());
        rec.td_secs = Some(r.breakdown.td.as_secs());
        rec.restarts = r.restarts;
        rec.replacements = r.replacements;
        rec.replans = r.replans;
        rec.false_suspicions = r.false_suspicions;
        rec.info_fallbacks = r.info_fallbacks;
        rec.domain_alarms = r.domain_alarms;
        rec.evacuations = r.evacuations;
        rec.wasted_core_hours = r.wasted_core_hours;
        rec.salvaged_core_hours = r.salvaged_core_hours;
        rec.stale_decision_secs = r.stale_decision_secs;
        rec
    }

    /// Record for a failed run.
    pub fn failed(
        job: u64,
        sweep: &str,
        arm: &str,
        rep: u64,
        n_tasks: u32,
        seed: u64,
        err: &RunError,
    ) -> Self {
        let mut rec = Self::base(job, sweep, arm, rep, n_tasks, seed);
        rec.outcome = "failed".into();
        rec.error_kind = Some(err.kind().to_string());
        rec.error = Some(err.to_string());
        rec
    }

    /// Attach timing-mode fields.
    pub fn with_timing(mut self, timing: RunTiming) -> Self {
        self.timing = Some(timing);
        self
    }

    pub fn is_failed(&self) -> bool {
        self.outcome == "failed"
    }
}

/// Per-worker slice of the pool snapshot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PoolWorkerRecord {
    pub worker: u64,
    pub items: u64,
    pub busy_secs: f64,
    pub idle_secs: f64,
    /// busy / (busy + idle) for this worker.
    pub busy_fraction: f64,
}

/// Last line of a timing-mode manifest: the pool's accounting for the
/// whole campaign (see `rayon::pool_stats`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PoolRecord {
    /// Record discriminator, always `"pool"`.
    pub kind: String,
    pub invocations: u64,
    pub cursor_overshoots: u64,
    pub wall_secs: f64,
    pub busy_secs: f64,
    /// Aggregate busy fraction across workers.
    pub utilization: f64,
    pub workers: Vec<PoolWorkerRecord>,
}

impl PoolRecord {
    /// Snapshot from the pool's accounting.
    pub fn from_stats(stats: &rayon::PoolStats) -> Self {
        Self {
            kind: "pool".into(),
            invocations: stats.invocations,
            cursor_overshoots: stats.cursor_overshoots,
            wall_secs: stats.wall_secs,
            busy_secs: stats.busy_secs(),
            utilization: stats.utilization(),
            workers: stats
                .workers
                .iter()
                .enumerate()
                .map(|(w, ws)| PoolWorkerRecord {
                    worker: w as u64,
                    items: ws.items,
                    busy_secs: ws.busy_secs,
                    idle_secs: ws.idle_secs,
                    busy_fraction: ws.busy_fraction(),
                })
                .collect(),
        }
    }
}

/// Ordering class of a manifest line, carried alongside the serialized
/// text so canonicalization never needs to re-parse.
enum LineClass {
    Meta,
    Run(u64),
    Pool,
}

type Line = (LineClass, String);

/// Cloneable handle the parallel workers report through.
pub struct CampaignSender {
    tx: SyncSender<Line>,
    epoch: Instant,
    timing: bool,
}

impl Clone for CampaignSender {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            epoch: self.epoch,
            timing: self.timing,
        }
    }
}

impl CampaignSender {
    /// Whether volatile wall-clock fields should be recorded.
    pub fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// Seconds since the campaign recorder was created — the epoch for
    /// [`RunTiming`] wall offsets.
    pub fn elapsed_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Enqueue one run record. A full channel back-pressures the caller;
    /// a closed channel (writer died) drops the record — the recorder's
    /// `close` reports the underlying I/O error.
    pub fn record_run(&self, rec: &RunRecord) {
        let line = serde_json::to_string(rec).expect("RunRecord serializes");
        let _ = self.tx.send((LineClass::Run(rec.job), line));
    }

    /// Build and enqueue the record for one finished run, attaching the
    /// volatile timing fields when timing mode is on. `started` is the
    /// [`Self::elapsed_secs`] value sampled before the run's build phase;
    /// `build_secs`/`simulate_secs` are the caller-measured wall split
    /// (scenario construction vs simulation). The aggregate phase — record
    /// construction and the channel send — is measured here.
    #[allow(clippy::too_many_arguments)]
    pub fn record_outcome(
        &self,
        job: u64,
        sweep: &str,
        arm: &str,
        rep: u64,
        n_tasks: u32,
        seed: u64,
        outcome: &Result<RunResult, RunError>,
        started: f64,
        build_secs: f64,
        simulate_secs: f64,
    ) {
        let t_agg = Instant::now();
        let mut rec = match outcome {
            Ok(r) => RunRecord::ok(job, sweep, arm, rep, n_tasks, seed, r),
            Err(e) => RunRecord::failed(job, sweep, arm, rep, n_tasks, seed, e),
        };
        if self.timing {
            rec = rec.with_timing(RunTiming {
                worker: rayon::current_worker_index().map_or(-1, |w| w as i64),
                wall_start_secs: started,
                wall_end_secs: self.elapsed_secs(),
                build_secs,
                simulate_secs,
                aggregate_secs: t_agg.elapsed().as_secs_f64(),
            });
        }
        self.record_run(&rec);
    }
}

/// Owns the manifest file and its writer thread.
pub struct CampaignRecorder {
    sender: Option<CampaignSender>,
    writer: Option<std::thread::JoinHandle<io::Result<Vec<Line>>>>,
    path: PathBuf,
}

impl CampaignRecorder {
    /// Open `path`, write the meta line, and start the writer thread.
    /// `timing` enables the volatile wall-clock fields (worker index,
    /// wall offsets, phase split, pool record) — off by default so the
    /// manifest stays byte-identical across worker counts.
    pub fn create(path: &Path, meta: &CampaignMeta, timing: bool) -> io::Result<Self> {
        let mut file = std::fs::File::create(path)?;
        let meta_line = serde_json::to_string(meta).expect("CampaignMeta serializes");
        writeln!(file, "{meta_line}")?;
        file.flush()?;

        let (tx, rx) = sync_channel::<Line>(CHANNEL_CAPACITY);
        let writer = std::thread::spawn(move || -> io::Result<Vec<Line>> {
            // Stream records in completion order: if the campaign dies,
            // the manifest still holds everything finished so far.
            let mut lines: Vec<Line> = vec![(LineClass::Meta, meta_line)];
            for (class, line) in rx {
                writeln!(file, "{line}")?;
                file.flush()?;
                lines.push((class, line));
            }
            Ok(lines)
        });

        Ok(Self {
            sender: Some(CampaignSender {
                tx,
                epoch: Instant::now(),
                timing,
            }),
            writer: Some(writer),
            path: path.to_path_buf(),
        })
    }

    /// The handle workers report through.
    pub fn sender(&self) -> CampaignSender {
        self.sender.as_ref().expect("recorder not closed").clone()
    }

    /// Close the channel, join the writer, and canonicalize the manifest:
    /// meta first, run records sorted by job index, pool record (if any)
    /// last — written to a temp file and atomically renamed over the
    /// streamed one, so the finished manifest is worker-count invariant
    /// and readers never observe a half-rewritten file.
    pub fn close(mut self, pool: Option<&PoolRecord>) -> io::Result<()> {
        let sender = self.sender.take();
        drop(sender); // hang up so the writer's recv loop ends
        let writer = self.writer.take().expect("close called once");
        let mut lines = writer
            .join()
            .map_err(|_| io::Error::other("campaign writer thread panicked"))??;

        if let Some(pool) = pool {
            let line = serde_json::to_string(pool).expect("PoolRecord serializes");
            lines.push((LineClass::Pool, line));
        }
        lines.sort_by_key(|(class, _)| match class {
            LineClass::Meta => (0u8, 0u64),
            LineClass::Run(job) => (1, *job),
            LineClass::Pool => (2, 0),
        });

        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            for (_, line) in &lines {
                writeln!(file, "{line}")?;
            }
            file.flush()?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)
    }
}

/// A parsed manifest.
#[derive(Debug)]
pub struct Manifest {
    pub meta: CampaignMeta,
    pub runs: Vec<RunRecord>,
    pub pool: Option<PoolRecord>,
}

impl Manifest {
    /// Schema + shape checks for a *canonical* (closed) manifest: schema
    /// id matches, run records cover jobs `0..total_jobs` in order,
    /// exactly one meta line. Returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.meta.schema != CAMPAIGN_SCHEMA {
            return Err(format!(
                "schema mismatch: manifest says {:?}, reader expects {CAMPAIGN_SCHEMA:?}",
                self.meta.schema
            ));
        }
        if self.runs.len() as u64 != self.meta.total_jobs {
            return Err(format!(
                "meta declares {} jobs but manifest holds {} run records",
                self.meta.total_jobs,
                self.runs.len()
            ));
        }
        for (i, rec) in self.runs.iter().enumerate() {
            if rec.job != i as u64 {
                return Err(format!(
                    "run records out of canonical order: position {i} holds job {}",
                    rec.job
                ));
            }
        }
        Ok(())
    }
}

/// Parse a `campaign.jsonl` document. Unknown record kinds and blank
/// lines are rejected — a manifest is a closed artifact, not a log to
/// skim leniently.
pub fn read_manifest(text: &str) -> Result<Manifest, String> {
    let mut meta: Option<CampaignMeta> = None;
    let mut runs: Vec<RunRecord> = Vec::new();
    let mut pool: Option<PoolRecord> = None;

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if let Ok(m) = serde_json::from_str::<CampaignMeta>(line) {
            if m.kind == "meta" {
                if meta.is_some() {
                    return Err(format!("line {lineno}: duplicate meta record"));
                }
                meta = Some(m);
                continue;
            }
        }
        if let Ok(r) = serde_json::from_str::<RunRecord>(line) {
            if r.kind == "run" {
                runs.push(r);
                continue;
            }
        }
        if let Ok(p) = serde_json::from_str::<PoolRecord>(line) {
            if p.kind == "pool" {
                if pool.is_some() {
                    return Err(format!("line {lineno}: duplicate pool record"));
                }
                pool = Some(p);
                continue;
            }
        }
        return Err(format!("line {lineno}: unrecognized manifest record"));
    }

    let meta = meta.ok_or("manifest has no meta record")?;
    Ok(Manifest { meta, runs, pool })
}

/// Opt-in live status line on stderr: completed/total, runs/sec, ETA,
/// failure count. Rate-limited to one redraw per ~200 ms (the final tick
/// always draws). Construct only when the user asked for it — nothing
/// here writes unless `tick`/`finish` is called.
pub struct Progress {
    total: u64,
    done: AtomicU64,
    failed: AtomicU64,
    start: Instant,
    /// Millis-since-start of the last redraw, for rate limiting.
    last_draw_ms: AtomicU64,
}

/// Minimum interval between redraws.
const DRAW_INTERVAL_MS: u64 = 200;

impl Progress {
    pub fn new(total: u64) -> Self {
        Self {
            total,
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            start: Instant::now(),
            last_draw_ms: AtomicU64::new(0),
        }
    }

    /// Count one finished run (and redraw if the rate limit allows).
    pub fn tick(&self, run_failed: bool) {
        if run_failed {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_draw_ms.load(Ordering::Relaxed);
        let due = now_ms.saturating_sub(last) >= DRAW_INTERVAL_MS || done == self.total;
        if due
            && self
                .last_draw_ms
                .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            eprint!("\r{}", self.line(done));
        }
    }

    /// Draw the final state and terminate the line.
    pub fn finish(&self) {
        let done = self.done.load(Ordering::Relaxed);
        eprintln!("\r{}", self.line(done));
    }

    /// Render the status line for `done` completed runs.
    fn line(&self, done: u64) -> String {
        let failed = self.failed.load(Ordering::Relaxed);
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let eta = if rate > 0.0 && done < self.total {
            format!("{:.0}s", (self.total - done) as f64 / rate)
        } else {
            "0s".to_string()
        };
        let pct = if self.total > 0 {
            100.0 * done as f64 / self.total as f64
        } else {
            100.0
        };
        format!(
            "[campaign] {done}/{} runs ({pct:.0}%) | {rate:.1} runs/s | ETA {eta} | failures: {failed}",
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_run(job: u64) -> RunRecord {
        let mut rec = RunRecord::base(job, "test-sweep", "arm-a", job, 8, 1000 + job);
        rec.outcome = "ok".into();
        rec.ttc_secs = Some(100.0 + job as f64);
        rec
    }

    #[test]
    fn manifest_canonicalizes_completion_order_to_job_order() {
        let dir = std::env::temp_dir().join(format!("aimes-campaign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("canon.jsonl");

        let meta = CampaignMeta::new("test-sweep", 42, 4);
        let recorder = CampaignRecorder::create(&path, &meta, false).unwrap();
        let sender = recorder.sender();
        // Simulate out-of-order completion.
        for job in [2u64, 0, 3, 1] {
            sender.record_run(&dummy_run(job));
        }
        drop(sender);
        recorder.close(None).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let manifest = read_manifest(&text).unwrap();
        manifest.validate().unwrap();
        assert_eq!(manifest.meta.command, "test-sweep");
        assert_eq!(
            manifest.runs.iter().map(|r| r.job).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // Default mode: no volatile fields anywhere in the file.
        assert!(manifest.pool.is_none());
        assert!(manifest.runs.iter().all(|r| r.timing.is_none()));
        assert!(text.contains("\"timing\":null"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_runs_carry_the_error_taxonomy() {
        let err = RunError::Unplannable("no qualifying resources".into());
        let rec = RunRecord::failed(7, "sweep", "arm", 1, 16, 99, &err);
        assert!(rec.is_failed());
        assert_eq!(rec.error_kind.as_deref(), Some("unplannable"));
        assert_eq!(rec.ttc_secs, None);
        let line = serde_json::to_string(&rec).unwrap();
        let back: RunRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back.error_kind.as_deref(), Some("unplannable"));
        assert_eq!(back.error.as_deref(), Some("no qualifying resources"));
    }

    #[test]
    fn validate_rejects_gaps_and_schema_drift() {
        let meta = CampaignMeta::new("s", 1, 2);
        let bad_gap = Manifest {
            meta: meta.clone(),
            runs: vec![dummy_run(0), dummy_run(2)],
            pool: None,
        };
        assert!(bad_gap.validate().unwrap_err().contains("canonical order"));

        let mut drift = CampaignMeta::new("s", 1, 0);
        drift.schema = "aimes-campaign-v999".into();
        let bad_schema = Manifest {
            meta: drift,
            runs: vec![],
            pool: None,
        };
        assert!(bad_schema.validate().unwrap_err().contains("schema"));

        let short = Manifest {
            meta,
            runs: vec![dummy_run(0)],
            pool: None,
        };
        assert!(short.validate().unwrap_err().contains("declares 2 jobs"));
    }

    #[test]
    fn pool_record_round_trips_with_timing_manifest() {
        let dir = std::env::temp_dir().join(format!("aimes-campaign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timing.jsonl");

        let meta = CampaignMeta::new("t", 7, 1);
        let recorder = CampaignRecorder::create(&path, &meta, true).unwrap();
        let sender = recorder.sender();
        assert!(sender.timing_enabled());
        let rec = dummy_run(0).with_timing(RunTiming {
            worker: 0,
            wall_start_secs: 0.0,
            wall_end_secs: 0.5,
            build_secs: 0.1,
            simulate_secs: 0.3,
            aggregate_secs: 0.1,
        });
        sender.record_run(&rec);
        drop(sender);
        let pool = PoolRecord {
            kind: "pool".into(),
            invocations: 1,
            cursor_overshoots: 2,
            wall_secs: 0.5,
            busy_secs: 0.4,
            utilization: 0.8,
            workers: vec![PoolWorkerRecord {
                worker: 0,
                items: 1,
                busy_secs: 0.4,
                idle_secs: 0.1,
                busy_fraction: 0.8,
            }],
        };
        recorder.close(Some(&pool)).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let manifest = read_manifest(&text).unwrap();
        manifest.validate().unwrap();
        let pool = manifest.pool.expect("pool record present");
        assert_eq!(pool.invocations, 1);
        assert_eq!(pool.workers.len(), 1);
        assert!((pool.workers[0].busy_fraction - 0.8).abs() < 1e-12);
        let timing = manifest.runs[0].timing.as_ref().expect("timing present");
        assert_eq!(timing.worker, 0);
        // Pool record is the last line of the canonical file.
        assert!(text.lines().last().unwrap().contains("\"kind\":\"pool\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_manifest_rejects_garbage_and_missing_meta() {
        assert!(read_manifest("not json\n").is_err());
        let run_only = serde_json::to_string(&dummy_run(0)).unwrap();
        assert!(read_manifest(&format!("{run_only}\n"))
            .unwrap_err()
            .contains("no meta"));
    }

    #[test]
    fn progress_line_renders_rate_and_failures() {
        let p = Progress::new(10);
        p.done.store(4, Ordering::Relaxed);
        p.failed.store(1, Ordering::Relaxed);
        let line = p.line(4);
        assert!(line.contains("4/10 runs"), "{line}");
        assert!(line.contains("failures: 1"), "{line}");
        assert!(line.contains("runs/s"), "{line}");
    }
}
