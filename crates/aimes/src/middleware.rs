//! One end-to-end application execution through the integrated middleware.
//!
//! Mirrors Figure 1: the skeleton API describes the application (1), the
//! bundle API describes the resources (2a/2b), the Execution Manager
//! derives a strategy (3), pilots are described via the pilot system (4)
//! and scheduled via the SAGA layer (5), and units are executed on active
//! pilots with input/output staging (6). All pilots are cancelled when the
//! application completes "so as not to waste resources".

use crate::journal::{JournalEvent, RunJournal};
use crate::recorder::{FlightRecorder, DEFAULT_RECORDER_CAPACITY};
use crate::ttc::{decompose, interval_union, salvage_split, TtcBreakdown};
use aimes_bundle::{Bundle, InfoConfig, InfoDisposition};
use aimes_cluster::{Cluster, ClusterConfig};
use aimes_fault::{FaultSpec, InfoOutcome, OutageKind, RecoveryPolicy};
use aimes_pilot::{
    DetectionMode, DetectionPolicy, DetectorEvent, Pilot, PilotId, PilotManager, PilotRecovery,
    PilotState, SalvageEvent, UnitManager, UnitManagerStats, UnitState,
};
use aimes_saga::{BreakerConfig, Session};
use aimes_sim::{
    ManagerPhase, MetricsSummary, Profiler, SimDuration, SimTime, Simulation, Span, Telemetry,
    TraceKind, Tracer,
};
use aimes_skeleton::{SkeletonApp, SkeletonConfig};
use aimes_strategy::{ExecutionManager, ExecutionStrategy, ResourceSelection};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::rc::Rc;

/// Options for one run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Experiment seed: drives background load, skeleton sampling,
    /// submission jitter, resource selection.
    pub seed: u64,
    /// When the application is handed to the middleware (the paper ran
    /// applications "at irregular intervals so as to avoid effects of
    /// short-term resource load patterns"); the experiment layer draws
    /// this from a window per repetition.
    pub submit_at: SimTime,
    /// Hard cap on simulated time after submission (runaway guard).
    pub deadline: SimDuration,
    /// Record a full trace (costs memory; off for sweeps).
    pub trace: bool,
    /// Deterministic fault model, compiled against the run seed. `None`
    /// (the default) injects nothing and leaves every event stream
    /// byte-identical to a build without fault support.
    pub faults: Option<FaultSpec>,
    /// Self-healing policy. `None` (the default) keeps the legacy
    /// behaviour: failed pilots stay dead, unit retries are immediate,
    /// and a lost resource is never re-planned around.
    pub recovery: Option<RecoveryPolicy>,
    /// Crash-consistent run journal: when set, every binding decision,
    /// state transition, detector verdict, breaker trip, and re-plan is
    /// appended here as it happens. Feeds [`resume_application`].
    pub journal: Option<Rc<RefCell<RunJournal>>>,
    /// Kill the run this long after submission (simulating a middleware
    /// crash): the run returns [`RunError::Interrupted`] with whatever
    /// the journal has captured so far.
    pub interrupt_at: Option<SimDuration>,
    /// Typed telemetry: when set, the run records counters, gauges, and
    /// dwell histograms into this handle's registry, assembles pilot and
    /// unit spans at the end, and embeds a [`MetricsSummary`] in the
    /// result. `None` (the default) costs one branch per metric site and
    /// changes nothing observable.
    pub telemetry: Option<Telemetry>,
    /// Use this tracer (a cheap shared handle) instead of building one
    /// from [`RunOptions::trace`] — the way for a caller to keep hold of
    /// the trace and stream it out after the run.
    pub tracer: Option<Tracer>,
    /// Information-plane tuning (hot-pool size, refresh, staleness
    /// thresholds, fallback floor). The default is oracle-equivalent:
    /// every healthy query measures live, so fault-free runs are
    /// byte-identical to a build without the plane. Validated at run
    /// start ([`RunError::InvalidInfoConfig`]).
    pub info: InfoConfig,
    /// Flight-recorder ring capacity (always on; near-zero cost).
    /// Validated at run start ([`RunError::InvalidRecorderConfig`]).
    pub recorder_capacity: usize,
    /// Where to write checksummed flight-recorder snapshots when the run
    /// dies (any [`RunError`] return) or a pilot is Declared-Dead. `None`
    /// keeps the recorder purely in memory.
    pub recorder_dump_dir: Option<PathBuf>,
    /// Disambiguating tag for this run's flight-recorder dump filenames
    /// (`flight-{tag}-{seed}-{reason}.txt` instead of
    /// `flight-{seed}-{reason}.txt`). Parallel sweep arms deliberately
    /// share seeds (paired-seed design) and often share a dump dir; the
    /// tag keeps their post-mortems from overwriting each other.
    pub run_tag: Option<String>,
    /// Engine self-profiler (a cheap shared handle, like
    /// [`RunOptions::tracer`]): when set, the run attributes host wall
    /// time to engine dispatch, the cluster scheduler, pilot/unit
    /// managers, SAGA session, info plane, and middleware planning, and
    /// snapshots the engine's queue-health counters at every exit.
    /// Strictly passive — journals, traces, and results are bit-identical
    /// with or without it. `None` (the default) costs one branch per
    /// scope.
    pub profiler: Option<Profiler>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            seed: 0,
            submit_at: SimTime::from_secs(6.0 * 3600.0),
            deadline: SimDuration::from_hours(96.0),
            trace: false,
            faults: None,
            recovery: None,
            journal: None,
            interrupt_at: None,
            telemetry: None,
            tracer: None,
            info: InfoConfig::default(),
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
            recorder_dump_dir: None,
            run_tag: None,
            profiler: None,
        }
    }
}

/// Why a run could not deliver a [`RunResult`].
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// No viable plan: resources do not qualify, unknown resource, empty
    /// pool. The message is the Execution Manager's verbatim explanation.
    Unplannable(String),
    /// The skeleton could not generate the application.
    Skeleton(String),
    /// The fault spec declares something it cannot mean (empty or
    /// inverted duration range, out-of-range bandwidth factor); running
    /// it would silently deviate from the declaration.
    InvalidFaultSpec(String),
    /// The information-plane config is unusable (empty hot pool,
    /// inverted staleness thresholds, non-positive fallback floor);
    /// running it would serve answers from a ladder whose rungs are out
    /// of order.
    InvalidInfoConfig(String),
    /// The flight-recorder config is unusable (zero capacity): the
    /// recorder would silently retain nothing.
    InvalidRecorderConfig(String),
    /// The recovery policy is self-contradictory (inverted backoff cap,
    /// zero blacklist threshold, empty alarm window); running it would
    /// silently clamp or disable what the caller declared.
    InvalidRecoveryPolicy(String),
    /// The unit-manager config derived for this run is unusable (zero
    /// attempts, inverted retry cap).
    InvalidUnitConfig(String),
    /// The simulated deadline passed with units still unfinished.
    DeadlineExceeded {
        n_tasks: u32,
        strategy_label: String,
        at: SimTime,
        stats: UnitManagerStats,
    },
    /// Every pilot died and nothing could replace them: the event queue
    /// drained with units still pending.
    PilotsDrained { stats: UnitManagerStats },
    /// A resource was lost permanently and the run could not complete
    /// without it (recovery disabled, or re-planning found no way out).
    ResourceLost {
        resource: String,
        stats: UnitManagerStats,
    },
    /// The run was killed at [`RunOptions::interrupt_at`] (a simulated
    /// middleware crash). The journal passed in the options holds the
    /// crash-consistent record to resume from.
    Interrupted {
        at: SimTime,
        stats: UnitManagerStats,
    },
    /// A resumed run replayed differently from the interrupted journal it
    /// was given: the journal does not describe this (seed, app,
    /// strategy, fault) combination, and resuming would fabricate
    /// history. `seq` is the first diverging entry.
    JournalDiverged { seq: u64, detail: String },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Unplannable(msg) => write!(f, "{msg}"),
            RunError::Skeleton(msg) => write!(f, "skeleton generation failed: {msg}"),
            RunError::InvalidFaultSpec(msg) => write!(f, "invalid fault spec: {msg}"),
            RunError::InvalidInfoConfig(msg) => write!(f, "invalid info config: {msg}"),
            RunError::InvalidRecorderConfig(msg) => {
                write!(f, "invalid flight-recorder config: {msg}")
            }
            RunError::InvalidRecoveryPolicy(msg) => {
                write!(f, "invalid recovery policy: {msg}")
            }
            RunError::InvalidUnitConfig(msg) => {
                write!(f, "invalid unit-manager config: {msg}")
            }
            RunError::DeadlineExceeded {
                n_tasks,
                strategy_label,
                at,
                stats,
            } => write!(
                f,
                "run missed its deadline: {n_tasks} tasks under {strategy_label} \
                 still unfinished at {at:?} (stats {stats:?})"
            ),
            RunError::PilotsDrained { stats } => {
                write!(f, "pilot pool drained before completion ({stats:?})")
            }
            RunError::ResourceLost { resource, stats } => write!(
                f,
                "resource {resource} permanently lost before completion ({stats:?})"
            ),
            RunError::Interrupted { at, stats } => {
                write!(f, "run interrupted at {at:?} ({stats:?})")
            }
            RunError::JournalDiverged { seq, detail } => {
                write!(
                    f,
                    "resume diverged from the journal at entry {seq}: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

impl RunError {
    /// Substring check on the rendered message — keeps the pre-enum
    /// `String`-error call sites (`err.contains("deadline")`) compiling
    /// unchanged.
    pub fn contains(&self, needle: &str) -> bool {
        self.to_string().contains(needle)
    }

    /// Stable taxonomy key for this error variant, message-free — the
    /// campaign manifest and `campaign-report` failure table bucket on it.
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Unplannable(_) => "unplannable",
            RunError::Skeleton(_) => "skeleton",
            RunError::InvalidFaultSpec(_) => "invalid_fault_spec",
            RunError::InvalidInfoConfig(_) => "invalid_info_config",
            RunError::InvalidRecorderConfig(_) => "invalid_recorder_config",
            RunError::InvalidRecoveryPolicy(_) => "invalid_recovery_policy",
            RunError::InvalidUnitConfig(_) => "invalid_unit_config",
            RunError::DeadlineExceeded { .. } => "deadline_exceeded",
            RunError::PilotsDrained { .. } => "pilots_drained",
            RunError::ResourceLost { .. } => "resource_lost",
            RunError::Interrupted { .. } => "interrupted",
            RunError::JournalDiverged { .. } => "journal_diverged",
        }
    }
}

/// The measured outcome of one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    pub strategy_label: String,
    pub n_tasks: u32,
    pub breakdown: TtcBreakdown,
    pub resources_used: Vec<String>,
    pub units_done: usize,
    pub units_failed: usize,
    pub restarts: u64,
    /// Per-pilot setup times (seconds), submission order.
    pub pilot_setup_secs: Vec<f64>,
    /// Allocation consumption (paper §V): core-hours *charged* by the
    /// resources — every active pilot's cores for its active span.
    pub charged_core_hours: f64,
    /// Core-hours actually spent executing tasks.
    pub used_core_hours: f64,
    /// Replacement pilots submitted by the self-healing layer.
    pub replacements: u64,
    /// Strategy re-derivations after permanent resource loss.
    pub replans: u64,
    /// Core-hours burnt on execution attempts that never produced output
    /// (killed or faulted mid-run and re-done elsewhere). Excludes the
    /// checkpoint-salvaged share.
    pub wasted_core_hours: f64,
    /// Core-hours of aborted attempts whose progress was checkpointed and
    /// carried forward instead of redone — work that was *not* wasted.
    /// Zero unless checkpointing is enabled.
    #[serde(default)]
    pub salvaged_core_hours: f64,
    /// Correlated-failure alarms raised (one per alarmed domain).
    #[serde(default)]
    pub domain_alarms: u64,
    /// Pilots preemptively drained out of alarmed domains.
    #[serde(default)]
    pub evacuations: u64,
    /// Time from the first domain alarm to the first evacuated pilot
    /// actually draining (Canceled). `None` when nothing was evacuated.
    #[serde(default)]
    pub evacuation_lead_secs: Option<f64>,
    /// Mean time from a pilot failure to its replacement becoming Active
    /// (0 when nothing needed recovering).
    pub mean_recovery_secs: f64,
    /// Mean time from a pilot going silent to the detector declaring it
    /// dead — Td samples (0 when detection is off or nothing died).
    #[serde(default)]
    pub mean_detection_secs: f64,
    /// Suspicions the detector raised and then cleared when heartbeats
    /// resumed (false positives that cost nothing).
    #[serde(default)]
    pub false_suspicions: u64,
    /// Decisions the information plane served below the fresh path
    /// (stale cache, offline predictor, static default) — 0 on a healthy
    /// channel.
    #[serde(default)]
    pub info_fallbacks: u64,
    /// Total information age (seconds) behind those degraded decisions —
    /// the staleness analogue of Tr/Td.
    #[serde(default)]
    pub stale_decision_secs: f64,
    /// Condensed telemetry (counters, gauge summaries, histogram
    /// quantiles). `Some` only when the run was given
    /// [`RunOptions::telemetry`].
    #[serde(default)]
    pub metrics: Option<MetricsSummary>,
}

impl RunResult {
    /// Allocation efficiency: used / charged core-hours — an energy-
    /// efficiency proxy (idle pilot cores burn allocation and power for
    /// no work). In (0, 1] for any run that executed something.
    pub fn allocation_efficiency(&self) -> f64 {
        if self.charged_core_hours <= 0.0 {
            0.0
        } else {
            self.used_core_hours / self.charged_core_hours
        }
    }
}

/// Execute `app_config` under `strategy` on the given resource pool.
/// Returns an error if the plan cannot be derived or the run misses its
/// deadline.
///
/// ```
/// use aimes::middleware::{run_application, RunOptions};
/// use aimes::paper;
/// use aimes_skeleton::{paper_bag, TaskDurationSpec};
/// use aimes_sim::SimTime;
///
/// let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
/// let result = run_application(
///     &paper::testbed(),
///     &app,
///     &paper::late_strategy(3),
///     &RunOptions {
///         seed: 1,
///         submit_at: SimTime::from_secs(4.0 * 3600.0),
///         ..Default::default()
///     },
/// ).unwrap();
/// assert_eq!(result.units_done, 16);
/// let b = &result.breakdown;
/// assert!(b.tw + b.tx + b.ts >= b.ttc); // components overlap inside TTC
/// ```
pub fn run_application(
    resources: &[ClusterConfig],
    app_config: &SkeletonConfig,
    strategy: &ExecutionStrategy,
    options: &RunOptions,
) -> Result<RunResult, RunError> {
    // Construction-time validation, mirroring FaultSpec::validate: a
    // zero-capacity recorder or an inverted staleness ladder cannot mean
    // what it says, so refuse to run it.
    options
        .info
        .validate()
        .map_err(RunError::InvalidInfoConfig)?;
    if let Some(rec) = &options.recovery {
        rec.validate().map_err(RunError::InvalidRecoveryPolicy)?;
    }
    let recorder = Rc::new(RefCell::new(
        FlightRecorder::new(options.recorder_capacity).map_err(RunError::InvalidRecorderConfig)?,
    ));
    let seed = options.seed;
    let dump_dir = options.recorder_dump_dir.clone();
    let run_tag = options.run_tag.clone();
    // Post-mortem hook: freeze the recorder's tail into a checksummed
    // snapshot file, named after the death reason.
    let dump = {
        let recorder = recorder.clone();
        let dump_dir = dump_dir.clone();
        let run_tag = run_tag.clone();
        move |reason: &str| {
            dump_snapshot(
                dump_dir.as_deref(),
                run_tag.as_deref(),
                seed,
                &recorder.borrow(),
                reason,
            )
        }
    };

    let tracer = match &options.tracer {
        Some(t) => t.clone(),
        None if options.trace => Tracer::new(),
        None => Tracer::disabled(),
    };
    let mut sim = Simulation::with_tracer(options.seed, tracer);
    if let Some(telemetry) = &options.telemetry {
        sim.attach_metrics(telemetry.registry().clone());
    }
    if let Some(profiler) = &options.profiler {
        sim.attach_profiler(profiler.clone());
    }

    // Resource layer: clusters with background load, SAGA session, bundle.
    let mut session = Session::new();
    let mut bundle = Bundle::with_info_config(options.info.clone());
    let mut clusters: Vec<Cluster> = Vec::new();
    for cfg in resources {
        let cluster = Cluster::new(cfg.clone());
        cluster.install(&mut sim);
        session.add_resource(&sim, cluster.clone());
        bundle.add(cluster.clone());
        clusters.push(cluster);
    }
    let session = Rc::new(session);
    // Keep a handle to the bundle's information channel: the bundle
    // itself may move into the re-planner below, but the fallback
    // counters must still be readable at run end.
    let info_handle = bundle.info_handle();
    info_handle.borrow_mut().set_metrics(sim.metrics().clone());
    info_handle
        .borrow_mut()
        .set_profiler(sim.profiler().clone());

    // Compile the fault model against the run seed. Everything below is
    // gated on `schedule` so a fault-free run replays the exact event and
    // RNG streams of a build without fault support.
    if let Some(spec) = &options.faults {
        spec.validate().map_err(RunError::InvalidFaultSpec)?;
    }
    let schedule = options
        .faults
        .as_ref()
        .filter(|spec| !spec.is_noop())
        .map(|spec| {
            let names: Vec<String> = clusters.iter().map(|c| c.name()).collect();
            let mut fault_rng = sim.fork_rng("faults");
            spec.compile(&names, &mut fault_rng)
        });
    if let Some(sched) = &schedule {
        if sched.launch_transient_chance > 0.0 || sched.launch_permanent_chance > 0.0 {
            for cluster in &clusters {
                if let Some(svc) = session.service(&cluster.name()) {
                    svc.inject_launch_faults(
                        sched.launch_transient_chance,
                        sched.launch_permanent_chance,
                    );
                }
            }
        }
    }

    // Generate the application (same seed → same workload across
    // strategies with the same experiment seed).
    let mut app_rng = sim.fork_rng("skeleton");
    let app = SkeletonApp::generate(app_config, &mut app_rng)
        .map_err(|e| RunError::Skeleton(e.to_string()))?;
    let n_tasks = app.tasks().len() as u32;

    // Let the resource pool evolve to the submission instant. The marker
    // event pins the clock there even if the pool is idle.
    sim.schedule_at(options.submit_at, |_| {});
    sim.run_until(options.submit_at);
    let submitted = options.submit_at.max(sim.now());
    debug_assert_eq!(submitted, sim.now());

    // Information-plane wiring. The sink journals and flight-records
    // every degraded decision (it never fires on a healthy channel); the
    // disposition closure answers "what shape is the channel in" from the
    // compiled info-fault model, on its own per-resource forked streams
    // so queries neither consume nor disturb any other stream.
    {
        let jr = options.journal.clone();
        let rec = recorder.clone();
        info_handle.borrow_mut().set_sink(Box::new(move |at, d| {
            let event = JournalEvent::InfoFallback {
                resource: d.resource.clone(),
                class: d.class.label().to_string(),
                rung: d.rung.label().to_string(),
                age_secs: d.age.as_secs(),
                wait_secs: d.wait.map(|w| w.as_secs()),
            };
            record_event(at, event, &rec, &jr);
        }));
    }
    if let Some(sched) = &schedule {
        if !sched.info.is_noop() {
            let info_faults = sched.info.clone();
            let info_rng = sim.fork_rng("info");
            let submitted_secs = submitted.as_secs();
            let mut streams: BTreeMap<String, aimes_sim::SimRng> = BTreeMap::new();
            info_handle
                .borrow_mut()
                .set_disposition(Box::new(move |resource, now| {
                    let rng = streams
                        .entry(resource.to_string())
                        .or_insert_with(|| info_rng.fork(&format!("info.{resource}")));
                    match info_faults.outcome(resource, now.as_secs() - submitted_secs, rng) {
                        InfoOutcome::Ok => InfoDisposition::Ok,
                        InfoOutcome::Corrupt => InfoDisposition::Corrupt,
                        InfoOutcome::Unavailable => InfoDisposition::Unavailable,
                    }
                }));
        }
    }
    record_event(
        sim.now(),
        JournalEvent::RunStarted {
            seed: options.seed,
            strategy: strategy.label(),
            n_tasks,
        },
        &recorder,
        &options.journal,
    );

    // Steps 1–4: derive the plan at submission time.
    let em = ExecutionManager::default();
    let mut selection_rng = sim.fork_rng("resource-selection");
    let plan = {
        let _prof = sim.profiler().scope("middleware.plan");
        em.derive_plan_with_rng(submitted, &app, &mut bundle, strategy, &mut selection_rng)
            .map_err(RunError::Unplannable)?
    };

    // Step 5–6: enact. Fault chances and recovery knobs are threaded into
    // the unit manager's config; the pilot manager gets its healing policy.
    let mut um_config = plan.um_config.clone();
    if let Some(sched) = &schedule {
        um_config.unit_fault_chance = sched.unit_failure_chance;
        um_config.unit_fault_permanent_chance = sched.unit_permanent_chance;
    }
    if let Some(rec) = &options.recovery {
        um_config.retry_backoff = rec.unit_retry_backoff;
        um_config.retry_backoff_cap = rec.replacement_backoff_cap;
        um_config.checkpoint_interval = rec.checkpoint_interval;
    }
    um_config.validate().map_err(RunError::InvalidUnitConfig)?;
    let pm = PilotManager::new(session.clone());
    if let Some(rec) = options.recovery.as_ref().filter(|r| r.pilot_replacement) {
        pm.set_recovery(PilotRecovery {
            max_replacements: rec.max_replacements_per_pilot,
            backoff: rec.replacement_backoff,
            backoff_cap: rec.replacement_backoff_cap,
            blacklist_after: rec.blacklist_after,
            // Exactly one layer owns cross-resource recovery: with
            // re-planning on, pilot replacement stays on-resource.
            reroute: !rec.replan_on_resource_loss,
        });
    }
    // The detection layer (when configured) is the only failure oracle
    // the rest of this function may consult: agents heartbeat, the
    // manager suspects and declares, and each resource's SAGA service
    // trips a circuit breaker on repeated transient failures. Injection
    // ground truth stops feeding the recovery path below.
    let detection = options.recovery.as_ref().and_then(|r| r.detection.clone());
    if let Some(det) = &detection {
        let mode = match det.phi {
            Some(phi) => DetectionMode::PhiAccrual {
                suspect_phi: phi.suspect_phi,
                declare_phi: phi.declare_phi,
                window: phi.window,
            },
            None => DetectionMode::Timeout,
        };
        pm.set_detection(DetectionPolicy {
            heartbeat_interval: SimDuration::from_secs(det.heartbeat_secs),
            suspect_after: SimDuration::from_secs(det.suspect_after_secs),
            declare_after: SimDuration::from_secs(det.declare_after_secs),
            mode,
            confirm_with_status_query: det.confirm_with_status_query,
        });
        for cluster in &clusters {
            if let Some(svc) = session.service(&cluster.name()) {
                svc.enable_breaker(BreakerConfig {
                    failure_threshold: det.breaker_failure_threshold,
                    cooldown: SimDuration::from_secs(det.breaker_cooldown_secs),
                });
            }
        }
    }
    let um = UnitManager::new(pm.clone(), um_config);
    let finished: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    {
        let pm2 = pm.clone();
        let fin = finished.clone();
        um.on_all_done(move |sim| {
            *fin.borrow_mut() = Some(sim.now());
            pm2.cancel_all(sim);
        });
    }
    // Journal + flight-recorder wiring: subscribe before anything is
    // submitted so the very first transitions are captured. The recorder
    // is always on; the journal only when the caller asked for one.
    // Entry order within one instant is fixed by subscription order,
    // hence deterministic.
    {
        let jr = options.journal.clone();
        let rec = recorder.clone();
        let pm2 = pm.clone();
        pm.subscribe(move |sim, pilot, state| {
            let desc = pm2.pilot(pilot).description;
            record_event(
                sim.now(),
                JournalEvent::PilotTransition {
                    pilot: pilot.0,
                    state: format!("{state:?}"),
                    resource: desc.resource,
                    cores: desc.cores,
                },
                &rec,
                &jr,
            );
        });
        let jr = options.journal.clone();
        let rec = recorder.clone();
        let um2 = um.clone();
        um.subscribe(move |sim, unit, state| {
            let u = um2.unit(unit);
            record_event(
                sim.now(),
                JournalEvent::UnitTransition {
                    unit: unit.0,
                    state: format!("{state:?}"),
                    pilot: u.pilot.map(|p| p.0),
                    cores: u.task.cores,
                },
                &rec,
                &jr,
            );
        });
        let jr = options.journal.clone();
        let rec = recorder.clone();
        um.on_salvage(move |sim, unit, ev| {
            let event = match ev {
                SalvageEvent::Checkpoint { progress_secs } => JournalEvent::Checkpoint {
                    unit: unit.0,
                    progress_secs,
                },
                SalvageEvent::Resume { salvaged_secs } => JournalEvent::ResumeFromCheckpoint {
                    unit: unit.0,
                    salvaged_secs,
                },
            };
            record_event(sim.now(), event, &rec, &jr);
        });
        let jr = options.journal.clone();
        let rec = recorder.clone();
        let dump_dir2 = dump_dir.clone();
        let run_tag2 = run_tag.clone();
        pm.on_detector_event(move |sim, ev| {
            let event = match ev {
                DetectorEvent::Suspected {
                    pilot,
                    resource,
                    silent_for,
                } => JournalEvent::Detector {
                    pilot: pilot.0,
                    resource: resource.clone(),
                    verdict: "Suspected".into(),
                    silent_secs: silent_for.as_secs(),
                },
                DetectorEvent::Recovered {
                    pilot,
                    resource,
                    suspected_for,
                } => JournalEvent::Detector {
                    pilot: pilot.0,
                    resource: resource.clone(),
                    verdict: "Recovered".into(),
                    silent_secs: suspected_for.as_secs(),
                },
                DetectorEvent::DeclaredDead {
                    pilot,
                    resource,
                    silent_for,
                } => JournalEvent::Detector {
                    pilot: pilot.0,
                    resource: resource.clone(),
                    verdict: "DeclaredDead".into(),
                    silent_secs: silent_for.as_secs(),
                },
                DetectorEvent::StaleSignal {
                    pilot,
                    resource,
                    detail,
                } => JournalEvent::StaleSignal {
                    pilot: pilot.0,
                    resource: resource.clone(),
                    detail: detail.clone(),
                },
            };
            record_event(sim.now(), event, &rec, &jr);
            // A Declared-Dead verdict is a death certificate: snapshot
            // the tail now, while the evidence is still in the ring.
            if let DetectorEvent::DeclaredDead { resource, .. } = ev {
                dump_snapshot(
                    dump_dir2.as_deref(),
                    run_tag2.as_deref(),
                    seed,
                    &rec.borrow(),
                    &format!("declared-dead-{resource}"),
                );
            }
        });
        let jr = options.journal.clone();
        let rec = recorder.clone();
        pm.on_blacklist(move |sim, resource| {
            record_event(
                sim.now(),
                JournalEvent::Blacklist {
                    resource: resource.to_string(),
                },
                &rec,
                &jr,
            );
        });
        for cluster in &clusters {
            let Some(svc) = session.service(&cluster.name()) else {
                continue;
            };
            let jr = options.journal.clone();
            let rec = recorder.clone();
            svc.on_breaker_trip(move |sim, resource| {
                record_event(
                    sim.now(),
                    JournalEvent::BreakerTrip {
                        resource: resource.to_string(),
                    },
                    &rec,
                    &jr,
                );
            });
        }
    }
    pm.submit(&mut sim, plan.pilots.clone());
    um.submit_units(&mut sim, app.tasks());

    // Arm the fault schedule and the recovery machinery. All times are
    // relative to submission. The re-plan support is shared by the
    // scheduled fault model and the signal-driven path (breaker trips),
    // so it sits outside the schedule gate; a fault-free, detection-free
    // run skips all of it and replays the legacy event stream exactly.
    let lost: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let replans: Rc<Cell<u64>> = Rc::new(Cell::new(0));
    let domain_alarms: Rc<Cell<u64>> = Rc::new(Cell::new(0));
    let evacuations: Rc<Cell<u64>> = Rc::new(Cell::new(0));
    let evacuation_lead: Rc<RefCell<Option<f64>>> = Rc::new(RefCell::new(None));
    if schedule.is_some() || detection.is_some() {
        let replanner = options
            .recovery
            .as_ref()
            .filter(|r| r.replan_on_resource_loss)
            .map(|_| {
                (
                    Rc::new(RefCell::new(bundle)),
                    Rc::new(RefCell::new(sim.fork_rng("replan"))),
                    app.clone(),
                    strategy.clone(),
                )
            });
        // Re-derive the strategy over the resources the pilot manager can
        // still route to, rebuilding capacity for `doomed` pilots. Shared
        // by the two ways a resource drops out: a scheduled Permanent
        // outage, and manager-initiated blacklisting after repeated
        // launch failures.
        let all_names: Vec<String> = clusters.iter().map(|c| c.name()).collect();
        type Replan = Rc<dyn Fn(&mut Simulation, &str, usize)>;
        let do_replan: Replan = {
            let pm2 = pm.clone();
            let replans2 = replans.clone();
            let journal2 = options.journal.clone();
            Rc::new(move |sim: &mut Simulation, resource: &str, doomed: usize| {
                let Some((bundle, rng, app, strategy)) = &replanner else {
                    return;
                };
                if doomed == 0 {
                    return;
                }
                let blacklisted = pm2.blacklisted();
                let survivors: Vec<String> = all_names
                    .iter()
                    .filter(|n| !blacklisted.contains(n))
                    .cloned()
                    .collect();
                if survivors.is_empty() {
                    sim.tracer().record(
                        sim.now(),
                        "middleware",
                        TraceKind::Manager(ManagerPhase::ReplanFailed),
                        "no surviving resources",
                    );
                    sim.metrics()
                        .inc(|| "middleware.recovery.replan_failed".into());
                    return;
                }
                let mut replan_strategy = strategy.clone();
                replan_strategy.pilot_count = (doomed as u32).min(survivors.len() as u32).max(1);
                replan_strategy.selection = ResourceSelection::Fixed(survivors.clone());
                let _prof = sim.profiler().scope("middleware.plan");
                let em = ExecutionManager::default();
                match em.derive_plan_with_rng(
                    sim.now(),
                    app,
                    &mut bundle.borrow_mut(),
                    &replan_strategy,
                    &mut rng.borrow_mut(),
                ) {
                    Ok(plan2) => {
                        sim.tracer().record_with(sim.now(), || {
                            (
                                "middleware".into(),
                                TraceKind::Manager(ManagerPhase::Replan),
                                format!(
                                    "lost {resource}: {} pilots over [{}]",
                                    plan2.pilots.len(),
                                    survivors.join(", ")
                                ),
                            )
                        });
                        sim.metrics().inc(|| "middleware.recovery.replans".into());
                        if let Some(jr) = &journal2 {
                            jr.borrow_mut().record(
                                sim.now(),
                                JournalEvent::Replan {
                                    resource: resource.to_string(),
                                    pilots: plan2.pilots.len() as u32,
                                },
                            );
                        }
                        pm2.submit(sim, plan2.pilots);
                        replans2.set(replans2.get() + 1);
                    }
                    Err(e) => {
                        sim.tracer().record(
                            sim.now(),
                            "middleware",
                            TraceKind::Manager(ManagerPhase::ReplanFailed),
                            e,
                        );
                        sim.metrics()
                            .inc(|| "middleware.recovery.replan_failed".into());
                    }
                }
            })
        };
        // Two signal-driven triggers can condemn the same resource (a
        // tripped breaker and manager-initiated blacklisting); one
        // re-plan per resource is enough.
        let replanned: Rc<RefCell<HashSet<String>>> = Rc::new(RefCell::new(HashSet::new()));
        // A resource blacklisted for eating launches is as gone as a
        // decommissioned one, but arrives through the pilot manager, not
        // the outage schedule — and with re-planning enabled the pilot
        // layer deliberately skips rerouting. Re-plan here too, or nobody
        // recovers and the pool drains.
        {
            let pm2 = pm.clone();
            let do_replan = do_replan.clone();
            let replanned2 = replanned.clone();
            pm.on_blacklist(move |sim, resource| {
                if !replanned2.borrow_mut().insert(resource.to_string()) {
                    return;
                }
                // Any pilot still alive there is doomed; rebuild at least
                // one elsewhere (the trigger pilot is already terminal).
                let doomed = pm2
                    .pilots()
                    .iter()
                    .filter(|p| p.description.resource == resource && !p.state.is_terminal())
                    .count()
                    .max(1);
                do_replan(sim, resource, doomed);
            });
        }
        // Breaker-driven recovery: with detection on, an open breaker IS
        // the verdict that a resource eats every request. Stop routing
        // to it and rebuild the lost capacity over the survivors — no
        // peeking at the outage schedule.
        if detection.is_some() {
            for cluster in &clusters {
                let Some(svc) = session.service(&cluster.name()) else {
                    continue;
                };
                let pm2 = pm.clone();
                let do_replan = do_replan.clone();
                let replanned2 = replanned.clone();
                svc.on_breaker_trip(move |sim, resource| {
                    if !replanned2.borrow_mut().insert(resource.to_string()) {
                        return;
                    }
                    let doomed = pm2
                        .pilots()
                        .iter()
                        .filter(|p| p.description.resource == resource && !p.state.is_terminal())
                        .count()
                        .max(1);
                    pm2.blacklist(resource);
                    do_replan(sim, resource, doomed);
                });
            }
        }
        // Proactive evacuation: enough failure signals inside one declared
        // failure domain within the alarm window predict a cascade. The
        // alarmed domain's surviving pilots are drained and their capacity
        // rebuilt on unaffected domains, instead of waiting for each pilot
        // to be individually declared dead. Armed only when the fault
        // model declares domains AND the recovery policy opts in.
        let evac_spec = options.recovery.as_ref().and_then(|r| r.evacuation);
        let evac_domains = options
            .faults
            .as_ref()
            .and_then(|f| f.cascade.as_ref())
            .map(|c| c.domains.clone());
        if let (Some(espec), Some(domains)) = (evac_spec, evac_domains) {
            let domain_of: Rc<HashMap<String, String>> = Rc::new(
                domains
                    .iter()
                    .flat_map(|d| d.members.iter().map(move |m| (m.clone(), d.name.clone())))
                    .collect(),
            );
            let members_of: HashMap<String, Vec<String>> = domains
                .iter()
                .map(|d| (d.name.clone(), d.members.clone()))
                .collect();
            let window = SimDuration::from_secs(espec.alarm_window_secs);
            let threshold = espec.alarm_threshold as usize;
            // Pilots drained by an alarm, awaiting their Canceled
            // transition (the drain goes through SAGA, so it lands later).
            let evacuating: Rc<RefCell<HashMap<PilotId, (String, String)>>> =
                Rc::new(RefCell::new(HashMap::new()));
            // Per-domain sliding window of failure-signal times + the
            // domains already alarmed (one alarm per domain is enough).
            type AlarmState = (HashMap<String, VecDeque<SimTime>>, HashSet<String>);
            let alarm_state: Rc<RefCell<AlarmState>> = Default::default();
            let first_alarm: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
            type SignalHook = Rc<dyn Fn(&mut Simulation, &str)>;
            let on_signal: SignalHook = {
                let domain_of = domain_of.clone();
                let alarm_state = alarm_state.clone();
                let pm2 = pm.clone();
                let do_replan = do_replan.clone();
                let replanned2 = replanned.clone();
                let evacuating2 = evacuating.clone();
                let jr = options.journal.clone();
                let rec = recorder.clone();
                let dump_dir2 = dump_dir.clone();
                let run_tag2 = run_tag.clone();
                let alarms2 = domain_alarms.clone();
                let first_alarm2 = first_alarm.clone();
                Rc::new(move |sim: &mut Simulation, resource: &str| {
                    let Some(domain) = domain_of.get(resource) else {
                        return;
                    };
                    let fire = {
                        let mut st = alarm_state.borrow_mut();
                        let (windows, alarmed) = &mut *st;
                        if alarmed.contains(domain) {
                            return;
                        }
                        let q = windows.entry(domain.clone()).or_default();
                        q.push_back(sim.now());
                        while let Some(&t) = q.front() {
                            if sim.now().since(t) > window {
                                q.pop_front();
                            } else {
                                break;
                            }
                        }
                        q.len() >= threshold && alarmed.insert(domain.clone())
                    };
                    if !fire {
                        return;
                    }
                    let members = members_of.get(domain).cloned().unwrap_or_default();
                    alarms2.set(alarms2.get() + 1);
                    first_alarm2.borrow_mut().get_or_insert(sim.now());
                    sim.metrics().inc(|| "middleware.domain_alarms".into());
                    sim.tracer().record_with(sim.now(), || {
                        (
                            "middleware".into(),
                            TraceKind::Manager(ManagerPhase::Replan),
                            format!("domain alarm {domain}: evacuating [{}]", members.join(", ")),
                        )
                    });
                    record_event(
                        sim.now(),
                        JournalEvent::DomainAlarm {
                            domain: domain.clone(),
                            members: members.clone(),
                        },
                        &rec,
                        &jr,
                    );
                    // A cascade verdict is a death certificate for the
                    // whole domain: snapshot now, with the alarmed domain
                    // and its members in the header.
                    dump_snapshot(
                        dump_dir2.as_deref(),
                        run_tag2.as_deref(),
                        seed,
                        &rec.borrow(),
                        &format!("domain-alarm-{domain} members={}", members.join(",")),
                    );
                    for member in &members {
                        // Mark as handled first so the generic breaker/
                        // blacklist hooks don't replan the same loss again.
                        replanned2.borrow_mut().insert(member.clone());
                        let doomed: Vec<PilotId> = pm2
                            .pilots()
                            .iter()
                            .filter(|p| &p.description.resource == member && !p.state.is_terminal())
                            .map(|p| p.id)
                            .collect();
                        pm2.blacklist(member);
                        for pid in &doomed {
                            evacuating2
                                .borrow_mut()
                                .insert(*pid, (domain.clone(), member.clone()));
                        }
                        for pid in &doomed {
                            pm2.cancel(sim, *pid);
                        }
                        do_replan(sim, member, doomed.len());
                    }
                })
            };
            // Feed the alarm from the failure signals this run actually
            // has: detector verdicts when detection is on, pilot deaths
            // (the oracle path) otherwise. Never both — a DeclaredDead
            // pilot also transitions to Failed, and one death is one
            // signal.
            if detection.is_some() {
                let on_signal2 = on_signal.clone();
                pm.on_detector_event(move |sim, ev| {
                    let resource = match ev {
                        DetectorEvent::Suspected { resource, .. }
                        | DetectorEvent::DeclaredDead { resource, .. } => resource.clone(),
                        _ => return,
                    };
                    on_signal2(sim, &resource);
                });
            } else {
                let pm2 = pm.clone();
                let on_signal2 = on_signal.clone();
                pm.subscribe(move |sim, pilot, state| {
                    if state == PilotState::Failed {
                        let resource = pm2.pilot(pilot).description.resource;
                        on_signal2(sim, &resource);
                    }
                });
            }
            // The drain watcher: an evacuated pilot reaching Canceled is
            // the evacuation taking effect — journal it and measure the
            // alarm → first-drain lead.
            {
                let evacuating2 = evacuating.clone();
                let jr = options.journal.clone();
                let rec = recorder.clone();
                let evacs2 = evacuations.clone();
                let first_alarm2 = first_alarm.clone();
                let lead2 = evacuation_lead.clone();
                pm.subscribe(move |sim, pilot, state| {
                    if state != PilotState::Canceled {
                        return;
                    }
                    let Some((domain, resource)) = evacuating2.borrow_mut().remove(&pilot) else {
                        return;
                    };
                    evacs2.set(evacs2.get() + 1);
                    sim.metrics().inc(|| "middleware.evacuations".into());
                    record_event(
                        sim.now(),
                        JournalEvent::Evacuation {
                            domain,
                            resource,
                            pilot: pilot.0,
                        },
                        &rec,
                        &jr,
                    );
                    if lead2.borrow().is_none() {
                        if let Some(alarm_at) = *first_alarm2.borrow() {
                            *lead2.borrow_mut() = Some(sim.now().since(alarm_at).as_secs());
                        }
                    }
                });
            }
        }
        if let Some(sched) = &schedule {
            if let Some(sf) = sched.staging.filter(|s| s.duration_secs > 0.0) {
                let start = submitted + SimDuration::from_secs(sf.at_secs.max(0.0));
                let factor = sf.bandwidth_factor.clamp(0.001, 1.0);
                let um2 = um.clone();
                sim.schedule_at(start, move |_| um2.set_origin_bandwidth_factor(factor));
                let um3 = um.clone();
                sim.schedule_at(
                    start + SimDuration::from_secs(sf.duration_secs),
                    move |_| um3.set_origin_bandwidth_factor(1.0),
                );
            }
            // Signal-level fault injection: heartbeats emitted inside each
            // window are delivered late, exercising the detector's
            // false-positive and stale-signal handling.
            for hd in &sched.heartbeat_delays {
                let from = submitted + SimDuration::from_secs(hd.at_secs.max(0.0));
                pm.inject_heartbeat_delay(
                    &hd.resource,
                    from,
                    from + SimDuration::from_secs(hd.duration_secs),
                    SimDuration::from_secs(hd.delay_secs),
                );
            }
            for o in &sched.outages {
                let Some(cluster) = clusters.iter().find(|c| c.name() == o.resource).cloned()
                else {
                    continue; // the spec may name resources outside this pool
                };
                let at = submitted + SimDuration::from_secs(o.at.as_secs().max(0.0));
                match o.kind {
                    OutageKind::Outage | OutageKind::Drain => {
                        let kill = o.kind == OutageKind::Outage;
                        let duration = o.duration;
                        sim.schedule_at(at, move |sim| {
                            cluster.inject_outage(sim, duration, kill);
                        });
                    }
                    OutageKind::Permanent if detection.is_some() => {
                        // No oracle: decommission the cluster and walk away.
                        // Recovery must come entirely from missed heartbeats
                        // and tripped breakers. `lost` still feeds error
                        // classification if the run cannot finish.
                        let lost2 = lost.clone();
                        let resource = o.resource.clone();
                        sim.schedule_at(at, move |sim| {
                            cluster.decommission(sim);
                            lost2.borrow_mut().push(resource.clone());
                        });
                    }
                    OutageKind::Permanent => {
                        let pm2 = pm.clone();
                        let lost2 = lost.clone();
                        let do_replan = do_replan.clone();
                        let resource = o.resource.clone();
                        sim.schedule_at(at, move |sim| {
                            // Count live pilots before the axe falls so the
                            // re-plan knows how much capacity to rebuild.
                            let doomed = pm2
                                .pilots()
                                .iter()
                                .filter(|p| {
                                    p.description.resource == resource && !p.state.is_terminal()
                                })
                                .count();
                            // Blacklist first: replacement logic triggered by
                            // the kills below must not resubmit to a corpse.
                            pm2.blacklist(&resource);
                            cluster.decommission(sim);
                            lost2.borrow_mut().push(resource.clone());
                            do_replan(sim, &resource, doomed);
                        });
                    }
                }
            }
        }
    }

    // Run until the application completes or the deadline passes.
    let deadline = submitted + options.deadline;
    let interrupt_at = options.interrupt_at.map(|d| submitted + d);
    while finished.borrow().is_none() {
        if let Some(t) = interrupt_at {
            // Simulated middleware crash: stop dead. Whatever the journal
            // holds now is exactly what a crashed writer would have
            // persisted.
            if sim.now() >= t {
                dump("interrupted");
                sim.publish_engine_stats();
                return Err(RunError::Interrupted {
                    at: sim.now(),
                    stats: um.stats(),
                });
            }
        }
        if sim.now() > deadline {
            dump("deadline-exceeded");
            sim.publish_engine_stats();
            return Err(RunError::DeadlineExceeded {
                n_tasks,
                strategy_label: strategy.label(),
                at: sim.now(),
                stats: um.stats(),
            });
        }
        if !sim.step() {
            break;
        }
    }
    // Queue-health counters go to the metrics registry and profiler on
    // every exit, success or not — passive on both sinks.
    sim.publish_engine_stats();
    let finished_at = match *finished.borrow() {
        Some(t) => t,
        None => {
            let stats = um.stats();
            return Err(match lost.borrow().first() {
                Some(resource) => {
                    dump(&format!("resource-lost-{resource}"));
                    RunError::ResourceLost {
                        resource: resource.clone(),
                        stats,
                    }
                }
                None => {
                    dump("pilots-drained");
                    RunError::PilotsDrained { stats }
                }
            });
        }
    };

    let stats: UnitManagerStats = um.stats();
    let units = um.units();
    let pilots: Vec<Pilot> = pm.pilots();
    let mut breakdown = decompose(&units, &pilots, submitted, finished_at);
    // Td: union of the silent → declared windows. Only the detector
    // knows when silence began, so decompose cannot derive this from
    // unit/pilot timestamps.
    breakdown.td = interval_union(pm.detection_windows());
    record_event(
        finished_at,
        JournalEvent::RunFinished {
            ttc_secs: breakdown.ttc.as_secs(),
        },
        &recorder,
        &options.journal,
    );
    // Allocation accounting (§V metrics): charged = active pilot spans,
    // used = task-execution core time.
    let charged_core_hours: f64 = pilots
        .iter()
        .filter_map(|p| {
            let active = p.time_of(aimes_pilot::PilotState::Active)?;
            // Pilots still alive at run end (their cancellation lands just
            // after the last unit finishes) are charged up to run end.
            let end = if p.state.is_terminal() {
                p.timestamps.last().map(|(_, t)| *t)?
            } else {
                finished_at
            };
            Some(f64::from(p.description.cores) * end.saturating_since(active).as_hours())
        })
        .sum();
    let used_core_hours: f64 = units
        .iter()
        .filter_map(|u| {
            u.execution_span()
                .map(|d| f64::from(u.task.cores) * d.as_hours())
        })
        .sum();
    let recovery_times = pm.recovery_times();
    let mean_recovery_secs = if recovery_times.is_empty() {
        0.0
    } else {
        recovery_times.iter().map(|d| d.as_secs()).sum::<f64>() / recovery_times.len() as f64
    };
    let detection_times = pm.detection_times();
    let mean_detection_secs = if detection_times.is_empty() {
        0.0
    } else {
        detection_times.iter().map(|d| d.as_secs()).sum::<f64>() / detection_times.len() as f64
    };
    // Span assembly: pilot lifetimes and unit Executing windows become
    // complete events on per-resource tracks in the Chrome trace. Done
    // here, after the run, because only now are all end times known.
    let metrics = options.telemetry.as_ref().map(|telemetry| {
        for p in &pilots {
            let Some(&(_, start)) = p.timestamps.first() else {
                continue;
            };
            let end = if p.state.is_terminal() {
                p.timestamps.last().map(|&(_, t)| t).unwrap_or(finished_at)
            } else {
                finished_at
            };
            telemetry.add_span(Span {
                track: p.description.resource.clone(),
                lane: p.id.to_string(),
                name: p.id.to_string(),
                category: "pilot".into(),
                start,
                end,
                args: vec![
                    ("state".into(), format!("{:?}", p.state)),
                    ("cores".into(), p.description.cores.to_string()),
                ],
            });
        }
        for u in &units {
            let Some(pid) = u.pilot else { continue };
            let Some(pilot) = pilots.iter().find(|p| p.id == pid) else {
                continue;
            };
            // A restarted unit has several Executing entries; each window
            // closes at the next transition (or run end if interrupted).
            for (i, &(state, start)) in u.timestamps.iter().enumerate() {
                if state != UnitState::Executing {
                    continue;
                }
                let end = u
                    .timestamps
                    .get(i + 1)
                    .map(|&(_, t)| t)
                    .unwrap_or(finished_at);
                telemetry.add_span(Span {
                    track: pilot.description.resource.clone(),
                    lane: u.id.to_string(),
                    name: u.id.to_string(),
                    category: "unit".into(),
                    start,
                    end,
                    args: vec![
                        ("pilot".into(), pid.to_string()),
                        ("cores".into(), u.task.cores.to_string()),
                    ],
                });
            }
        }
        telemetry.summary()
    });
    let info_stats = info_handle.borrow().stats();
    let (wasted, salvaged) = salvage_split(&units);
    let evacuation_lead_secs = *evacuation_lead.borrow();
    Ok(RunResult {
        metrics,
        info_fallbacks: info_stats.info_fallbacks(),
        stale_decision_secs: info_stats.stale_decision_secs,
        charged_core_hours,
        used_core_hours,
        replacements: pm.replacements(),
        replans: replans.get(),
        wasted_core_hours: wasted,
        salvaged_core_hours: salvaged,
        domain_alarms: domain_alarms.get(),
        evacuations: evacuations.get(),
        evacuation_lead_secs,
        mean_recovery_secs,
        mean_detection_secs,
        false_suspicions: pm.false_suspicions(),
        strategy_label: strategy.label(),
        n_tasks,
        breakdown,
        resources_used: plan.resources,
        units_done: stats.done,
        units_failed: stats.failed,
        restarts: stats.restarts,
        pilot_setup_secs: pilots
            .iter()
            .filter_map(|p| p.setup_time().map(|d| d.as_secs()))
            .collect(),
    })
}

/// Feed one journal-shaped event to the always-on flight recorder and,
/// when the caller asked for one, the run journal. The recorder line is
/// the event's JSON, so a snapshot tail is directly comparable to the
/// journal's tail.
fn record_event(
    at: SimTime,
    event: JournalEvent,
    recorder: &Rc<RefCell<FlightRecorder>>,
    journal: &Option<Rc<RefCell<RunJournal>>>,
) {
    recorder
        .borrow_mut()
        .record_with(at, || serde_json::to_string(&event).unwrap_or_default());
    if let Some(jr) = journal {
        jr.borrow_mut().record(at, event);
    }
}

/// Write a checksummed snapshot of the recorder into `dir` (no-op when
/// unset). Dump failures are swallowed: post-mortem writing must never
/// turn a diagnosable death into a different one.
///
/// Concurrent runs (the worker pool) may share `dir`, and paired-seed
/// sweep arms may even share `seed`; the `tag` keeps their filenames
/// apart, and the write goes to a unique temp file followed by an atomic
/// rename so a reader never observes a half-written or interleaved dump.
fn dump_snapshot(
    dir: Option<&std::path::Path>,
    tag: Option<&str>,
    seed: u64,
    recorder: &FlightRecorder,
    reason: &str,
) {
    let Some(dir) = dir else { return };
    let snapshot = recorder.snapshot(reason);
    fn sanitize(s: &str) -> String {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' {
                    c
                } else {
                    '-'
                }
            })
            .collect()
    }
    let name = match tag {
        Some(tag) => format!("flight-{}-{seed}-{}.txt", sanitize(tag), sanitize(reason)),
        None => format!("flight-{seed}-{}.txt", sanitize(reason)),
    };
    let _ = std::fs::create_dir_all(dir);
    static DUMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let tmp = dir.join(format!(
        "{name}.tmp-{}-{}",
        std::process::id(),
        DUMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    match std::fs::write(&tmp, snapshot.to_text()) {
        Ok(()) => {
            if std::fs::rename(&tmp, dir.join(&name)).is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
        }
        Err(_) => {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Resume a run that was interrupted mid-flight from its journal.
///
/// Because the whole middleware is deterministic in the run seed, resume
/// is *re-execution with verification*: the run is replayed from scratch
/// (with the interrupt disarmed) while journaling, and the interrupted
/// journal must be a bit-for-bit prefix of the replay. Any divergence —
/// wrong seed, different app or strategy, edited journal — yields
/// [`RunError::JournalDiverged`] instead of fabricated history. On
/// success the returned [`RunResult`] (TTC included) is identical to the
/// run that was never interrupted.
pub fn resume_application(
    resources: &[ClusterConfig],
    app_config: &SkeletonConfig,
    strategy: &ExecutionStrategy,
    options: &RunOptions,
    interrupted: &RunJournal,
) -> Result<RunResult, RunError> {
    interrupted
        .verify()
        .map_err(|(seq, detail)| RunError::JournalDiverged { seq, detail })?;
    let mut opts = options.clone();
    opts.interrupt_at = None;
    let replay = Rc::new(RefCell::new(RunJournal::new()));
    opts.journal = Some(replay.clone());
    let result = run_application(resources, app_config, strategy, &opts)?;
    interrupted
        .is_prefix_of(&replay.borrow())
        .map_err(|(seq, detail)| RunError::JournalDiverged { seq, detail })?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_skeleton::{paper_bag, TaskDurationSpec};

    fn idle_pool() -> Vec<ClusterConfig> {
        ["a", "b", "c", "d"]
            .iter()
            .map(|n| ClusterConfig::test(n, 4096))
            .collect()
    }

    #[test]
    fn early_strategy_completes_on_idle_pool() {
        let app = paper_bag(32, TaskDurationSpec::Uniform15Min);
        let result = run_application(
            &idle_pool(),
            &app,
            &ExecutionStrategy::paper_early(),
            &RunOptions {
                seed: 1,
                submit_at: SimTime::from_secs(100.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.units_done, 32);
        assert_eq!(result.units_failed, 0);
        assert_eq!(result.resources_used.len(), 1);
        // Idle pool: Tw is just middleware latency + bootstrap (< 60 s).
        assert!(result.breakdown.tw.as_secs() < 60.0);
        // TTC ≈ Tw + staging + 900 s execution.
        let ttc = result.breakdown.ttc.as_secs();
        assert!(ttc > 900.0 && ttc < 1200.0, "ttc {ttc}");
        // Components never exceed TTC.
        assert!(result.breakdown.tx <= result.breakdown.ttc);
        assert!(result.breakdown.ts <= result.breakdown.ttc);
        // Allocation accounting: 32 tasks x 15 min = 8 used core-hours;
        // the single 32-core pilot is charged for its whole active span,
        // so efficiency is high but below 1 (staging + cancellation lag).
        assert!((result.used_core_hours - 8.0).abs() < 0.01);
        assert!(result.charged_core_hours >= result.used_core_hours);
        let eff = result.allocation_efficiency();
        assert!(eff > 0.5 && eff <= 1.0, "efficiency {eff}");
    }

    #[test]
    fn late_binding_charges_more_allocation_for_idle_pilots() {
        // Same app under early-1p vs late-3p on an idle pool: the late
        // strategy keeps extra pilots alive while the first one does the
        // work → lower allocation efficiency.
        let app = paper_bag(32, TaskDurationSpec::Uniform15Min);
        let opts = RunOptions {
            seed: 4,
            submit_at: SimTime::from_secs(100.0),
            ..Default::default()
        };
        let early =
            run_application(&idle_pool(), &app, &ExecutionStrategy::paper_early(), &opts).unwrap();
        let late =
            run_application(&idle_pool(), &app, &ExecutionStrategy::paper_late(3), &opts).unwrap();
        assert!((early.used_core_hours - late.used_core_hours).abs() < 1e-6);
        assert!(
            late.allocation_efficiency() < early.allocation_efficiency(),
            "late {} vs early {}",
            late.allocation_efficiency(),
            early.allocation_efficiency()
        );
    }

    #[test]
    fn late_strategy_uses_three_resources() {
        let app = paper_bag(24, TaskDurationSpec::Gaussian);
        let result = run_application(
            &idle_pool(),
            &app,
            &ExecutionStrategy::paper_late(3),
            &RunOptions {
                seed: 2,
                submit_at: SimTime::from_secs(100.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.units_done, 24);
        assert_eq!(result.resources_used.len(), 3);
        assert_eq!(result.pilot_setup_secs.len(), 3);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let app = paper_bag(16, TaskDurationSpec::Gaussian);
        let opts = RunOptions {
            seed: 7,
            submit_at: SimTime::from_secs(50.0),
            ..Default::default()
        };
        let run = || {
            run_application(&idle_pool(), &app, &ExecutionStrategy::paper_late(2), &opts).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.resources_used, b.resources_used);
        assert_eq!(a.pilot_setup_secs, b.pilot_setup_secs);
    }

    #[test]
    fn detection_recovers_a_permanent_loss_without_an_oracle() {
        use aimes_fault::OutageSpec;
        // Resource "one" is decommissioned at t+300 s, and — unlike the
        // PR 1 oracle path — nobody tells the middleware: no blacklist,
        // no re-plan at the injection instant. Recovery must be driven
        // entirely by missed heartbeats (silent death → declaration) and
        // the circuit breaker tripping on the dead front end.
        let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
        let pool = vec![
            ClusterConfig::test("one", 256),
            ClusterConfig::test("two", 256),
        ];
        let mut strategy = crate::paper::late_strategy(1);
        strategy.selection = ResourceSelection::Fixed(vec!["one".into()]);
        let journal = Rc::new(RefCell::new(RunJournal::new()));
        let r = run_application(
            &pool,
            &app,
            &strategy,
            &RunOptions {
                seed: 13,
                submit_at: SimTime::from_secs(600.0),
                faults: Some(FaultSpec {
                    outages: vec![OutageSpec {
                        resource: "one".into(),
                        at_secs: 300.0,
                        duration_secs: 600.0,
                        kind: OutageKind::Permanent,
                    }],
                    ..FaultSpec::none()
                }),
                recovery: Some(RecoveryPolicy::with_detection()),
                journal: Some(journal.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.units_done, 16);
        assert!(r.replans >= 1, "the tripped breaker must trigger a re-plan");
        assert!(r.mean_detection_secs > 0.0, "a silent death was detected");
        assert!(r.breakdown.td > SimDuration::ZERO, "Td shows in the TTC");
        assert_eq!(r.false_suspicions, 0);
        // The journal shows the signal chain, in causal order: the pilot
        // was declared dead from silence, the breaker opened on the dead
        // front end, and only then was the strategy re-derived.
        let j = journal.borrow();
        assert!(j.verify().is_ok());
        let pos =
            |pred: &dyn Fn(&JournalEvent) -> bool| j.entries().iter().position(|e| pred(&e.event));
        let declared = pos(
            &|e| matches!(e, JournalEvent::Detector { verdict, .. } if verdict == "DeclaredDead"),
        )
        .expect("a DeclaredDead verdict is journaled");
        let tripped = pos(&|e| matches!(e, JournalEvent::BreakerTrip { .. }))
            .expect("a breaker trip is journaled");
        let replanned =
            pos(&|e| matches!(e, JournalEvent::Replan { .. })).expect("a re-plan is journaled");
        assert!(declared < replanned && tripped < replanned);
        assert!(matches!(
            j.entries().last().unwrap().event,
            JournalEvent::RunFinished { .. }
        ));
    }

    #[test]
    fn resume_from_an_interrupted_journal_reaches_identical_ttc() {
        use aimes_fault::OutageSpec;
        let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
        let pool = vec![
            ClusterConfig::test("one", 256),
            ClusterConfig::test("two", 256),
        ];
        let mut strategy = crate::paper::late_strategy(1);
        strategy.selection = ResourceSelection::Fixed(vec!["one".into()]);
        let faults = FaultSpec {
            outages: vec![OutageSpec {
                resource: "one".into(),
                at_secs: 300.0,
                duration_secs: 600.0,
                kind: OutageKind::Permanent,
            }],
            ..FaultSpec::none()
        };
        let opts = |journal, interrupt_at| RunOptions {
            seed: 29,
            submit_at: SimTime::from_secs(600.0),
            faults: Some(faults.clone()),
            recovery: Some(RecoveryPolicy::with_detection()),
            journal,
            interrupt_at,
            ..Default::default()
        };
        // The run that was never interrupted.
        let baseline = run_application(&pool, &app, &strategy, &opts(None, None)).unwrap();
        // The same run killed mid-recovery, journaling as it goes.
        let cut = Rc::new(RefCell::new(RunJournal::new()));
        let err = run_application(
            &pool,
            &app,
            &strategy,
            &opts(Some(cut.clone()), Some(SimDuration::from_secs(700.0))),
        )
        .unwrap_err();
        assert!(matches!(err, RunError::Interrupted { .. }), "{err}");
        let cut = cut.borrow();
        assert!(!cut.is_empty(), "the crash left a journal behind");
        // Crash-consistency: the on-disk form loses its torn tail, and
        // what survives is still a valid record to resume from.
        let mut text = cut.to_jsonl();
        let keep = text.len() - 10;
        text.truncate(keep);
        let recovered = RunJournal::from_jsonl(&text);
        assert!(recovered.len() < cut.len());
        let resumed =
            resume_application(&pool, &app, &strategy, &opts(None, None), &recovered).unwrap();
        assert_eq!(
            resumed.breakdown, baseline.breakdown,
            "resumed TTC must be bit-for-bit the uninterrupted TTC"
        );
        assert_eq!(resumed.units_done, baseline.units_done);
        assert_eq!(resumed.replans, baseline.replans);
        // A journal from a different run (wrong seed) is refused, not
        // silently replayed into fabricated history.
        let mut other = opts(None, None);
        other.seed = 30;
        let err = resume_application(&pool, &app, &strategy, &other, &recovered).unwrap_err();
        assert!(
            matches!(err, RunError::JournalDiverged { seq: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn oversized_app_fails_to_plan() {
        let small: Vec<ClusterConfig> = vec![ClusterConfig::test("tiny", 64)];
        let app = paper_bag(2048, TaskDurationSpec::Uniform15Min);
        let err = run_application(
            &small,
            &app,
            &ExecutionStrategy::paper_early(),
            &RunOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("qualify"), "{err}");
    }
}
