//! One end-to-end application execution through the integrated middleware.
//!
//! Mirrors Figure 1: the skeleton API describes the application (1), the
//! bundle API describes the resources (2a/2b), the Execution Manager
//! derives a strategy (3), pilots are described via the pilot system (4)
//! and scheduled via the SAGA layer (5), and units are executed on active
//! pilots with input/output staging (6). All pilots are cancelled when the
//! application completes "so as not to waste resources".

use crate::ttc::{decompose, wasted_core_hours, TtcBreakdown};
use aimes_bundle::Bundle;
use aimes_cluster::{Cluster, ClusterConfig};
use aimes_fault::{FaultSpec, OutageKind, RecoveryPolicy};
use aimes_pilot::{Pilot, PilotManager, PilotRecovery, UnitManager, UnitManagerStats};
use aimes_saga::Session;
use aimes_sim::{SimDuration, SimTime, Simulation, Tracer};
use aimes_skeleton::{SkeletonApp, SkeletonConfig};
use aimes_strategy::{ExecutionManager, ExecutionStrategy, ResourceSelection};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Options for one run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Experiment seed: drives background load, skeleton sampling,
    /// submission jitter, resource selection.
    pub seed: u64,
    /// When the application is handed to the middleware (the paper ran
    /// applications "at irregular intervals so as to avoid effects of
    /// short-term resource load patterns"); the experiment layer draws
    /// this from a window per repetition.
    pub submit_at: SimTime,
    /// Hard cap on simulated time after submission (runaway guard).
    pub deadline: SimDuration,
    /// Record a full trace (costs memory; off for sweeps).
    pub trace: bool,
    /// Deterministic fault model, compiled against the run seed. `None`
    /// (the default) injects nothing and leaves every event stream
    /// byte-identical to a build without fault support.
    pub faults: Option<FaultSpec>,
    /// Self-healing policy. `None` (the default) keeps the legacy
    /// behaviour: failed pilots stay dead, unit retries are immediate,
    /// and a lost resource is never re-planned around.
    pub recovery: Option<RecoveryPolicy>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            seed: 0,
            submit_at: SimTime::from_secs(6.0 * 3600.0),
            deadline: SimDuration::from_hours(96.0),
            trace: false,
            faults: None,
            recovery: None,
        }
    }
}

/// Why a run could not deliver a [`RunResult`].
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// No viable plan: resources do not qualify, unknown resource, empty
    /// pool. The message is the Execution Manager's verbatim explanation.
    Unplannable(String),
    /// The skeleton could not generate the application.
    Skeleton(String),
    /// The fault spec declares something it cannot mean (empty or
    /// inverted duration range, out-of-range bandwidth factor); running
    /// it would silently deviate from the declaration.
    InvalidFaultSpec(String),
    /// The simulated deadline passed with units still unfinished.
    DeadlineExceeded {
        n_tasks: u32,
        strategy_label: String,
        at: SimTime,
        stats: UnitManagerStats,
    },
    /// Every pilot died and nothing could replace them: the event queue
    /// drained with units still pending.
    PilotsDrained { stats: UnitManagerStats },
    /// A resource was lost permanently and the run could not complete
    /// without it (recovery disabled, or re-planning found no way out).
    ResourceLost {
        resource: String,
        stats: UnitManagerStats,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Unplannable(msg) => write!(f, "{msg}"),
            RunError::Skeleton(msg) => write!(f, "skeleton generation failed: {msg}"),
            RunError::InvalidFaultSpec(msg) => write!(f, "invalid fault spec: {msg}"),
            RunError::DeadlineExceeded {
                n_tasks,
                strategy_label,
                at,
                stats,
            } => write!(
                f,
                "run missed its deadline: {n_tasks} tasks under {strategy_label} \
                 still unfinished at {at:?} (stats {stats:?})"
            ),
            RunError::PilotsDrained { stats } => {
                write!(f, "pilot pool drained before completion ({stats:?})")
            }
            RunError::ResourceLost { resource, stats } => write!(
                f,
                "resource {resource} permanently lost before completion ({stats:?})"
            ),
        }
    }
}

impl std::error::Error for RunError {}

impl RunError {
    /// Substring check on the rendered message — keeps the pre-enum
    /// `String`-error call sites (`err.contains("deadline")`) compiling
    /// unchanged.
    pub fn contains(&self, needle: &str) -> bool {
        self.to_string().contains(needle)
    }
}

/// The measured outcome of one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    pub strategy_label: String,
    pub n_tasks: u32,
    pub breakdown: TtcBreakdown,
    pub resources_used: Vec<String>,
    pub units_done: usize,
    pub units_failed: usize,
    pub restarts: u64,
    /// Per-pilot setup times (seconds), submission order.
    pub pilot_setup_secs: Vec<f64>,
    /// Allocation consumption (paper §V): core-hours *charged* by the
    /// resources — every active pilot's cores for its active span.
    pub charged_core_hours: f64,
    /// Core-hours actually spent executing tasks.
    pub used_core_hours: f64,
    /// Replacement pilots submitted by the self-healing layer.
    pub replacements: u64,
    /// Strategy re-derivations after permanent resource loss.
    pub replans: u64,
    /// Core-hours burnt on execution attempts that never produced output
    /// (killed or faulted mid-run and re-done elsewhere).
    pub wasted_core_hours: f64,
    /// Mean time from a pilot failure to its replacement becoming Active
    /// (0 when nothing needed recovering).
    pub mean_recovery_secs: f64,
}

impl RunResult {
    /// Allocation efficiency: used / charged core-hours — an energy-
    /// efficiency proxy (idle pilot cores burn allocation and power for
    /// no work). In (0, 1] for any run that executed something.
    pub fn allocation_efficiency(&self) -> f64 {
        if self.charged_core_hours <= 0.0 {
            0.0
        } else {
            self.used_core_hours / self.charged_core_hours
        }
    }
}

/// Execute `app_config` under `strategy` on the given resource pool.
/// Returns an error if the plan cannot be derived or the run misses its
/// deadline.
///
/// ```
/// use aimes::middleware::{run_application, RunOptions};
/// use aimes::paper;
/// use aimes_skeleton::{paper_bag, TaskDurationSpec};
/// use aimes_sim::SimTime;
///
/// let app = paper_bag(16, TaskDurationSpec::Uniform15Min);
/// let result = run_application(
///     &paper::testbed(),
///     &app,
///     &paper::late_strategy(3),
///     &RunOptions {
///         seed: 1,
///         submit_at: SimTime::from_secs(4.0 * 3600.0),
///         ..Default::default()
///     },
/// ).unwrap();
/// assert_eq!(result.units_done, 16);
/// let b = &result.breakdown;
/// assert!(b.tw + b.tx + b.ts >= b.ttc); // components overlap inside TTC
/// ```
pub fn run_application(
    resources: &[ClusterConfig],
    app_config: &SkeletonConfig,
    strategy: &ExecutionStrategy,
    options: &RunOptions,
) -> Result<RunResult, RunError> {
    let tracer = if options.trace {
        Tracer::new()
    } else {
        Tracer::disabled()
    };
    let mut sim = Simulation::with_tracer(options.seed, tracer);

    // Resource layer: clusters with background load, SAGA session, bundle.
    let mut session = Session::new();
    let mut bundle = Bundle::new();
    let mut clusters: Vec<Cluster> = Vec::new();
    for cfg in resources {
        let cluster = Cluster::new(cfg.clone());
        cluster.install(&mut sim);
        session.add_resource(&sim, cluster.clone());
        bundle.add(cluster.clone());
        clusters.push(cluster);
    }
    let session = Rc::new(session);

    // Compile the fault model against the run seed. Everything below is
    // gated on `schedule` so a fault-free run replays the exact event and
    // RNG streams of a build without fault support.
    if let Some(spec) = &options.faults {
        spec.validate().map_err(RunError::InvalidFaultSpec)?;
    }
    let schedule = options
        .faults
        .as_ref()
        .filter(|spec| !spec.is_noop())
        .map(|spec| {
            let names: Vec<String> = clusters.iter().map(|c| c.name()).collect();
            let mut fault_rng = sim.fork_rng("faults");
            spec.compile(&names, &mut fault_rng)
        });
    if let Some(sched) = &schedule {
        if sched.launch_transient_chance > 0.0 || sched.launch_permanent_chance > 0.0 {
            for cluster in &clusters {
                if let Some(svc) = session.service(&cluster.name()) {
                    svc.inject_launch_faults(
                        sched.launch_transient_chance,
                        sched.launch_permanent_chance,
                    );
                }
            }
        }
    }

    // Generate the application (same seed → same workload across
    // strategies with the same experiment seed).
    let mut app_rng = sim.fork_rng("skeleton");
    let app = SkeletonApp::generate(app_config, &mut app_rng)
        .map_err(|e| RunError::Skeleton(e.to_string()))?;
    let n_tasks = app.tasks().len() as u32;

    // Let the resource pool evolve to the submission instant. The marker
    // event pins the clock there even if the pool is idle.
    sim.schedule_at(options.submit_at, |_| {});
    sim.run_until(options.submit_at);
    let submitted = options.submit_at.max(sim.now());
    debug_assert_eq!(submitted, sim.now());

    // Steps 1–4: derive the plan at submission time.
    let em = ExecutionManager::default();
    let mut selection_rng = sim.fork_rng("resource-selection");
    let plan = em
        .derive_plan_with_rng(submitted, &app, &mut bundle, strategy, &mut selection_rng)
        .map_err(RunError::Unplannable)?;

    // Step 5–6: enact. Fault chances and recovery knobs are threaded into
    // the unit manager's config; the pilot manager gets its healing policy.
    let mut um_config = plan.um_config.clone();
    if let Some(sched) = &schedule {
        um_config.unit_fault_chance = sched.unit_failure_chance;
        um_config.unit_fault_permanent_chance = sched.unit_permanent_chance;
    }
    if let Some(rec) = &options.recovery {
        um_config.retry_backoff = rec.unit_retry_backoff;
        um_config.retry_backoff_cap = rec.replacement_backoff_cap;
    }
    let pm = PilotManager::new(session);
    if let Some(rec) = options.recovery.as_ref().filter(|r| r.pilot_replacement) {
        pm.set_recovery(PilotRecovery {
            max_replacements: rec.max_replacements_per_pilot,
            backoff: rec.replacement_backoff,
            backoff_cap: rec.replacement_backoff_cap,
            blacklist_after: rec.blacklist_after,
            // Exactly one layer owns cross-resource recovery: with
            // re-planning on, pilot replacement stays on-resource.
            reroute: !rec.replan_on_resource_loss,
        });
    }
    let um = UnitManager::new(pm.clone(), um_config);
    let finished: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    {
        let pm2 = pm.clone();
        let fin = finished.clone();
        um.on_all_done(move |sim| {
            *fin.borrow_mut() = Some(sim.now());
            pm2.cancel_all(sim);
        });
    }
    pm.submit(&mut sim, plan.pilots.clone());
    um.submit_units(&mut sim, app.tasks());

    // Arm the fault schedule. All times are relative to submission.
    let lost: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let replans: Rc<Cell<u64>> = Rc::new(Cell::new(0));
    if let Some(sched) = &schedule {
        if let Some(sf) = sched.staging.filter(|s| s.duration_secs > 0.0) {
            let start = submitted + SimDuration::from_secs(sf.at_secs.max(0.0));
            let factor = sf.bandwidth_factor.clamp(0.001, 1.0);
            let um2 = um.clone();
            sim.schedule_at(start, move |_| um2.set_origin_bandwidth_factor(factor));
            let um3 = um.clone();
            sim.schedule_at(
                start + SimDuration::from_secs(sf.duration_secs),
                move |_| um3.set_origin_bandwidth_factor(1.0),
            );
        }
        let replanner = options
            .recovery
            .as_ref()
            .filter(|r| r.replan_on_resource_loss)
            .map(|_| {
                (
                    Rc::new(RefCell::new(bundle)),
                    Rc::new(RefCell::new(sim.fork_rng("replan"))),
                    app.clone(),
                    strategy.clone(),
                )
            });
        // Re-derive the strategy over the resources the pilot manager can
        // still route to, rebuilding capacity for `doomed` pilots. Shared
        // by the two ways a resource drops out: a scheduled Permanent
        // outage, and manager-initiated blacklisting after repeated
        // launch failures.
        let all_names: Vec<String> = clusters.iter().map(|c| c.name()).collect();
        type Replan = Rc<dyn Fn(&mut Simulation, &str, usize)>;
        let do_replan: Replan = {
            let pm2 = pm.clone();
            let replans2 = replans.clone();
            Rc::new(move |sim: &mut Simulation, resource: &str, doomed: usize| {
                let Some((bundle, rng, app, strategy)) = &replanner else {
                    return;
                };
                if doomed == 0 {
                    return;
                }
                let blacklisted = pm2.blacklisted();
                let survivors: Vec<String> = all_names
                    .iter()
                    .filter(|n| !blacklisted.contains(n))
                    .cloned()
                    .collect();
                if survivors.is_empty() {
                    sim.tracer().record(
                        sim.now(),
                        "middleware",
                        "ReplanFailed",
                        "no surviving resources",
                    );
                    return;
                }
                let mut replan_strategy = strategy.clone();
                replan_strategy.pilot_count = (doomed as u32).min(survivors.len() as u32).max(1);
                replan_strategy.selection = ResourceSelection::Fixed(survivors.clone());
                let em = ExecutionManager::default();
                match em.derive_plan_with_rng(
                    sim.now(),
                    app,
                    &mut bundle.borrow_mut(),
                    &replan_strategy,
                    &mut rng.borrow_mut(),
                ) {
                    Ok(plan2) => {
                        sim.tracer().record(
                            sim.now(),
                            "middleware",
                            "Replan",
                            format!(
                                "lost {resource}: {} pilots over [{}]",
                                plan2.pilots.len(),
                                survivors.join(", ")
                            ),
                        );
                        pm2.submit(sim, plan2.pilots);
                        replans2.set(replans2.get() + 1);
                    }
                    Err(e) => {
                        sim.tracer()
                            .record(sim.now(), "middleware", "ReplanFailed", e);
                    }
                }
            })
        };
        // A resource blacklisted for eating launches is as gone as a
        // decommissioned one, but arrives through the pilot manager, not
        // the outage schedule — and with re-planning enabled the pilot
        // layer deliberately skips rerouting. Re-plan here too, or nobody
        // recovers and the pool drains.
        {
            let pm2 = pm.clone();
            let do_replan = do_replan.clone();
            pm.on_blacklist(move |sim, resource| {
                // Any pilot still alive there is doomed; rebuild at least
                // one elsewhere (the trigger pilot is already terminal).
                let doomed = pm2
                    .pilots()
                    .iter()
                    .filter(|p| p.description.resource == resource && !p.state.is_terminal())
                    .count()
                    .max(1);
                do_replan(sim, resource, doomed);
            });
        }
        for o in &sched.outages {
            let Some(cluster) = clusters.iter().find(|c| c.name() == o.resource).cloned() else {
                continue; // the spec may name resources outside this pool
            };
            let at = submitted + SimDuration::from_secs(o.at.as_secs().max(0.0));
            match o.kind {
                OutageKind::Outage | OutageKind::Drain => {
                    let kill = o.kind == OutageKind::Outage;
                    let duration = o.duration;
                    sim.schedule_at(at, move |sim| {
                        cluster.inject_outage(sim, duration, kill);
                    });
                }
                OutageKind::Permanent => {
                    let pm2 = pm.clone();
                    let lost2 = lost.clone();
                    let do_replan = do_replan.clone();
                    let resource = o.resource.clone();
                    sim.schedule_at(at, move |sim| {
                        // Count live pilots before the axe falls so the
                        // re-plan knows how much capacity to rebuild.
                        let doomed = pm2
                            .pilots()
                            .iter()
                            .filter(|p| {
                                p.description.resource == resource && !p.state.is_terminal()
                            })
                            .count();
                        // Blacklist first: replacement logic triggered by
                        // the kills below must not resubmit to a corpse.
                        pm2.blacklist(&resource);
                        cluster.decommission(sim);
                        lost2.borrow_mut().push(resource.clone());
                        do_replan(sim, &resource, doomed);
                    });
                }
            }
        }
    }

    // Run until the application completes or the deadline passes.
    let deadline = submitted + options.deadline;
    while finished.borrow().is_none() {
        if sim.now() > deadline {
            return Err(RunError::DeadlineExceeded {
                n_tasks,
                strategy_label: strategy.label(),
                at: sim.now(),
                stats: um.stats(),
            });
        }
        if !sim.step() {
            break;
        }
    }
    let finished_at = match *finished.borrow() {
        Some(t) => t,
        None => {
            let stats = um.stats();
            return Err(match lost.borrow().first() {
                Some(resource) => RunError::ResourceLost {
                    resource: resource.clone(),
                    stats,
                },
                None => RunError::PilotsDrained { stats },
            });
        }
    };

    let stats: UnitManagerStats = um.stats();
    let units = um.units();
    let pilots: Vec<Pilot> = pm.pilots();
    let breakdown = decompose(&units, &pilots, submitted, finished_at);
    // Allocation accounting (§V metrics): charged = active pilot spans,
    // used = task-execution core time.
    let charged_core_hours: f64 = pilots
        .iter()
        .filter_map(|p| {
            let active = p.time_of(aimes_pilot::PilotState::Active)?;
            // Pilots still alive at run end (their cancellation lands just
            // after the last unit finishes) are charged up to run end.
            let end = if p.state.is_terminal() {
                p.timestamps.last().map(|(_, t)| *t)?
            } else {
                finished_at
            };
            Some(f64::from(p.description.cores) * end.saturating_since(active).as_hours())
        })
        .sum();
    let used_core_hours: f64 = units
        .iter()
        .filter_map(|u| {
            u.execution_span()
                .map(|d| f64::from(u.task.cores) * d.as_hours())
        })
        .sum();
    let recovery_times = pm.recovery_times();
    let mean_recovery_secs = if recovery_times.is_empty() {
        0.0
    } else {
        recovery_times.iter().map(|d| d.as_secs()).sum::<f64>() / recovery_times.len() as f64
    };
    Ok(RunResult {
        charged_core_hours,
        used_core_hours,
        replacements: pm.replacements(),
        replans: replans.get(),
        wasted_core_hours: wasted_core_hours(&units),
        mean_recovery_secs,
        strategy_label: strategy.label(),
        n_tasks,
        breakdown,
        resources_used: plan.resources,
        units_done: stats.done,
        units_failed: stats.failed,
        restarts: stats.restarts,
        pilot_setup_secs: pilots
            .iter()
            .filter_map(|p| p.setup_time().map(|d| d.as_secs()))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_skeleton::{paper_bag, TaskDurationSpec};

    fn idle_pool() -> Vec<ClusterConfig> {
        ["a", "b", "c", "d"]
            .iter()
            .map(|n| ClusterConfig::test(n, 4096))
            .collect()
    }

    #[test]
    fn early_strategy_completes_on_idle_pool() {
        let app = paper_bag(32, TaskDurationSpec::Uniform15Min);
        let result = run_application(
            &idle_pool(),
            &app,
            &ExecutionStrategy::paper_early(),
            &RunOptions {
                seed: 1,
                submit_at: SimTime::from_secs(100.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.units_done, 32);
        assert_eq!(result.units_failed, 0);
        assert_eq!(result.resources_used.len(), 1);
        // Idle pool: Tw is just middleware latency + bootstrap (< 60 s).
        assert!(result.breakdown.tw.as_secs() < 60.0);
        // TTC ≈ Tw + staging + 900 s execution.
        let ttc = result.breakdown.ttc.as_secs();
        assert!(ttc > 900.0 && ttc < 1200.0, "ttc {ttc}");
        // Components never exceed TTC.
        assert!(result.breakdown.tx <= result.breakdown.ttc);
        assert!(result.breakdown.ts <= result.breakdown.ttc);
        // Allocation accounting: 32 tasks x 15 min = 8 used core-hours;
        // the single 32-core pilot is charged for its whole active span,
        // so efficiency is high but below 1 (staging + cancellation lag).
        assert!((result.used_core_hours - 8.0).abs() < 0.01);
        assert!(result.charged_core_hours >= result.used_core_hours);
        let eff = result.allocation_efficiency();
        assert!(eff > 0.5 && eff <= 1.0, "efficiency {eff}");
    }

    #[test]
    fn late_binding_charges_more_allocation_for_idle_pilots() {
        // Same app under early-1p vs late-3p on an idle pool: the late
        // strategy keeps extra pilots alive while the first one does the
        // work → lower allocation efficiency.
        let app = paper_bag(32, TaskDurationSpec::Uniform15Min);
        let opts = RunOptions {
            seed: 4,
            submit_at: SimTime::from_secs(100.0),
            ..Default::default()
        };
        let early =
            run_application(&idle_pool(), &app, &ExecutionStrategy::paper_early(), &opts).unwrap();
        let late =
            run_application(&idle_pool(), &app, &ExecutionStrategy::paper_late(3), &opts).unwrap();
        assert!((early.used_core_hours - late.used_core_hours).abs() < 1e-6);
        assert!(
            late.allocation_efficiency() < early.allocation_efficiency(),
            "late {} vs early {}",
            late.allocation_efficiency(),
            early.allocation_efficiency()
        );
    }

    #[test]
    fn late_strategy_uses_three_resources() {
        let app = paper_bag(24, TaskDurationSpec::Gaussian);
        let result = run_application(
            &idle_pool(),
            &app,
            &ExecutionStrategy::paper_late(3),
            &RunOptions {
                seed: 2,
                submit_at: SimTime::from_secs(100.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.units_done, 24);
        assert_eq!(result.resources_used.len(), 3);
        assert_eq!(result.pilot_setup_secs.len(), 3);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let app = paper_bag(16, TaskDurationSpec::Gaussian);
        let opts = RunOptions {
            seed: 7,
            submit_at: SimTime::from_secs(50.0),
            ..Default::default()
        };
        let run = || {
            run_application(&idle_pool(), &app, &ExecutionStrategy::paper_late(2), &opts).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.resources_used, b.resources_used);
        assert_eq!(a.pilot_setup_secs, b.pilot_setup_secs);
    }

    #[test]
    fn oversized_app_fails_to_plan() {
        let small: Vec<ClusterConfig> = vec![ClusterConfig::test("tiny", 64)];
        let app = paper_bag(2048, TaskDurationSpec::Uniform15Min);
        let err = run_application(
            &small,
            &app,
            &ExecutionStrategy::paper_early(),
            &RunOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("qualify"), "{err}");
    }
}
