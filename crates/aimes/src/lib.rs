//! # aimes — the integrated middleware and virtual laboratory
//!
//! §III-E: "We implemented the four abstractions — Skeleton Application,
//! Bundle, Pilot, and Execution Strategy — ... then integrated them into
//! the AIMES middleware. This middleware offers two distinguishing
//! features: self-containment, meaning no components need to be deployed
//! into the resources, and self-introspection, meaning that its state model
//! is explicit and instrumented to produce complete traces of an
//! application execution. ... the AIMES middleware can work as an
//! experimental laboratory."
//!
//! * [`middleware`] — one end-to-end application execution: wire clusters
//!   → SAGA session → bundle → execution manager → pilot/unit managers,
//!   run to completion, return the measured [`ttc::TtcBreakdown`].
//! * [`ttc`] — the TTC decomposition into Tw, Tx, Ts (overlap-aware, as in
//!   Fig. 3: "During execution Tw, Tx, and Ts overlap so
//!   TTC < Tw + Tx + Ts").
//! * [`experiment`] — the laboratory: repetitions with per-run seeds and
//!   randomized submission offsets, run in parallel across host cores.
//! * [`paper`] — the Table I experiment definitions and the series behind
//!   Figures 2, 3, and 4, plus the §V ablations.
//! * [`stats`] — mean/stdev/quantiles/confidence intervals.
//! * [`report`] — markdown/CSV table and series rendering.

pub mod adaptive;
pub mod campaign;
pub mod experiment;
pub mod journal;
pub mod middleware;
pub mod paper;
pub mod profile;
pub mod recorder;
pub mod report;
pub mod stats;
pub mod ttc;

pub use adaptive::{run_adaptive, AdaptiveConfig, AdaptiveRunResult};
pub use aimes_fault as fault;
pub use campaign::{CampaignMeta, CampaignRecorder, CampaignSender, Progress, RunRecord};
pub use experiment::{ExperimentConfig, ExperimentPoint, ExperimentResult};
pub use journal::{JournalEntry, JournalEvent, RunJournal};
pub use middleware::{resume_application, run_application, RunError, RunOptions, RunResult};
pub use profile::{ProfileAccumulator, ProfileDoc, TimingInputs, PROFILE_SCHEMA};
pub use recorder::{FlightRecorder, RecorderSnapshot, DEFAULT_RECORDER_CAPACITY};
pub use stats::Summary;
pub use ttc::TtcBreakdown;
