//! The paper's application classes and the exact Table I workloads.
//!
//! §III-A: "We generalize bag-of-task, (iterative) map-reduce, and
//! (iterative) multistage workflow applications into (iterative) multistage
//! workflow applications, since bag-of-task applications are basically
//! single-stage applications and map-reduce applications are basically
//! two-stage applications."

use crate::config::{
    FileSizeSpec, IterationSpec, SkeletonConfig, StageConfig, TaskDurationConfig, TaskMapping,
};
use aimes_workload::Distribution;

/// Task-duration selection for the paper's experiments (Table I).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskDurationSpec {
    /// 15 minutes, constant (experiments 1 and 3 — "uniform" in the
    /// figures).
    Uniform15Min,
    /// Truncated Gaussian: mean 15 min, stdev 5 min, bounds [1, 30] min
    /// (experiments 2 and 4).
    Gaussian,
}

impl TaskDurationSpec {
    /// The corresponding sampling distribution (seconds).
    pub fn distribution(self) -> Distribution {
        match self {
            TaskDurationSpec::Uniform15Min => Distribution::Constant { value: 900.0 },
            TaskDurationSpec::Gaussian => {
                Distribution::truncated_gaussian(900.0, 300.0, 60.0, 1800.0)
            }
        }
    }

    /// Label used in experiment ids and figures.
    pub fn label(self) -> &'static str {
        match self {
            TaskDurationSpec::Uniform15Min => "uniform",
            TaskDurationSpec::Gaussian => "gaussian",
        }
    }
}

/// A generic bag of tasks: one stage of `n_tasks` single-core tasks.
pub fn bag_of_tasks(
    name: &str,
    n_tasks: u32,
    duration: Distribution,
    input_mb: f64,
    output_mb: f64,
) -> SkeletonConfig {
    SkeletonConfig {
        name: name.to_string(),
        stages: vec![StageConfig {
            name: "bag".into(),
            task_count: n_tasks,
            cores_per_task: 1,
            duration: TaskDurationConfig::Dist { dist: duration },
            input_size_mb: FileSizeSpec::constant(input_mb),
            output_size_mb: FileSizeSpec::constant(output_mb),
            mapping: TaskMapping::External,
        }],
        iteration: None,
    }
}

/// The paper's experimental application (Table I): a bag of `n_tasks`
/// single-core tasks, each reading a 1 MB input file and writing a 2 KB
/// output file, with 15-minute or truncated-Gaussian durations.
pub fn paper_bag(n_tasks: u32, duration: TaskDurationSpec) -> SkeletonConfig {
    bag_of_tasks(
        &format!("bot-{n_tasks}-{}", duration.label()),
        n_tasks,
        duration.distribution(),
        1.0,
        0.002,
    )
}

/// The nine Table I application sizes: 2^n for n = 3..=11.
pub fn paper_task_counts() -> Vec<u32> {
    (3..=11).map(|n| 2u32.pow(n)).collect()
}

/// An (optionally iterative) map-reduce: `maps` map tasks feeding
/// `reduces` reduce tasks.
#[allow(clippy::too_many_arguments)] // mirrors the skeleton tool's parameters
pub fn map_reduce(
    name: &str,
    maps: u32,
    reduces: u32,
    map_duration: Distribution,
    reduce_duration: Distribution,
    input_mb: f64,
    intermediate_mb: f64,
    iterations: u32,
) -> SkeletonConfig {
    assert!(
        maps.is_multiple_of(reduces),
        "map count must divide by reduce count"
    );
    SkeletonConfig {
        name: name.to_string(),
        stages: vec![
            StageConfig {
                name: "map".into(),
                task_count: maps,
                cores_per_task: 1,
                duration: TaskDurationConfig::Dist { dist: map_duration },
                input_size_mb: FileSizeSpec::constant(input_mb),
                output_size_mb: FileSizeSpec::constant(intermediate_mb),
                mapping: TaskMapping::External,
            },
            StageConfig {
                name: "reduce".into(),
                task_count: reduces,
                cores_per_task: 1,
                duration: TaskDurationConfig::Dist {
                    dist: reduce_duration,
                },
                input_size_mb: FileSizeSpec::constant(0.0),
                output_size_mb: FileSizeSpec::constant(intermediate_mb / 2.0),
                mapping: TaskMapping::ManyToOne,
            },
        ],
        iteration: if iterations > 1 {
            Some(IterationSpec {
                from_stage: 0,
                to_stage: 1,
                count: iterations,
            })
        } else {
            None
        },
    }
}

/// A multistage workflow with the given per-stage widths; stage 0 reads
/// external inputs, later stages synchronize all-to-all.
pub fn multistage_workflow(
    name: &str,
    widths: &[u32],
    duration: Distribution,
    input_mb: f64,
    output_mb: f64,
) -> SkeletonConfig {
    assert!(!widths.is_empty());
    let stages = widths
        .iter()
        .enumerate()
        .map(|(i, w)| StageConfig {
            name: format!("stage{i}"),
            task_count: *w,
            cores_per_task: 1,
            duration: TaskDurationConfig::Dist {
                dist: duration.clone(),
            },
            input_size_mb: FileSizeSpec::constant(input_mb),
            output_size_mb: FileSizeSpec::constant(output_mb),
            mapping: if i == 0 {
                TaskMapping::External
            } else {
                TaskMapping::AllToAll
            },
        })
        .collect();
    SkeletonConfig {
        name: name.to_string(),
        stages,
        iteration: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::SkeletonApp;
    use aimes_sim::SimRng;

    #[test]
    fn paper_task_counts_match_table1() {
        assert_eq!(
            paper_task_counts(),
            vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048]
        );
    }

    #[test]
    fn paper_bag_matches_table1_parameters() {
        for spec in [TaskDurationSpec::Uniform15Min, TaskDurationSpec::Gaussian] {
            let cfg = paper_bag(64, spec);
            cfg.validate().unwrap();
            let app = SkeletonApp::generate(&cfg, &mut SimRng::new(1)).unwrap();
            assert_eq!(app.tasks().len(), 64);
            for t in app.tasks() {
                assert_eq!(t.cores, 1);
                assert!((t.input_mb() - 1.0).abs() < 1e-12);
                assert!((t.output_mb() - 0.002).abs() < 1e-12);
                let mins = t.duration.as_mins();
                match spec {
                    TaskDurationSpec::Uniform15Min => assert_eq!(mins, 15.0),
                    TaskDurationSpec::Gaussian => {
                        assert!((1.0..=30.0).contains(&mins))
                    }
                }
            }
        }
    }

    #[test]
    fn gaussian_durations_have_spread() {
        let cfg = paper_bag(2048, TaskDurationSpec::Gaussian);
        let app = SkeletonApp::generate(&cfg, &mut SimRng::new(2)).unwrap();
        let durations: Vec<f64> = app.tasks().iter().map(|t| t.duration.as_mins()).collect();
        let mean = durations.iter().sum::<f64>() / durations.len() as f64;
        let var =
            durations.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / durations.len() as f64;
        assert!((mean - 15.0).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 5.0).abs() < 0.5, "stdev {}", var.sqrt());
    }

    #[test]
    fn map_reduce_structure() {
        let d = Distribution::Constant { value: 60.0 };
        let cfg = map_reduce("mr", 16, 4, d.clone(), d, 10.0, 1.0, 1);
        cfg.validate().unwrap();
        let app = SkeletonApp::generate(&cfg, &mut SimRng::new(3)).unwrap();
        assert_eq!(app.stage_count(), 2);
        assert_eq!(app.stage_tasks(0).len(), 16);
        assert_eq!(app.stage_tasks(1).len(), 4);
        for r in app.stage_tasks(1) {
            assert_eq!(r.dependencies.len(), 4);
        }
    }

    #[test]
    fn iterative_map_reduce() {
        let d = Distribution::Constant { value: 60.0 };
        let cfg = map_reduce("imr", 8, 2, d.clone(), d, 10.0, 1.0, 3);
        cfg.validate().unwrap();
        let app = SkeletonApp::generate(&cfg, &mut SimRng::new(3)).unwrap();
        assert_eq!(app.stage_count(), 6);
        assert_eq!(app.tasks().len(), 30);
    }

    #[test]
    fn workflow_structure() {
        let d = Distribution::Constant { value: 60.0 };
        let cfg = multistage_workflow("wf", &[8, 4, 2, 1], d, 1.0, 0.5);
        cfg.validate().unwrap();
        let app = SkeletonApp::generate(&cfg, &mut SimRng::new(4)).unwrap();
        assert_eq!(app.stage_count(), 4);
        assert_eq!(app.tasks().len(), 15);
        // Critical path = 4 stages x 60 s.
        assert_eq!(app.critical_path().as_secs(), 240.0);
    }
}
