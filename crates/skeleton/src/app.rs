//! Skeleton application generation and the paper's three output forms.

use crate::config::FileSizeSpec;
use crate::config::{SkeletonConfig, StageConfig, TaskDurationConfig, TaskMapping};
use crate::task::{FileSpec, TaskId, TaskSpec};
use aimes_sim::{SimDuration, SimRng};

/// A generated skeleton application: concrete tasks with durations, files,
/// and dependencies.
///
/// ```
/// use aimes_sim::SimRng;
/// use aimes_skeleton::{paper_bag, SkeletonApp, TaskDurationSpec};
///
/// // A Table I workload: 64 tasks, 1 MB in / 2 KB out, 15-minute tasks.
/// let config = paper_bag(64, TaskDurationSpec::Uniform15Min);
/// let app = SkeletonApp::generate(&config, &mut SimRng::new(1)).unwrap();
/// assert_eq!(app.tasks().len(), 64);
/// assert_eq!(app.critical_path().as_mins(), 15.0); // single stage
/// // The same seed regenerates the identical application.
/// let again = SkeletonApp::generate(&config, &mut SimRng::new(1)).unwrap();
/// assert_eq!(app.tasks(), again.tasks());
/// ```
#[derive(Clone, Debug)]
pub struct SkeletonApp {
    name: String,
    tasks: Vec<TaskSpec>,
    /// Task-index ranges per expanded stage.
    stage_ranges: Vec<(usize, usize)>,
    stage_names: Vec<String>,
}

impl SkeletonApp {
    /// Expand a validated config into tasks, drawing all samples from
    /// `rng`. The same seed always yields the same application — the
    /// property that lets an experiment run the *same* workload under
    /// different execution strategies.
    pub fn generate(config: &SkeletonConfig, rng: &mut SimRng) -> Result<SkeletonApp, String> {
        config.validate()?;
        let expanded = expand_stages(config);
        let mut tasks: Vec<TaskSpec> = Vec::new();
        let mut stage_ranges = Vec::with_capacity(expanded.len());
        let mut stage_names = Vec::with_capacity(expanded.len());
        let mut prev_range: Option<(usize, usize)> = None;

        for (stage_idx, (cfg, name)) in expanded.iter().enumerate() {
            let start = tasks.len();
            for i in 0..cfg.task_count {
                let id = TaskId(tasks.len() as u32);
                let (inputs, dependencies) = make_inputs(cfg, i, prev_range, &tasks, name, rng)?;
                let input_mb: f64 = inputs.iter().map(|f| f.size_mb).sum();
                let duration = match &cfg.duration {
                    TaskDurationConfig::Dist { dist } => {
                        SimDuration::from_secs(dist.sample(rng).max(0.0))
                    }
                    TaskDurationConfig::LinearOfInput { a, b } => {
                        SimDuration::from_secs((a * input_mb + b).max(0.0))
                    }
                };
                let out_mb = eval_size(&cfg.output_size_mb, input_mb, duration, rng)?;
                let outputs = vec![FileSpec {
                    name: format!("{name}.{i:05}.out"),
                    size_mb: out_mb,
                }];
                tasks.push(TaskSpec {
                    id,
                    stage: stage_idx,
                    stage_name: name.clone(),
                    cores: cfg.cores_per_task,
                    duration,
                    inputs,
                    outputs,
                    dependencies,
                });
            }
            let range = (start, tasks.len());
            stage_ranges.push(range);
            stage_names.push(name.clone());
            prev_range = Some(range);
        }
        Ok(SkeletonApp {
            name: config.name.clone(),
            tasks,
            stage_ranges,
            stage_names,
        })
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All tasks, id order (which is also a topological order).
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Number of expanded stages.
    pub fn stage_count(&self) -> usize {
        self.stage_ranges.len()
    }

    /// Tasks of one expanded stage.
    pub fn stage_tasks(&self, stage: usize) -> &[TaskSpec] {
        let (a, b) = self.stage_ranges[stage];
        &self.tasks[a..b]
    }

    /// Expanded stage names.
    pub fn stage_names(&self) -> &[String] {
        &self.stage_names
    }

    /// Sum of all task durations (the total compute work).
    pub fn total_work(&self) -> SimDuration {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Length of the longest dependency chain (lower bound on Tx at
    /// unbounded concurrency).
    pub fn critical_path(&self) -> SimDuration {
        let mut finish = vec![SimDuration::ZERO; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t
                .dependencies
                .iter()
                .map(|d| finish[d.0 as usize])
                .fold(SimDuration::ZERO, SimDuration::max);
            finish[i] = ready + t.duration;
        }
        finish.into_iter().fold(SimDuration::ZERO, SimDuration::max)
    }

    /// Maximum per-stage width in cores (the concurrency ceiling useful to
    /// the Execution Manager when sizing pilots).
    pub fn max_concurrent_cores(&self) -> u64 {
        self.stage_ranges
            .iter()
            .map(|(a, b)| self.tasks[*a..*b].iter().map(|t| u64::from(t.cores)).sum())
            .max()
            .unwrap_or(0)
    }

    /// Total external input volume (files not produced by another task).
    pub fn external_input_mb(&self) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.dependencies.is_empty())
            .map(|t| t.input_mb())
            .sum()
    }

    /// Total final output volume (files not consumed by another task).
    pub fn final_output_mb(&self) -> f64 {
        let consumed: std::collections::HashSet<&str> = self
            .tasks
            .iter()
            .flat_map(|t| t.inputs.iter().map(|f| f.name.as_str()))
            .collect();
        self.tasks
            .iter()
            .flat_map(|t| t.outputs.iter())
            .filter(|f| !consumed.contains(f.name.as_str()))
            .map(|f| f.size_mb)
            .sum()
    }

    /// Output form (a): sequential shell commands.
    pub fn to_shell_script(&self) -> String {
        let mut out = String::from("#!/bin/sh\n# generated skeleton application\n");
        for t in &self.tasks {
            out.push_str(&t.as_shell_command());
            out.push('\n');
        }
        out
    }

    /// Output form (b): the dependency DAG as an edge list.
    pub fn to_dag(&self) -> Vec<(TaskId, TaskId)> {
        self.tasks
            .iter()
            .flat_map(|t| t.dependencies.iter().map(move |d| (*d, t.id)))
            .collect()
    }

    /// Output form (d): the JSON structure consumed by the middleware.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.tasks).expect("tasks serialize")
    }

    /// Preparation script (paper output group 1): creates the input/output
    /// directories and the external input files with their exact sizes.
    pub fn preparation_script(&self) -> String {
        let mut out = String::from(
            "#!/bin/sh\n# prepares inputs for the skeleton application\nmkdir -p input output\n",
        );
        for t in &self.tasks {
            if t.dependencies.is_empty() {
                for f in &t.inputs {
                    out.push_str(&format!(
                        "dd if=/dev/zero of=input/{} bs=1024 count={} 2>/dev/null\n",
                        f.name,
                        (f.size_mb * 1024.0).ceil() as u64
                    ));
                }
            }
        }
        out
    }

    /// Output form (b): a Pegasus-style abstract DAG (DAX XML).
    pub fn to_pegasus_dax(&self) -> String {
        let mut out = String::new();
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        out.push_str(&format!(
            "<adag name=\"{}\" jobCount=\"{}\" childCount=\"{}\">\n",
            self.name,
            self.tasks.len(),
            self.tasks
                .iter()
                .filter(|t| !t.dependencies.is_empty())
                .count()
        ));
        for t in &self.tasks {
            out.push_str(&format!(
                "  <job id=\"ID{:05}\" name=\"skeleton-task\" runtime=\"{:.1}\">\n",
                t.id.0,
                t.duration.as_secs()
            ));
            for f in &t.inputs {
                out.push_str(&format!(
                    "    <uses file=\"{}\" link=\"input\" size=\"{:.3}\"/>\n",
                    f.name, f.size_mb
                ));
            }
            for f in &t.outputs {
                out.push_str(&format!(
                    "    <uses file=\"{}\" link=\"output\" size=\"{:.3}\"/>\n",
                    f.name, f.size_mb
                ));
            }
            out.push_str("  </job>\n");
        }
        for t in &self.tasks {
            if !t.dependencies.is_empty() {
                out.push_str(&format!("  <child ref=\"ID{:05}\">\n", t.id.0));
                for d in &t.dependencies {
                    out.push_str(&format!("    <parent ref=\"ID{:05}\"/>\n", d.0));
                }
                out.push_str("  </child>\n");
            }
        }
        out.push_str("</adag>\n");
        out
    }

    /// Output form (c): a Swift-style parallel script. Stages become
    /// `foreach` blocks over file arrays; data dependences are implicit in
    /// the array wiring, as in real Swift.
    pub fn to_swift_script(&self) -> String {
        let mut out = String::new();
        out.push_str("type file;\n\n");
        out.push_str(
            "app (file out) skeleton_task (file ins[], float sleep) {\n  \
             skeletontask \"--sleep\" sleep @filenames(ins) @out;\n}\n\n",
        );
        for (i, name) in self.stage_names.iter().enumerate() {
            let ident = name.replace(['.', '-'], "_");
            let tasks = self.stage_tasks(i);
            out.push_str(&format!(
                "file {ident}_out[] <simple_mapper; prefix=\"{name}.\", suffix=\".out\">;\n"
            ));
            out.push_str(&format!(
                "foreach j in [0:{}] {{\n",
                tasks.len().saturating_sub(1)
            ));
            let mean_sleep: f64 =
                tasks.iter().map(|t| t.duration.as_secs()).sum::<f64>() / tasks.len() as f64;
            // Input arrays: external files or the previous stage's outputs.
            let inputs = if tasks[0].dependencies.is_empty() {
                format!("input_files(\"{name}\", j)")
            } else {
                let prev = self.stage_names[i - 1].replace(['.', '-'], "_");
                format!("{prev}_out")
            };
            out.push_str(&format!(
                "  {ident}_out[j] = skeleton_task({inputs}, {mean_sleep:.1});\n}}\n\n"
            ));
        }
        out
    }
}

/// Expand the iteration group into a flat stage list with suffixed names.
fn expand_stages(config: &SkeletonConfig) -> Vec<(StageConfig, String)> {
    let mut out = Vec::new();
    match config.iteration {
        None => {
            for s in &config.stages {
                out.push((s.clone(), s.name.clone()));
            }
        }
        Some(it) => {
            for s in &config.stages[..it.from_stage] {
                out.push((s.clone(), s.name.clone()));
            }
            for k in 0..it.count {
                for s in &config.stages[it.from_stage..=it.to_stage] {
                    let name = if it.count > 1 {
                        format!("{}.iter{k}", s.name)
                    } else {
                        s.name.clone()
                    };
                    let mut s = s.clone();
                    // After the first iteration, an External first stage
                    // re-reads external data; other mappings consume the
                    // previous expanded stage (the group's last).
                    if k > 0 && s.mapping == TaskMapping::External {
                        // keep external
                    }
                    s.name = name.clone();
                    out.push((s, name));
                }
            }
            for s in &config.stages[it.to_stage + 1..] {
                out.push((s.clone(), s.name.clone()));
            }
        }
    }
    out
}

fn make_inputs(
    cfg: &StageConfig,
    task_index: u32,
    prev_range: Option<(usize, usize)>,
    tasks: &[TaskSpec],
    stage_name: &str,
    rng: &mut SimRng,
) -> Result<(Vec<FileSpec>, Vec<TaskId>), String> {
    match cfg.mapping {
        TaskMapping::External => {
            let size = match &cfg.input_size_mb {
                FileSizeSpec::Dist { dist } => dist.sample(rng).max(0.0),
                other => {
                    return Err(format!(
                        "external input size must be a distribution, got {other:?}"
                    ));
                }
            };
            Ok((
                vec![FileSpec {
                    name: format!("{stage_name}.{task_index:05}.in"),
                    size_mb: size,
                }],
                vec![],
            ))
        }
        TaskMapping::OneToOne => {
            let (a, b) = prev_range.ok_or("one-to-one with no previous stage")?;
            debug_assert_eq!(b - a, cfg.task_count as usize);
            let src = &tasks[a + task_index as usize];
            Ok((src.outputs.clone(), vec![src.id]))
        }
        TaskMapping::AllToAll => {
            let (a, b) = prev_range.ok_or("all-to-all with no previous stage")?;
            let mut files = Vec::with_capacity(b - a);
            let mut deps = Vec::with_capacity(b - a);
            for src in &tasks[a..b] {
                files.extend(src.outputs.iter().cloned());
                deps.push(src.id);
            }
            Ok((files, deps))
        }
        TaskMapping::ManyToOne => {
            let (a, b) = prev_range.ok_or("many-to-one with no previous stage")?;
            let prev_count = b - a;
            let fan = prev_count / cfg.task_count as usize;
            let lo = a + task_index as usize * fan;
            let hi = lo + fan;
            let mut files = Vec::with_capacity(fan);
            let mut deps = Vec::with_capacity(fan);
            for src in &tasks[lo..hi] {
                files.extend(src.outputs.iter().cloned());
                deps.push(src.id);
            }
            Ok((files, deps))
        }
    }
}

fn eval_size(
    spec: &FileSizeSpec,
    input_mb: f64,
    duration: SimDuration,
    rng: &mut SimRng,
) -> Result<f64, String> {
    Ok(match spec {
        FileSizeSpec::Dist { dist } => dist.sample(rng).max(0.0),
        FileSizeSpec::LinearOfInput { a, b } => (a * input_mb + b).max(0.0),
        FileSizeSpec::PolyOfRuntime { coeffs } => {
            let t = duration.as_secs();
            coeffs
                .iter()
                .enumerate()
                .map(|(i, c)| c * t.powi(i as i32))
                .sum::<f64>()
                .max(0.0)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IterationSpec;
    use aimes_workload::Distribution;
    use proptest::prelude::*;

    fn stage(name: &str, tasks: u32, mapping: TaskMapping) -> StageConfig {
        StageConfig {
            name: name.into(),
            task_count: tasks,
            cores_per_task: 1,
            duration: TaskDurationConfig::Dist {
                dist: Distribution::Constant { value: 900.0 },
            },
            input_size_mb: FileSizeSpec::constant(1.0),
            output_size_mb: FileSizeSpec::constant(0.002),
            mapping,
        }
    }

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    #[test]
    fn bag_of_tasks_generation() {
        let cfg = SkeletonConfig {
            name: "bot".into(),
            stages: vec![stage("s0", 16, TaskMapping::External)],
            iteration: None,
        };
        let app = SkeletonApp::generate(&cfg, &mut rng()).unwrap();
        assert_eq!(app.tasks().len(), 16);
        assert_eq!(app.stage_count(), 1);
        assert!(app.tasks().iter().all(|t| t.dependencies.is_empty()));
        assert!(app.tasks().iter().all(|t| t.duration.as_mins() == 15.0));
        assert!((app.external_input_mb() - 16.0).abs() < 1e-9);
        assert!((app.final_output_mb() - 16.0 * 0.002).abs() < 1e-9);
        assert_eq!(app.total_work(), SimDuration::from_mins(16.0 * 15.0));
        assert_eq!(app.critical_path(), SimDuration::from_mins(15.0));
        assert_eq!(app.max_concurrent_cores(), 16);
    }

    #[test]
    fn one_to_one_wires_dependencies() {
        let cfg = SkeletonConfig {
            name: "pipe".into(),
            stages: vec![
                stage("a", 4, TaskMapping::External),
                stage("b", 4, TaskMapping::OneToOne),
            ],
            iteration: None,
        };
        let app = SkeletonApp::generate(&cfg, &mut rng()).unwrap();
        assert_eq!(app.tasks().len(), 8);
        for (i, t) in app.stage_tasks(1).iter().enumerate() {
            assert_eq!(t.dependencies, vec![TaskId(i as u32)]);
            assert_eq!(t.inputs.len(), 1);
            assert_eq!(t.inputs[0].name, format!("a.{i:05}.out"));
            assert!((t.input_mb() - 0.002).abs() < 1e-12);
        }
        assert_eq!(app.critical_path(), SimDuration::from_mins(30.0));
    }

    #[test]
    fn all_to_all_reads_everything() {
        let cfg = SkeletonConfig {
            name: "sync".into(),
            stages: vec![
                stage("a", 4, TaskMapping::External),
                stage("b", 2, TaskMapping::AllToAll),
            ],
            iteration: None,
        };
        let app = SkeletonApp::generate(&cfg, &mut rng()).unwrap();
        for t in app.stage_tasks(1) {
            assert_eq!(t.dependencies.len(), 4);
            assert_eq!(t.inputs.len(), 4);
        }
    }

    #[test]
    fn many_to_one_partitions() {
        let cfg = SkeletonConfig {
            name: "mr".into(),
            stages: vec![
                stage("map", 8, TaskMapping::External),
                stage("reduce", 2, TaskMapping::ManyToOne),
            ],
            iteration: None,
        };
        let app = SkeletonApp::generate(&cfg, &mut rng()).unwrap();
        let r0 = &app.stage_tasks(1)[0];
        let r1 = &app.stage_tasks(1)[1];
        assert_eq!(r0.dependencies, (0..4).map(TaskId).collect::<Vec<_>>());
        assert_eq!(r1.dependencies, (4..8).map(TaskId).collect::<Vec<_>>());
        // Partition: no overlap, full coverage.
        let all: Vec<_> = r0
            .dependencies
            .iter()
            .chain(r1.dependencies.iter())
            .collect();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn iteration_expands_stages() {
        let cfg = SkeletonConfig {
            name: "it".into(),
            stages: vec![
                stage("gen", 4, TaskMapping::External),
                stage("step", 4, TaskMapping::OneToOne),
            ],
            iteration: Some(IterationSpec {
                from_stage: 1,
                to_stage: 1,
                count: 3,
            }),
        };
        let app = SkeletonApp::generate(&cfg, &mut rng()).unwrap();
        assert_eq!(app.stage_count(), 4);
        assert_eq!(app.tasks().len(), 16);
        assert_eq!(
            app.stage_names(),
            &["gen", "step.iter0", "step.iter1", "step.iter2"]
        );
        // Chain: iter2 depends on iter1 depends on iter0 depends on gen.
        assert_eq!(app.critical_path(), SimDuration::from_mins(15.0 * 4.0));
    }

    #[test]
    fn linear_duration_of_input() {
        let mut cfg = SkeletonConfig {
            name: "lin".into(),
            stages: vec![stage("s", 4, TaskMapping::External)],
            iteration: None,
        };
        cfg.stages[0].input_size_mb = FileSizeSpec::constant(10.0);
        cfg.stages[0].duration = TaskDurationConfig::LinearOfInput { a: 2.0, b: 30.0 };
        let app = SkeletonApp::generate(&cfg, &mut rng()).unwrap();
        for t in app.tasks() {
            assert_eq!(t.duration.as_secs(), 50.0);
        }
    }

    #[test]
    fn poly_output_of_runtime() {
        let mut cfg = SkeletonConfig {
            name: "poly".into(),
            stages: vec![stage("s", 2, TaskMapping::External)],
            iteration: None,
        };
        cfg.stages[0].duration = TaskDurationConfig::Dist {
            dist: Distribution::Constant { value: 10.0 },
        };
        cfg.stages[0].output_size_mb = FileSizeSpec::PolyOfRuntime {
            coeffs: vec![1.0, 0.5, 0.01],
        };
        let app = SkeletonApp::generate(&cfg, &mut rng()).unwrap();
        for t in app.tasks() {
            // 1 + 0.5*10 + 0.01*100 = 7.
            assert!((t.output_mb() - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut cfg = SkeletonConfig {
            name: "det".into(),
            stages: vec![stage("s", 32, TaskMapping::External)],
            iteration: None,
        };
        cfg.stages[0].duration = TaskDurationConfig::Dist {
            dist: Distribution::truncated_gaussian(900.0, 300.0, 60.0, 1800.0),
        };
        let a = SkeletonApp::generate(&cfg, &mut SimRng::new(5)).unwrap();
        let b = SkeletonApp::generate(&cfg, &mut SimRng::new(5)).unwrap();
        let c = SkeletonApp::generate(&cfg, &mut SimRng::new(6)).unwrap();
        assert_eq!(a.tasks(), b.tasks());
        assert_ne!(a.tasks(), c.tasks());
    }

    #[test]
    fn shell_script_and_dag_and_json() {
        let cfg = SkeletonConfig {
            name: "emit".into(),
            stages: vec![
                stage("a", 2, TaskMapping::External),
                stage("b", 2, TaskMapping::OneToOne),
            ],
            iteration: None,
        };
        let app = SkeletonApp::generate(&cfg, &mut rng()).unwrap();
        let sh = app.to_shell_script();
        assert_eq!(
            sh.lines()
                .filter(|l| l.starts_with("skeleton-task"))
                .count(),
            4
        );
        let dag = app.to_dag();
        assert_eq!(dag.len(), 2);
        assert!(dag.contains(&(TaskId(0), TaskId(2))));
        let json = app.to_json();
        let back: Vec<TaskSpec> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, app.tasks());
    }

    #[test]
    fn preparation_script_creates_external_inputs_only() {
        let cfg = SkeletonConfig {
            name: "prep".into(),
            stages: vec![
                stage("a", 3, TaskMapping::External),
                stage("b", 3, TaskMapping::OneToOne),
            ],
            iteration: None,
        };
        let app = SkeletonApp::generate(&cfg, &mut rng()).unwrap();
        let script = app.preparation_script();
        // Only the 3 external inputs get dd lines; intermediate files are
        // produced by tasks, not preparation.
        assert_eq!(script.matches("dd if=").count(), 3);
        assert!(script.contains("mkdir -p input output"));
        assert!(script.contains("a.00000.in"));
        assert!(!script.contains("a.00000.out"));
    }

    #[test]
    fn pegasus_dax_wires_parents() {
        let cfg = SkeletonConfig {
            name: "dax".into(),
            stages: vec![
                stage("map", 4, TaskMapping::External),
                stage("reduce", 1, TaskMapping::AllToAll),
            ],
            iteration: None,
        };
        let app = SkeletonApp::generate(&cfg, &mut rng()).unwrap();
        let dax = app.to_pegasus_dax();
        assert!(dax.starts_with("<?xml"));
        assert_eq!(dax.matches("<job ").count(), 5);
        assert_eq!(dax.matches("<child ").count(), 1);
        assert_eq!(dax.matches("<parent ").count(), 4);
        assert!(dax.contains("jobCount=\"5\""));
        assert!(dax.contains("link=\"input\""));
    }

    #[test]
    fn swift_script_has_one_foreach_per_stage() {
        let cfg = SkeletonConfig {
            name: "swift".into(),
            stages: vec![
                stage("gen", 8, TaskMapping::External),
                stage("post", 8, TaskMapping::OneToOne),
            ],
            iteration: None,
        };
        let app = SkeletonApp::generate(&cfg, &mut rng()).unwrap();
        let swift = app.to_swift_script();
        assert_eq!(swift.matches("foreach").count(), 2);
        assert!(swift.contains("type file;"));
        assert!(swift.contains("gen_out"));
        // Stage 2 consumes stage 1's output array.
        assert!(swift.contains("skeleton_task(gen_out"));
    }

    proptest! {
        /// Id order is a topological order: every dependency has a smaller id.
        #[test]
        fn prop_ids_topological(
            widths in proptest::collection::vec(1u32..12, 1..5),
            seed in any::<u64>(),
        ) {
            let mut stages = vec![stage("s0", widths[0], TaskMapping::External)];
            for (i, w) in widths.iter().enumerate().skip(1) {
                stages.push(stage(&format!("s{i}"), *w, TaskMapping::AllToAll));
            }
            let cfg = SkeletonConfig { name: "p".into(), stages, iteration: None };
            let app = SkeletonApp::generate(&cfg, &mut SimRng::new(seed)).unwrap();
            for t in app.tasks() {
                for d in &t.dependencies {
                    prop_assert!(d.0 < t.id.0);
                }
            }
            prop_assert_eq!(
                app.tasks().len() as u64,
                cfg.total_tasks()
            );
        }

        /// Critical path never exceeds total work, and is at least the
        /// longest single task.
        #[test]
        fn prop_critical_path_bounds(
            widths in proptest::collection::vec(1u32..8, 1..4),
            seed in any::<u64>(),
        ) {
            let mut stages = vec![stage("s0", widths[0], TaskMapping::External)];
            for (i, w) in widths.iter().enumerate().skip(1) {
                stages.push(stage(&format!("s{i}"), *w, TaskMapping::AllToAll));
            }
            for s in &mut stages {
                s.duration = TaskDurationConfig::Dist {
                    dist: Distribution::Uniform { lo: 10.0, hi: 100.0 },
                };
            }
            let cfg = SkeletonConfig { name: "p".into(), stages, iteration: None };
            let app = SkeletonApp::generate(&cfg, &mut SimRng::new(seed)).unwrap();
            let cp = app.critical_path();
            prop_assert!(cp <= app.total_work());
            let longest = app.tasks().iter().map(|t| t.duration)
                .fold(SimDuration::ZERO, SimDuration::max);
            prop_assert!(cp >= longest);
        }
    }
}
