//! Concrete task objects generated from a skeleton config.

use aimes_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Application-wide task identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task.{:05}", self.0)
    }
}

/// One file a task reads or writes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FileSpec {
    pub name: String,
    pub size_mb: f64,
}

/// One generated task. The paper's task executables "copy the input files
/// from the file system to RAM, sleep for some amount of time (specified as
/// the runtime), and copy the output files from RAM to the file system" —
/// i.e., a task is fully characterized by its duration and its files.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    pub id: TaskId,
    /// Index of the (expanded) stage this task belongs to.
    pub stage: usize,
    /// Stage name (with iteration suffix where applicable).
    pub stage_name: String,
    pub cores: u32,
    pub duration: SimDuration,
    pub inputs: Vec<FileSpec>,
    pub outputs: Vec<FileSpec>,
    /// Tasks whose outputs this task consumes (empty for external input).
    pub dependencies: Vec<TaskId>,
}

impl TaskSpec {
    /// Total input volume in MB.
    pub fn input_mb(&self) -> f64 {
        self.inputs.iter().map(|f| f.size_mb).sum()
    }

    /// Total output volume in MB.
    pub fn output_mb(&self) -> f64 {
        self.outputs.iter().map(|f| f.size_mb).sum()
    }

    /// The shell-command rendering of this task (one of the paper's three
    /// skeleton output forms).
    pub fn as_shell_command(&self) -> String {
        let ins: Vec<&str> = self.inputs.iter().map(|f| f.name.as_str()).collect();
        let outs: Vec<&str> = self.outputs.iter().map(|f| f.name.as_str()).collect();
        format!(
            "skeleton-task --id {} --sleep {:.1} --inputs {} --outputs {}",
            self.id,
            self.duration.as_secs(),
            ins.join(","),
            outs.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> TaskSpec {
        TaskSpec {
            id: TaskId(3),
            stage: 0,
            stage_name: "map".into(),
            cores: 1,
            duration: SimDuration::from_mins(15.0),
            inputs: vec![
                FileSpec {
                    name: "in.0".into(),
                    size_mb: 1.0,
                },
                FileSpec {
                    name: "in.1".into(),
                    size_mb: 0.5,
                },
            ],
            outputs: vec![FileSpec {
                name: "out.0".into(),
                size_mb: 0.002,
            }],
            dependencies: vec![TaskId(0)],
        }
    }

    #[test]
    fn volumes_sum() {
        let t = task();
        assert!((t.input_mb() - 1.5).abs() < 1e-12);
        assert!((t.output_mb() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn shell_command_contains_everything() {
        let cmd = task().as_shell_command();
        assert!(cmd.contains("--id task.00003"));
        assert!(cmd.contains("--sleep 900.0"));
        assert!(cmd.contains("in.0,in.1"));
        assert!(cmd.contains("out.0"));
    }

    #[test]
    fn task_id_display_padded() {
        assert_eq!(TaskId(7).to_string(), "task.00007");
        assert_eq!(TaskId(12345).to_string(), "task.12345");
    }
}
