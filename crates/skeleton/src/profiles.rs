//! Skeleton parameter sets modelled after the applications the skeleton
//! tool was validated against.
//!
//! §III-A: "We profiled three representative distributed applications —
//! Montage, BLAST, CyberShake-postprocessing — then derived appropriate
//! skeleton parameters" with performance differences of -1.3 %, 1.5 %, and
//! 2.4 % versus the real applications. The exact derived parameters are in
//! the Application Skeleton papers (\[27\], \[28\]); the profiles here follow
//! their published stage structures with representative magnitudes, and are
//! used by the examples and the heterogeneous-workload ablation.

use crate::config::{FileSizeSpec, SkeletonConfig, StageConfig, TaskDurationConfig, TaskMapping};
use aimes_workload::Distribution;

fn stage(
    name: &str,
    tasks: u32,
    duration: TaskDurationConfig,
    input: FileSizeSpec,
    output: FileSizeSpec,
    mapping: TaskMapping,
) -> StageConfig {
    StageConfig {
        name: name.into(),
        task_count: tasks,
        cores_per_task: 1,
        duration,
        input_size_mb: input,
        output_size_mb: output,
        mapping,
    }
}

/// Montage-like mosaicking workflow: many short reprojection tasks, an
/// all-to-all background fit, and a small final co-addition stage.
/// Scales with `tiles` (number of input images).
pub fn montage_like(tiles: u32) -> SkeletonConfig {
    assert!(tiles >= 4, "montage needs at least 4 tiles");
    SkeletonConfig {
        name: format!("montage-{tiles}"),
        stages: vec![
            stage(
                "mProject",
                tiles,
                TaskDurationConfig::LinearOfInput { a: 4.0, b: 10.0 },
                FileSizeSpec::Dist {
                    dist: Distribution::truncated_gaussian(4.0, 1.0, 1.0, 8.0),
                },
                FileSizeSpec::LinearOfInput { a: 1.6, b: 0.0 },
                TaskMapping::External,
            ),
            stage(
                "mDiffFit",
                tiles,
                TaskDurationConfig::Dist {
                    dist: Distribution::truncated_gaussian(8.0, 3.0, 1.0, 20.0),
                },
                FileSizeSpec::constant(0.0),
                FileSizeSpec::constant(0.3),
                TaskMapping::OneToOne,
            ),
            stage(
                "mConcatFit",
                1,
                TaskDurationConfig::LinearOfInput { a: 0.5, b: 5.0 },
                FileSizeSpec::constant(0.0),
                FileSizeSpec::constant(0.1),
                TaskMapping::AllToAll,
            ),
            stage(
                "mAdd",
                1,
                TaskDurationConfig::Dist {
                    dist: Distribution::truncated_gaussian(120.0, 30.0, 30.0, 300.0),
                },
                FileSizeSpec::constant(0.0),
                FileSizeSpec::constant(50.0),
                TaskMapping::AllToAll,
            ),
        ],
        iteration: None,
    }
}

/// BLAST-like split-database search: an embarrassingly parallel bag of
/// medium-length tasks over database shards (Mathog-style split BLAST).
pub fn blast_like(shards: u32) -> SkeletonConfig {
    SkeletonConfig {
        name: format!("blast-{shards}"),
        stages: vec![
            stage(
                "search",
                shards,
                TaskDurationConfig::Dist {
                    // Search time varies widely with shard content.
                    dist: Distribution::LogNormal {
                        mu: 6.3,
                        sigma: 0.5,
                    },
                },
                FileSizeSpec::Dist {
                    dist: Distribution::Uniform { lo: 30.0, hi: 60.0 },
                },
                FileSizeSpec::Dist {
                    dist: Distribution::LogNormal {
                        mu: -1.0,
                        sigma: 0.8,
                    },
                },
                TaskMapping::External,
            ),
            stage(
                "merge",
                1,
                TaskDurationConfig::LinearOfInput { a: 2.0, b: 15.0 },
                FileSizeSpec::constant(0.0),
                FileSizeSpec::constant(5.0),
                TaskMapping::AllToAll,
            ),
        ],
        iteration: None,
    }
}

/// CyberShake-postprocessing-like workload: two waves of many short
/// seismogram/peak-ground-motion tasks with a fan-in.
pub fn cybershake_like(sites: u32) -> SkeletonConfig {
    assert!(
        sites.is_multiple_of(2),
        "cybershake profile wants an even site count"
    );
    SkeletonConfig {
        name: format!("cybershake-{sites}"),
        stages: vec![
            stage(
                "seismogram",
                sites,
                TaskDurationConfig::Dist {
                    dist: Distribution::truncated_gaussian(45.0, 15.0, 5.0, 120.0),
                },
                FileSizeSpec::Dist {
                    dist: Distribution::Uniform { lo: 5.0, hi: 15.0 },
                },
                FileSizeSpec::constant(0.5),
                TaskMapping::External,
            ),
            stage(
                "peak-gm",
                sites,
                TaskDurationConfig::Dist {
                    dist: Distribution::truncated_gaussian(15.0, 5.0, 2.0, 40.0),
                },
                FileSizeSpec::constant(0.0),
                FileSizeSpec::constant(0.05),
                TaskMapping::OneToOne,
            ),
            stage(
                "aggregate",
                sites / 2,
                TaskDurationConfig::Dist {
                    dist: Distribution::Constant { value: 20.0 },
                },
                FileSizeSpec::constant(0.0),
                FileSizeSpec::constant(0.1),
                TaskMapping::ManyToOne,
            ),
        ],
        iteration: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::SkeletonApp;
    use aimes_sim::SimRng;

    #[test]
    fn montage_validates_and_generates() {
        let cfg = montage_like(32);
        cfg.validate().unwrap();
        let app = SkeletonApp::generate(&cfg, &mut SimRng::new(1)).unwrap();
        assert_eq!(app.stage_count(), 4);
        assert_eq!(app.tasks().len(), 32 + 32 + 1 + 1);
        // mProject duration is linear in its input size.
        for t in app.stage_tasks(0) {
            let expect = 4.0 * t.input_mb() + 10.0;
            assert!((t.duration.as_secs() - expect).abs() < 1e-9);
        }
        // The final mAdd consumes every mConcatFit output.
        assert_eq!(app.stage_tasks(3)[0].dependencies.len(), 1);
    }

    #[test]
    fn blast_validates_and_generates() {
        let cfg = blast_like(64);
        cfg.validate().unwrap();
        let app = SkeletonApp::generate(&cfg, &mut SimRng::new(2)).unwrap();
        assert_eq!(app.tasks().len(), 65);
        // Merge reads all 64 search outputs.
        assert_eq!(app.stage_tasks(1)[0].dependencies.len(), 64);
    }

    #[test]
    fn cybershake_validates_and_generates() {
        let cfg = cybershake_like(16);
        cfg.validate().unwrap();
        let app = SkeletonApp::generate(&cfg, &mut SimRng::new(3)).unwrap();
        assert_eq!(app.stage_count(), 3);
        assert_eq!(app.tasks().len(), 16 + 16 + 8);
    }

    #[test]
    fn profiles_are_heterogeneous_in_duration() {
        let app = SkeletonApp::generate(&blast_like(128), &mut SimRng::new(4)).unwrap();
        let durations: Vec<f64> = app
            .stage_tasks(0)
            .iter()
            .map(|t| t.duration.as_secs())
            .collect();
        let min = durations.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = durations.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 2.0, "expected spread, got {min}..{max}");
    }
}
