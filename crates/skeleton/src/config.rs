//! Declarative skeleton descriptions.
//!
//! Mirrors the configuration file the paper's skeleton tool parses: stages
//! with task counts, task-duration and file-size specifications (constants,
//! distributions, or functions of other parameters), inter-stage file
//! mappings, and iteration of stage groups.

use aimes_workload::Distribution;
use serde::{Deserialize, Serialize};

/// How a stage's task inputs connect to the previous stage's outputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TaskMapping {
    /// Each task reads fresh external input files (first stage, or stages
    /// fed from outside the application).
    External,
    /// Task *i* of this stage reads the output of task *i* of the previous
    /// stage (requires equal task counts).
    OneToOne,
    /// Every task of this stage reads every output of the previous stage
    /// (reduce / synchronization stages).
    AllToAll,
    /// Task *i* reads outputs of previous-stage tasks `i*k .. (i+1)*k`
    /// where `k = prev_count / this_count` (fan-in; requires divisibility).
    ManyToOne,
}

/// A file size in MB: a distribution, or a function of another parameter —
/// the paper allows e.g. "output size can be a \[polynomial\] function of
/// task runtime" and "task length can be a linear function of input file
/// size".
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FileSizeSpec {
    /// Sampled from a distribution.
    Dist { dist: Distribution },
    /// `a * input_size_mb + b` (per task, summed over its inputs).
    LinearOfInput { a: f64, b: f64 },
    /// Polynomial in the task's runtime (seconds):
    /// `c0 + c1*t + c2*t^2 + ...`.
    PolyOfRuntime { coeffs: Vec<f64> },
}

impl FileSizeSpec {
    /// A constant size in MB.
    pub fn constant(mb: f64) -> Self {
        FileSizeSpec::Dist {
            dist: Distribution::Constant { value: mb },
        }
    }
}

/// A task duration in seconds: a distribution or a linear function of the
/// task's total input size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TaskDurationConfig {
    Dist {
        dist: Distribution,
    },
    /// `a * input_size_mb + b` seconds.
    LinearOfInput {
        a: f64,
        b: f64,
    },
}

/// One stage of the application.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageConfig {
    pub name: String,
    pub task_count: u32,
    /// Cores per task (1 for all paper experiments; kept for the
    /// "non-uniform task sizes" extension in §V).
    #[serde(default = "default_cores")]
    pub cores_per_task: u32,
    pub duration: TaskDurationConfig,
    /// Per-task input file size — only used when `mapping` is `External`
    /// (otherwise inputs are the previous stage's outputs).
    pub input_size_mb: FileSizeSpec,
    /// Per-task output file size.
    pub output_size_mb: FileSizeSpec,
    pub mapping: TaskMapping,
}

fn default_cores() -> u32 {
    1
}

/// Iterate a contiguous group of stages a number of times (the paper's
/// "(iterative) multistage workflow").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationSpec {
    /// First stage index of the iterated group.
    pub from_stage: usize,
    /// Last stage index (inclusive).
    pub to_stage: usize,
    /// Total number of times the group runs (1 = no extra iterations).
    pub count: u32,
}

/// A complete skeleton application description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SkeletonConfig {
    pub name: String,
    pub stages: Vec<StageConfig>,
    #[serde(default)]
    pub iteration: Option<IterationSpec>,
}

impl SkeletonConfig {
    /// Validate structural constraints; returns a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("skeleton needs at least one stage".into());
        }
        for (i, st) in self.stages.iter().enumerate() {
            if st.task_count == 0 {
                return Err(format!("stage {i} ({}) has zero tasks", st.name));
            }
            if st.cores_per_task == 0 {
                return Err(format!("stage {i} ({}) has zero cores per task", st.name));
            }
            match st.mapping {
                TaskMapping::External => {}
                _ if i == 0 => {
                    return Err(format!(
                        "stage 0 ({}) must use the external mapping",
                        st.name
                    ));
                }
                TaskMapping::OneToOne => {
                    let prev = self.stages[i - 1].task_count;
                    if prev != st.task_count {
                        return Err(format!(
                            "stage {i} ({}): one-to-one needs equal task counts \
                             ({prev} vs {})",
                            st.name, st.task_count
                        ));
                    }
                }
                TaskMapping::ManyToOne => {
                    let prev = self.stages[i - 1].task_count;
                    if !prev.is_multiple_of(st.task_count) {
                        return Err(format!(
                            "stage {i} ({}): many-to-one needs divisibility \
                             ({prev} % {} != 0)",
                            st.name, st.task_count
                        ));
                    }
                }
                TaskMapping::AllToAll => {}
            }
        }
        if let Some(it) = self.iteration {
            if it.count == 0 {
                return Err("iteration count must be >= 1".into());
            }
            if it.from_stage > it.to_stage || it.to_stage >= self.stages.len() {
                return Err(format!(
                    "iteration range {}..={} out of bounds (stages: {})",
                    it.from_stage,
                    it.to_stage,
                    self.stages.len()
                ));
            }
            // The iterated group must be re-enterable: its first stage
            // must not be one-to-one/many-to-one onto a differently-sized
            // predecessor after wrap-around; we only allow wrap when the
            // group's first stage maps External or AllToAll, or counts
            // match the group's last stage.
            if it.count > 1 {
                let first = &self.stages[it.from_stage];
                let last = &self.stages[it.to_stage];
                let ok = match first.mapping {
                    TaskMapping::External | TaskMapping::AllToAll => true,
                    TaskMapping::OneToOne => last.task_count == first.task_count,
                    TaskMapping::ManyToOne => last.task_count.is_multiple_of(first.task_count),
                };
                if !ok {
                    return Err("iterated group's first stage cannot consume its last \
                         stage's outputs"
                        .into());
                }
            }
        }
        Ok(())
    }

    /// Total number of tasks after iteration expansion.
    pub fn total_tasks(&self) -> u64 {
        let base: u64 = self.stages.iter().map(|s| u64::from(s.task_count)).sum();
        match self.iteration {
            None => base,
            Some(it) => {
                let group: u64 = self.stages[it.from_stage..=it.to_stage]
                    .iter()
                    .map(|s| u64::from(s.task_count))
                    .sum();
                base + group * u64::from(it.count - 1)
            }
        }
    }

    /// Parse from the JSON form (the paper's tool reads a config file; ours
    /// is JSON).
    pub fn from_json(json: &str) -> Result<Self, String> {
        let cfg: SkeletonConfig = serde_json::from_str(json).map_err(|e| e.to_string())?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, tasks: u32, mapping: TaskMapping) -> StageConfig {
        StageConfig {
            name: name.into(),
            task_count: tasks,
            cores_per_task: 1,
            duration: TaskDurationConfig::Dist {
                dist: Distribution::Constant { value: 900.0 },
            },
            input_size_mb: FileSizeSpec::constant(1.0),
            output_size_mb: FileSizeSpec::constant(0.002),
            mapping,
        }
    }

    #[test]
    fn valid_single_stage() {
        let cfg = SkeletonConfig {
            name: "bot".into(),
            stages: vec![stage("s0", 8, TaskMapping::External)],
            iteration: None,
        };
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.total_tasks(), 8);
    }

    #[test]
    fn rejects_empty_and_zero() {
        let empty = SkeletonConfig {
            name: "e".into(),
            stages: vec![],
            iteration: None,
        };
        assert!(empty.validate().is_err());
        let zero = SkeletonConfig {
            name: "z".into(),
            stages: vec![stage("s0", 0, TaskMapping::External)],
            iteration: None,
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn first_stage_must_be_external() {
        let cfg = SkeletonConfig {
            name: "bad".into(),
            stages: vec![stage("s0", 8, TaskMapping::OneToOne)],
            iteration: None,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn one_to_one_needs_equal_counts() {
        let good = SkeletonConfig {
            name: "g".into(),
            stages: vec![
                stage("map", 8, TaskMapping::External),
                stage("post", 8, TaskMapping::OneToOne),
            ],
            iteration: None,
        };
        assert!(good.validate().is_ok());
        let bad = SkeletonConfig {
            name: "b".into(),
            stages: vec![
                stage("map", 8, TaskMapping::External),
                stage("post", 4, TaskMapping::OneToOne),
            ],
            iteration: None,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn many_to_one_needs_divisibility() {
        let good = SkeletonConfig {
            name: "g".into(),
            stages: vec![
                stage("map", 8, TaskMapping::External),
                stage("reduce", 2, TaskMapping::ManyToOne),
            ],
            iteration: None,
        };
        assert!(good.validate().is_ok());
        let bad = SkeletonConfig {
            name: "b".into(),
            stages: vec![
                stage("map", 8, TaskMapping::External),
                stage("reduce", 3, TaskMapping::ManyToOne),
            ],
            iteration: None,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn iteration_bounds_checked() {
        let mut cfg = SkeletonConfig {
            name: "it".into(),
            stages: vec![
                stage("s0", 4, TaskMapping::External),
                stage("s1", 4, TaskMapping::OneToOne),
            ],
            iteration: Some(IterationSpec {
                from_stage: 0,
                to_stage: 1,
                count: 3,
            }),
        };
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.total_tasks(), 8 + 8 * 2);
        cfg.iteration = Some(IterationSpec {
            from_stage: 1,
            to_stage: 2,
            count: 2,
        });
        assert!(cfg.validate().is_err());
        cfg.iteration = Some(IterationSpec {
            from_stage: 0,
            to_stage: 1,
            count: 0,
        });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn iterated_group_must_be_reenterable() {
        // Group starts with OneToOne onto a group-last stage of different
        // size: invalid.
        let cfg = SkeletonConfig {
            name: "it".into(),
            stages: vec![
                stage("seed", 4, TaskMapping::External),
                stage("expand", 4, TaskMapping::OneToOne),
                stage("reduce", 2, TaskMapping::ManyToOne),
            ],
            iteration: Some(IterationSpec {
                from_stage: 1,
                to_stage: 2,
                count: 2,
            }),
        };
        // Wrap: "expand" (OneToOne, 4 tasks) would consume "reduce"
        // outputs (2 tasks) — invalid.
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn json_roundtrip() {
        let cfg = SkeletonConfig {
            name: "rt".into(),
            stages: vec![
                stage("map", 16, TaskMapping::External),
                stage("reduce", 4, TaskMapping::ManyToOne),
            ],
            iteration: None,
        };
        let json = cfg.to_json();
        let back = SkeletonConfig::from_json(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn from_json_validates() {
        let bad = r#"{"name":"x","stages":[]}"#;
        assert!(SkeletonConfig::from_json(bad).is_err());
    }
}
