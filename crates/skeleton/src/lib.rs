//! # aimes-skeleton — the Application Skeleton abstraction
//!
//! §III-A: real distributed applications are hard to obtain, build, scale,
//! and share; the paper abstracts them as *skeletons* — "an application is
//! composed of a number of stages (which can be iterated in groups), and
//! each stage has a number of tasks", where "task lengths and file sizes
//! can be statistical distributions or polynomial functions of other
//! parameters".
//!
//! This crate reproduces the skeleton tool:
//!
//! * [`config`] — the declarative skeleton description (serde, so it also
//!   round-trips through the JSON representation the paper's tool emits).
//! * [`task`] — the generated task objects with input/output files and
//!   dependencies.
//! * [`app`] — [`app::SkeletonApp`]: expansion of a config into concrete
//!   tasks via a seeded RNG, plus the paper's output forms (shell command
//!   list, DAG, JSON structure for middleware).
//! * [`classes`] — the three application classes the paper generalizes
//!   (bag-of-tasks = 1 stage, map-reduce = 2 stages, multistage workflow),
//!   including the exact Table I experiment workloads.
//! * [`profiles`] — Montage-, BLAST-, and CyberShake-like parameter sets,
//!   the applications the skeleton tool was validated against.

pub mod app;
pub mod classes;
pub mod config;
pub mod profiles;
pub mod task;

pub use app::SkeletonApp;
pub use classes::{
    bag_of_tasks, map_reduce, multistage_workflow, paper_bag, paper_task_counts, TaskDurationSpec,
};
pub use config::{FileSizeSpec, SkeletonConfig, StageConfig, TaskMapping};
pub use task::{FileSpec, TaskId, TaskSpec};
