//! Statistical distributions, sampled from a deterministic [`SimRng`].
//!
//! The skeleton abstraction lets task lengths and file sizes be "statistical
//! distributions or polynomial functions of other parameters" (§III-A); the
//! background-workload generator needs the heavy-tailed families standard in
//! workload modelling. Everything here is implemented locally (Box–Muller,
//! Marsaglia–Tsang, inverse-CDF) so samples are bit-stable across platforms
//! and `rand` versions.

use aimes_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A sampleable distribution over non-negative reals (negative parameters
/// are allowed where the family supports them; samplers used for durations
/// clamp at construction-specified bounds instead).
///
/// ```
/// use aimes_sim::SimRng;
/// use aimes_workload::Distribution;
///
/// // The paper's task durations: mean 15 min, stdev 5 min, in [1, 30] min.
/// let d = Distribution::truncated_gaussian(900.0, 300.0, 60.0, 1800.0);
/// let mut rng = SimRng::new(1);
/// for _ in 0..100 {
///     let secs = d.sample(&mut rng);
///     assert!((60.0..=1800.0).contains(&secs));
/// }
/// // Truncation is nearly symmetric (-2.8σ / +3σ): tiny upward shift.
/// assert!((d.mean() - 900.0).abs() < 2.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum Distribution {
    /// Always `value`.
    Constant { value: f64 },
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Gaussian truncated by rejection to `[lo, hi]` — the paper's task
    /// durations use mean 15 min, stdev 5 min, bounds [1, 30] min.
    TruncatedGaussian {
        mean: f64,
        stdev: f64,
        lo: f64,
        hi: f64,
    },
    /// Gaussian (unbounded).
    Gaussian { mean: f64, stdev: f64 },
    /// Log-normal with the *underlying* normal's mu/sigma.
    LogNormal { mu: f64, sigma: f64 },
    /// Exponential with the given mean (not rate).
    Exponential { mean: f64 },
    /// Weibull with shape `k` and scale `lambda`.
    Weibull { shape: f64, scale: f64 },
    /// Pareto (Lomax-style heavy tail) with scale `xm > 0`, shape `alpha`.
    Pareto { xm: f64, alpha: f64 },
    /// Gamma with shape `k` and scale `theta`.
    Gamma { shape: f64, scale: f64 },
    /// Log-uniform over `[lo, hi)`: uniform in log-space. Standard model for
    /// parallel-job core counts.
    LogUniform { lo: f64, hi: f64 },
    /// Log-uniform over powers of two in `[2^lo_exp, 2^hi_exp]` (inclusive),
    /// matching the classic Feitelson job-size model.
    PowerOfTwo { lo_exp: u32, hi_exp: u32 },
    /// Empirical: uniformly pick one of the provided values.
    Empirical { values: Vec<f64> },
    /// Two-component mixture: with probability `p` sample `a`, else `b`.
    Mixture {
        p: f64,
        a: Box<Distribution>,
        b: Box<Distribution>,
    },
}

impl Distribution {
    /// Convenience constructor for the paper's 15-minute constant tasks.
    pub fn constant(value: f64) -> Self {
        Distribution::Constant { value }
    }

    /// Convenience constructor for the paper's truncated-Gaussian tasks.
    pub fn truncated_gaussian(mean: f64, stdev: f64, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "truncated gaussian needs lo < hi");
        assert!(stdev > 0.0, "stdev must be positive");
        Distribution::TruncatedGaussian {
            mean,
            stdev,
            lo,
            hi,
        }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            Distribution::Constant { value } => *value,
            Distribution::Uniform { lo, hi } => rng.uniform(*lo, *hi),
            Distribution::Gaussian { mean, stdev } => mean + stdev * standard_normal(rng),
            Distribution::TruncatedGaussian {
                mean,
                stdev,
                lo,
                hi,
            } => {
                // Rejection sampling; the paper's parameters accept ~99.3 %
                // of draws, so this is cheap. Guard with a cap and fall back
                // to clamping for pathological parameterizations.
                for _ in 0..1024 {
                    let v = mean + stdev * standard_normal(rng);
                    if v >= *lo && v <= *hi {
                        return v;
                    }
                }
                mean.clamp(*lo, *hi)
            }
            Distribution::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Distribution::Exponential { mean } => -mean * (1.0 - rng.uniform01()).ln(),
            Distribution::Weibull { shape, scale } => {
                scale * (-(1.0 - rng.uniform01()).ln()).powf(1.0 / shape)
            }
            Distribution::Pareto { xm, alpha } => xm / (1.0 - rng.uniform01()).powf(1.0 / alpha),
            Distribution::Gamma { shape, scale } => gamma_sample(rng, *shape) * scale,
            Distribution::LogUniform { lo, hi } => {
                debug_assert!(*lo > 0.0 && hi > lo);
                (rng.uniform(lo.ln(), hi.ln())).exp()
            }
            Distribution::PowerOfTwo { lo_exp, hi_exp } => {
                debug_assert!(hi_exp >= lo_exp);
                let e = lo_exp + rng.below(u64::from(hi_exp - lo_exp + 1)) as u32;
                f64::from(2u32.pow(e))
            }
            Distribution::Empirical { values } => {
                assert!(!values.is_empty(), "empirical distribution needs values");
                *rng.pick(values)
            }
            Distribution::Mixture { p, a, b } => {
                if rng.chance(*p) {
                    a.sample(rng)
                } else {
                    b.sample(rng)
                }
            }
        }
    }

    /// Draw `n` samples.
    pub fn sample_n(&self, rng: &mut SimRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Analytic mean where closed-form; for the truncated Gaussian the
    /// standard truncated-normal correction is applied; `Empirical` and
    /// `Mixture` are exact.
    pub fn mean(&self) -> f64 {
        match self {
            Distribution::Constant { value } => *value,
            Distribution::Uniform { lo, hi } => (lo + hi) / 2.0,
            Distribution::Gaussian { mean, .. } => *mean,
            Distribution::TruncatedGaussian {
                mean,
                stdev,
                lo,
                hi,
            } => {
                let a = (lo - mean) / stdev;
                let b = (hi - mean) / stdev;
                let z = phi_cdf(b) - phi_cdf(a);
                mean + stdev * (phi_pdf(a) - phi_pdf(b)) / z
            }
            Distribution::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Distribution::Exponential { mean } => *mean,
            Distribution::Weibull { shape, scale } => scale * gamma_fn(1.0 + 1.0 / shape),
            Distribution::Pareto { xm, alpha } => {
                if *alpha > 1.0 {
                    alpha * xm / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Distribution::Gamma { shape, scale } => shape * scale,
            Distribution::LogUniform { lo, hi } => (hi - lo) / (hi.ln() - lo.ln()),
            Distribution::PowerOfTwo { lo_exp, hi_exp } => {
                let n = f64::from(hi_exp - lo_exp + 1);
                (*lo_exp..=*hi_exp)
                    .map(|e| f64::from(2u32.pow(e)))
                    .sum::<f64>()
                    / n
            }
            Distribution::Empirical { values } => values.iter().sum::<f64>() / values.len() as f64,
            Distribution::Mixture { p, a, b } => p * a.mean() + (1.0 - p) * b.mean(),
        }
    }
}

/// Standard normal via Box–Muller (deterministic, two uniforms per pair;
/// we discard the second variate to keep the sampler stateless).
fn standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = loop {
        let u = rng.uniform01();
        if u > 0.0 {
            break u;
        }
    };
    let u2 = rng.uniform01();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gamma(shape, 1) via Marsaglia–Tsang; the shape<1 boost uses the standard
/// U^{1/shape} trick.
fn gamma_sample(rng: &mut SimRng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        let u = loop {
            let u = rng.uniform01();
            if u > 0.0 {
                break u;
            }
        };
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.uniform01();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Standard normal pdf.
fn phi_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cdf via Abramowitz–Stegun 7.1.26 erf approximation
/// (max abs error 1.5e-7 — ample for analytic means used in estimates).
fn phi_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Lanczos approximation of the Gamma function (for Weibull means).
fn gamma_fn(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rng() -> SimRng {
        SimRng::new(0xA1AE5)
    }

    fn sample_mean(d: &Distribution, n: usize) -> f64 {
        let mut r = rng();
        d.sample_n(&mut r, n).iter().sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Distribution::constant(900.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 900.0);
        }
        assert_eq!(d.mean(), 900.0);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Distribution::Uniform { lo: 2.0, hi: 4.0 };
        let mut r = rng();
        for _ in 0..1000 {
            let v = d.sample(&mut r);
            assert!((2.0..4.0).contains(&v));
        }
        assert!((sample_mean(&d, 20_000) - 3.0).abs() < 0.02);
    }

    #[test]
    fn paper_truncated_gaussian_respects_bounds() {
        // Paper: mean 15 min, stdev 5 min, bounds [1, 30] min.
        let d = Distribution::truncated_gaussian(15.0, 5.0, 1.0, 30.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let v = d.sample(&mut r);
            assert!((1.0..=30.0).contains(&v), "sample {v} out of bounds");
        }
        let m = sample_mean(&d, 50_000);
        assert!((m - 15.0).abs() < 0.1, "mean was {m}");
    }

    #[test]
    fn truncated_gaussian_analytic_mean_matches_samples() {
        let d = Distribution::truncated_gaussian(10.0, 8.0, 1.0, 14.0);
        let analytic = d.mean();
        let empirical = sample_mean(&d, 100_000);
        assert!(
            (analytic - empirical).abs() < 0.05,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn gaussian_mean_and_spread() {
        let d = Distribution::Gaussian {
            mean: 5.0,
            stdev: 2.0,
        };
        let mut r = rng();
        let samples = d.sample_n(&mut r, 50_000);
        let m = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / samples.len() as f64;
        assert!((m - 5.0).abs() < 0.05);
        assert!((var.sqrt() - 2.0).abs() < 0.05);
    }

    #[test]
    fn lognormal_mean() {
        let d = Distribution::LogNormal {
            mu: 4.0,
            sigma: 0.5,
        };
        let expect = (4.0f64 + 0.125).exp();
        assert!((sample_mean(&d, 200_000) / expect - 1.0).abs() < 0.02);
    }

    #[test]
    fn exponential_mean_parameterization() {
        let d = Distribution::Exponential { mean: 120.0 };
        assert!((sample_mean(&d, 100_000) / 120.0 - 1.0).abs() < 0.03);
    }

    #[test]
    fn weibull_mean_matches_gamma_formula() {
        let d = Distribution::Weibull {
            shape: 2.0,
            scale: 10.0,
        };
        // E = scale * Gamma(1.5) = 10 * 0.8862.
        assert!((d.mean() - 8.862).abs() < 0.01);
        assert!((sample_mean(&d, 100_000) / d.mean() - 1.0).abs() < 0.02);
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let d = Distribution::Pareto {
            xm: 1.0,
            alpha: 1.5,
        };
        let mut r = rng();
        let samples = d.sample_n(&mut r, 100_000);
        assert!(samples.iter().all(|&v| v >= 1.0));
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > 100.0,
            "heavy tail should produce large values, max {max}"
        );
        let d2 = Distribution::Pareto {
            xm: 1.0,
            alpha: 0.9,
        };
        assert!(d2.mean().is_infinite());
    }

    #[test]
    fn gamma_mean() {
        let d = Distribution::Gamma {
            shape: 3.0,
            scale: 2.0,
        };
        assert_eq!(d.mean(), 6.0);
        assert!((sample_mean(&d, 100_000) / 6.0 - 1.0).abs() < 0.02);
        let small = Distribution::Gamma {
            shape: 0.5,
            scale: 1.0,
        };
        assert!((sample_mean(&small, 200_000) / 0.5 - 1.0).abs() < 0.05);
    }

    #[test]
    fn power_of_two_hits_only_powers() {
        let d = Distribution::PowerOfTwo {
            lo_exp: 3,
            hi_exp: 11,
        };
        let mut r = rng();
        for _ in 0..1000 {
            let v = d.sample(&mut r) as u32;
            assert!(v.is_power_of_two());
            assert!((8..=2048).contains(&v));
        }
    }

    #[test]
    fn log_uniform_bounds() {
        let d = Distribution::LogUniform {
            lo: 10.0,
            hi: 1000.0,
        };
        let mut r = rng();
        let samples = d.sample_n(&mut r, 10_000);
        assert!(samples.iter().all(|&v| (10.0..1000.0).contains(&v)));
        // Median should be near geometric mean (100), not arithmetic mid (505).
        let mut s = samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        assert!((median / 100.0 - 1.0).abs() < 0.15, "median {median}");
    }

    #[test]
    fn empirical_picks_from_values() {
        let d = Distribution::Empirical {
            values: vec![1.0, 2.0, 3.0],
        };
        let mut r = rng();
        for _ in 0..100 {
            let v = d.sample(&mut r);
            assert!(v == 1.0 || v == 2.0 || v == 3.0);
        }
        assert_eq!(d.mean(), 2.0);
    }

    #[test]
    fn mixture_blends_components() {
        let d = Distribution::Mixture {
            p: 0.25,
            a: Box::new(Distribution::constant(0.0)),
            b: Box::new(Distribution::constant(100.0)),
        };
        assert_eq!(d.mean(), 75.0);
        let m = sample_mean(&d, 50_000);
        assert!((m - 75.0).abs() < 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let d = Distribution::truncated_gaussian(900.0, 300.0, 60.0, 1800.0);
        let json = serde_json::to_string(&d).unwrap();
        let back: Distribution = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn erf_and_cdf_sanity() {
        assert!((phi_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((phi_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((phi_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn gamma_fn_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-6);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_truncated_gaussian_in_bounds(
            seed in any::<u64>(),
            mean in 0.0f64..100.0,
            stdev in 0.1f64..50.0,
        ) {
            let lo = mean - 30.0;
            let hi = mean + 30.0;
            let d = Distribution::truncated_gaussian(mean, stdev, lo, hi);
            let mut r = SimRng::new(seed);
            for _ in 0..50 {
                let v = d.sample(&mut r);
                prop_assert!(v >= lo && v <= hi);
            }
        }

        #[test]
        fn prop_nonnegative_families(seed in any::<u64>(), mean in 0.01f64..1e4) {
            let mut r = SimRng::new(seed);
            let exp = Distribution::Exponential { mean };
            let ln = Distribution::LogNormal { mu: mean.ln(), sigma: 1.0 };
            for _ in 0..20 {
                prop_assert!(exp.sample(&mut r) >= 0.0);
                prop_assert!(ln.sample(&mut r) > 0.0);
            }
        }

        #[test]
        fn prop_same_seed_same_samples(seed in any::<u64>()) {
            let d = Distribution::truncated_gaussian(900.0, 300.0, 60.0, 1800.0);
            let mut r1 = SimRng::new(seed);
            let mut r2 = SimRng::new(seed);
            prop_assert_eq!(d.sample_n(&mut r1, 10), d.sample_n(&mut r2, 10));
        }
    }
}
