//! # aimes-workload — distributions and synthetic background load
//!
//! The paper's experiments ran against *production* batch systems whose
//! dynamism (time-varying load, queue length, job mix) is exactly what the
//! execution strategies react to. This crate supplies the reproduction's
//! stand-in: a statistical toolkit ([`dist`]) and a background-workload
//! generator ([`generator`]) producing job streams with the arrival, size,
//! and runtime characteristics reported in the parallel-workload-modelling
//! literature (log-uniform job sizes, log-normal runtimes, Poisson arrivals
//! with diurnal modulation, and user walltime-request overestimation — the
//! key driver of backfill behaviour).
//!
//! [`trace_model`] computes the summary statistics used to check the
//! generated load against the paper's workload claims (e.g. that 30 s–30 min
//! jobs are ~35 % of the XSEDE mix).

pub mod dist;
pub mod generator;
pub mod swf;
pub mod trace_model;

pub use dist::Distribution;
pub use generator::{BackgroundJob, BackgroundWorkload, WorkloadConfig};
pub use swf::{from_swf, to_swf};
pub use trace_model::{summarize, WorkloadSummary};
