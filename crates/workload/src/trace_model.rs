//! Workload summary statistics.
//!
//! The paper justifies its experimental parameters by the XSEDE job mix
//! ("in 2014, more than 13 million jobs were executed on XSEDE with
//! durations between 30s and 30m, 36% of the total XSEDE workload", §IV-A).
//! This module computes the equivalent statistics for generated workloads so
//! experiments can validate their background-load realism.

use crate::generator::BackgroundJob;
use aimes_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Summary of a job stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    pub job_count: usize,
    pub mean_runtime_secs: f64,
    pub median_runtime_secs: f64,
    pub p95_runtime_secs: f64,
    pub mean_cores: f64,
    pub max_cores: u32,
    /// Fraction of jobs with runtime in [30 s, 30 min] — the paper's band.
    pub short_job_fraction: f64,
    /// Total core-seconds of work.
    pub total_core_secs: f64,
    /// Mean walltime-request overestimation factor.
    pub mean_overestimate: f64,
}

/// Compute summary statistics for a job stream. Returns `None` for an empty
/// stream (no meaningful statistics exist).
pub fn summarize(jobs: &[BackgroundJob]) -> Option<WorkloadSummary> {
    if jobs.is_empty() {
        return None;
    }
    let n = jobs.len() as f64;
    let mut runtimes: Vec<f64> = jobs.iter().map(|j| j.runtime.as_secs()).collect();
    runtimes.sort_by(|a, b| a.partial_cmp(b).expect("runtimes are finite"));
    let lo = SimDuration::from_secs(30.0);
    let hi = SimDuration::from_mins(30.0);
    let short = jobs
        .iter()
        .filter(|j| j.runtime >= lo && j.runtime <= hi)
        .count();
    Some(WorkloadSummary {
        job_count: jobs.len(),
        mean_runtime_secs: runtimes.iter().sum::<f64>() / n,
        median_runtime_secs: percentile(&runtimes, 0.5),
        p95_runtime_secs: percentile(&runtimes, 0.95),
        mean_cores: jobs.iter().map(|j| f64::from(j.cores)).sum::<f64>() / n,
        max_cores: jobs.iter().map(|j| j.cores).max().unwrap_or(0),
        short_job_fraction: short as f64 / n,
        total_core_secs: jobs
            .iter()
            .map(|j| f64::from(j.cores) * j.runtime.as_secs())
            .sum(),
        mean_overestimate: jobs
            .iter()
            .map(|j| j.walltime_request / j.runtime)
            .sum::<f64>()
            / n,
    })
}

/// Linear-interpolated percentile of a pre-sorted slice. `q` in [0, 1].
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let idx = pos.floor() as usize;
    let frac = pos - idx as f64;
    if idx + 1 < sorted.len() {
        sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac
    } else {
        sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{BackgroundWorkload, WorkloadConfig};
    use aimes_sim::{SimRng, SimTime};

    #[test]
    fn empty_stream_has_no_summary() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.25), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 0.3), 3.0);
    }

    #[test]
    fn summary_of_generated_load_is_plausible() {
        let mut g =
            BackgroundWorkload::new(WorkloadConfig::production_like(), 2048, SimRng::new(7));
        let jobs = g.generate_until(SimTime::from_secs(14.0 * 86_400.0));
        let s = summarize(&jobs).unwrap();
        assert!(s.job_count > 100);
        // Log-normal: mean > median.
        assert!(s.mean_runtime_secs > s.median_runtime_secs);
        assert!(s.p95_runtime_secs > s.mean_runtime_secs);
        assert!(s.mean_overestimate >= 2.0 && s.mean_overestimate <= 10.0);
        // A nontrivial share of short jobs, in the spirit of the paper's
        // 25–55 % XSEDE band (our default config is not calibrated to hit
        // it exactly).
        assert!(
            s.short_job_fraction > 0.05 && s.short_job_fraction < 0.75,
            "short fraction {}",
            s.short_job_fraction
        );
        assert!(s.max_cores <= 2048);
    }

    #[test]
    fn total_core_secs_adds_up() {
        use crate::generator::BackgroundJob;
        use aimes_sim::SimDuration;
        let jobs = vec![
            BackgroundJob {
                arrival: SimTime::ZERO,
                cores: 2,
                runtime: SimDuration::from_secs(100.0),
                walltime_request: SimDuration::from_secs(200.0),
            },
            BackgroundJob {
                arrival: SimTime::ZERO,
                cores: 3,
                runtime: SimDuration::from_secs(10.0),
                walltime_request: SimDuration::from_secs(10.0),
            },
        ];
        let s = summarize(&jobs).unwrap();
        assert_eq!(s.total_core_secs, 230.0);
        assert_eq!(s.job_count, 2);
        assert_eq!(s.max_cores, 3);
    }
}
