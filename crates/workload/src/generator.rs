//! Synthetic background-workload generation.
//!
//! Each simulated resource carries a stream of background batch jobs that
//! compete with the experiment's pilots for nodes — this is the "resource
//! dynamism" the paper studies. The generator follows the standard
//! parallel-workload models:
//!
//! * **Arrivals**: Poisson process, optionally modulated by a diurnal cycle
//!   (thinning of a non-homogeneous Poisson process).
//! * **Sizes**: log-uniform over powers of two by default (Feitelson model).
//! * **Runtimes**: log-normal by default (heavy right tail).
//! * **Walltime requests**: actual runtime times an overestimation factor —
//!   users notoriously over-request, which is what gives EASY backfill its
//!   holes and makes *small short* jobs (like pilots) sometimes start fast.
//!
//! The arrival rate is derived from a target utilization so that configs
//! transfer between clusters of different sizes.

use crate::dist::Distribution;
use aimes_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// One background job to be fed to a cluster's batch queue.
#[derive(Clone, Debug, PartialEq)]
pub struct BackgroundJob {
    /// Submission time.
    pub arrival: SimTime,
    /// Cores requested (the simulator schedules by core).
    pub cores: u32,
    /// Actual runtime.
    pub runtime: SimDuration,
    /// Requested walltime (>= runtime; jobs are killed at the request).
    pub walltime_request: SimDuration,
}

/// Configuration of a resource's background load.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Long-run fraction of the cluster's core-hours *offered* by
    /// background jobs. Production HPC systems run saturated: values near
    /// (or slightly above) 1.0 keep the queue persistently non-empty,
    /// which is what makes queue waits long and unpredictable. Values
    /// above 1 oversubscribe: the queue grows over time.
    pub target_utilization: f64,
    /// Job core counts.
    pub size_dist: Distribution,
    /// Job runtimes in seconds.
    pub runtime_dist: Distribution,
    /// Multiplicative walltime overestimation factor (>= 1).
    pub overestimate_dist: Distribution,
    /// Amplitude of the diurnal arrival modulation in [0, 1): 0 disables,
    /// 0.5 means the peak rate is 3x the trough rate.
    pub diurnal_amplitude: f64,
}

impl WorkloadConfig {
    /// A production-like default: 80 % utilization, power-of-two sizes
    /// 1–256 cores, log-normal runtimes with ~1 h median and a heavy tail,
    /// 2–10x walltime overestimation, mild diurnal cycle.
    pub fn production_like() -> Self {
        WorkloadConfig {
            target_utilization: 0.80,
            size_dist: Distribution::PowerOfTwo {
                lo_exp: 0,
                hi_exp: 8,
            },
            runtime_dist: Distribution::LogNormal {
                // median e^8.2 ≈ 3641 s ≈ 1 h; sigma 1.4 gives a heavy tail.
                mu: 8.2,
                sigma: 1.4,
            },
            overestimate_dist: Distribution::Uniform { lo: 2.0, hi: 10.0 },
            diurnal_amplitude: 0.3,
        }
    }

    /// Mean arrival interval needed to hit the target utilization on a
    /// cluster with `total_cores`.
    pub fn mean_interarrival(&self, total_cores: u32) -> SimDuration {
        let mean_core_secs = self.size_dist.mean() * self.runtime_dist.mean();
        let capacity_per_sec = f64::from(total_cores) * self.target_utilization;
        SimDuration::from_secs(mean_core_secs / capacity_per_sec)
    }
}

/// Generator state: produces the job stream for one resource.
#[derive(Clone, Debug)]
pub struct BackgroundWorkload {
    config: WorkloadConfig,
    total_cores: u32,
    rng: SimRng,
    next_arrival: SimTime,
}

impl BackgroundWorkload {
    /// Create a generator for a resource of `total_cores`, drawing from the
    /// given RNG stream (fork one per resource).
    pub fn new(config: WorkloadConfig, total_cores: u32, rng: SimRng) -> Self {
        assert!(total_cores > 0);
        assert!(
            config.target_utilization > 0.0 && config.target_utilization < 1.5,
            "target_utilization must be in (0, 1.5)"
        );
        assert!((0.0..1.0).contains(&config.diurnal_amplitude));
        let mut gen = BackgroundWorkload {
            config,
            total_cores,
            rng,
            next_arrival: SimTime::ZERO,
        };
        gen.next_arrival = gen.draw_next_arrival(SimTime::ZERO);
        gen
    }

    /// The config in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Diurnal rate multiplier at time `t` (period 24 h, peak at noon).
    fn rate_multiplier(&self, t: SimTime) -> f64 {
        if self.config.diurnal_amplitude == 0.0 {
            return 1.0;
        }
        let day_frac = (t.as_secs() / 86_400.0).fract();
        1.0 + self.config.diurnal_amplitude * (2.0 * std::f64::consts::PI * (day_frac - 0.25)).sin()
    }

    /// Draw the next arrival strictly after `t` using thinning: sample at
    /// the peak rate, accept with probability rate(t)/peak.
    fn draw_next_arrival(&mut self, t: SimTime) -> SimTime {
        let base = self.config.mean_interarrival(self.total_cores);
        let peak_rate = (1.0 + self.config.diurnal_amplitude) / base.as_secs();
        let mut cur = t;
        loop {
            let gap = -((1.0 - self.rng.uniform01()).ln()) / peak_rate;
            cur += SimDuration::from_secs(gap);
            let accept = self.rate_multiplier(cur) / (peak_rate * base.as_secs());
            if self.rng.chance(accept) {
                return cur;
            }
        }
    }

    /// Draw one job's shape (size, runtime, walltime request).
    fn draw_job(&mut self, arrival: SimTime) -> BackgroundJob {
        let cores =
            (self.config.size_dist.sample(&mut self.rng).round() as u32).clamp(1, self.total_cores);
        let runtime =
            SimDuration::from_secs(self.config.runtime_dist.sample(&mut self.rng).max(1.0));
        let factor = self.config.overestimate_dist.sample(&mut self.rng).max(1.0);
        BackgroundJob {
            arrival,
            cores,
            runtime,
            walltime_request: runtime * factor,
        }
    }

    /// Next job in the stream (infinite iterator semantics).
    pub fn next_job(&mut self) -> BackgroundJob {
        let arrival = self.next_arrival;
        let job = self.draw_job(arrival);
        self.next_arrival = self.draw_next_arrival(arrival);
        job
    }

    /// Peek at the next arrival time without consuming it.
    pub fn peek_arrival(&self) -> SimTime {
        self.next_arrival
    }

    /// Generate the full job list up to `horizon`.
    pub fn generate_until(&mut self, horizon: SimTime) -> Vec<BackgroundJob> {
        let mut jobs = Vec::new();
        while self.peek_arrival() <= horizon {
            jobs.push(self.next_job());
        }
        jobs
    }

    /// Jobs that should already be occupying the machine at t = 0 to avoid a
    /// cold-start transient: a snapshot of the steady state, expressed as
    /// jobs arriving at t = 0 with residual runtimes.
    ///
    /// We fill roughly `target_utilization` of the cores with running jobs
    /// whose *remaining* runtime is sampled from the equilibrium residual
    /// distribution (approximated by resampling the runtime distribution —
    /// conservative for heavy tails), plus `backlog_factor` times the
    /// machine size in queued core demand.
    pub fn initial_condition(&mut self, backlog_factor: f64) -> Vec<BackgroundJob> {
        let mut jobs = Vec::new();
        // Running set: fill (at most) 95 % of the cores.
        let mut core_budget =
            (f64::from(self.total_cores) * self.config.target_utilization.min(0.95)) as i64;
        while core_budget > 0 {
            let mut j = self.draw_job(SimTime::ZERO);
            j.cores = j.cores.min(core_budget.max(1) as u32);
            core_budget -= i64::from(j.cores);
            jobs.push(j);
        }
        // Queued backlog.
        let mut backlog_budget = (f64::from(self.total_cores) * backlog_factor) as i64;
        while backlog_budget > 0 {
            let j = self.draw_job(SimTime::ZERO);
            backlog_budget -= i64::from(j.cores);
            jobs.push(j);
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(util: f64, cores: u32) -> BackgroundWorkload {
        let mut cfg = WorkloadConfig::production_like();
        cfg.target_utilization = util;
        BackgroundWorkload::new(cfg, cores, SimRng::new(99))
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut g = gen(0.8, 1024);
        let mut last = SimTime::ZERO;
        for _ in 0..500 {
            let j = g.next_job();
            assert!(j.arrival > last || (last == SimTime::ZERO && j.arrival >= last));
            last = j.arrival;
        }
    }

    #[test]
    fn walltime_request_never_below_runtime() {
        let mut g = gen(0.8, 1024);
        for _ in 0..500 {
            let j = g.next_job();
            assert!(j.walltime_request >= j.runtime);
            assert!(j.cores >= 1 && j.cores <= 1024);
        }
    }

    #[test]
    fn offered_load_tracks_target_utilization() {
        // Offered core-seconds per wall-second should approximate
        // target_utilization * cores.
        for &util in &[0.5, 0.8] {
            let mut g = gen(util, 2048);
            let horizon = SimTime::from_secs(30.0 * 86_400.0);
            let jobs = g.generate_until(horizon);
            let core_secs: f64 = jobs
                .iter()
                .map(|j| f64::from(j.cores) * j.runtime.as_secs())
                .sum();
            let offered = core_secs / horizon.as_secs() / 2048.0;
            assert!(
                (offered / util - 1.0).abs() < 0.25,
                "offered {offered} vs target {util}"
            );
        }
    }

    #[test]
    fn diurnal_modulation_changes_rates() {
        let mut cfg = WorkloadConfig::production_like();
        cfg.diurnal_amplitude = 0.8;
        let mut g = BackgroundWorkload::new(cfg, 1024, SimRng::new(5));
        let horizon = SimTime::from_secs(20.0 * 86_400.0);
        let jobs = g.generate_until(horizon);
        // Count arrivals by day-quarter; the noon-peak quarters should carry
        // more than the midnight-trough quarters.
        let mut quarters = [0usize; 4];
        for j in &jobs {
            let day_frac = (j.arrival.as_secs() / 86_400.0).fract();
            quarters[(day_frac * 4.0) as usize % 4] += 1;
        }
        let peak = quarters[1] + quarters[2];
        let trough = quarters[0] + quarters[3];
        assert!(
            peak as f64 > trough as f64 * 1.2,
            "peak {peak} trough {trough}"
        );
    }

    #[test]
    fn initial_condition_fills_cores_and_backlog() {
        let mut g = gen(0.8, 1000);
        let jobs = g.initial_condition(0.5);
        let total: i64 = jobs.iter().map(|j| i64::from(j.cores)).sum();
        // 80 % running + 50 % backlog ≈ 1300 cores of demand at t = 0.
        assert!(total >= 1200, "total core demand {total}");
        assert!(jobs.iter().all(|j| j.arrival == SimTime::ZERO));
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut g =
                BackgroundWorkload::new(WorkloadConfig::production_like(), 512, SimRng::new(1234));
            (0..50).map(|_| g.next_job()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn mean_interarrival_scales_inversely_with_cores() {
        let cfg = WorkloadConfig::production_like();
        let small = cfg.mean_interarrival(256);
        let large = cfg.mean_interarrival(4096);
        assert!(small.as_secs() / large.as_secs() > 15.0);
    }

    #[test]
    #[should_panic(expected = "target_utilization")]
    fn rejects_absurd_utilization() {
        let mut cfg = WorkloadConfig::production_like();
        cfg.target_utilization = 1.6; // > 1.5: queue growth would be unbounded
        let _ = BackgroundWorkload::new(cfg, 100, SimRng::new(1));
    }

    #[test]
    fn oversubscription_up_to_limit_is_allowed() {
        let mut cfg = WorkloadConfig::production_like();
        cfg.target_utilization = 1.05;
        let mut g = BackgroundWorkload::new(cfg, 100, SimRng::new(1));
        let _ = g.next_job();
    }
}
