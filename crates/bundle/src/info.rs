//! The information plane: a streaming, staleness-aware layer between the
//! query interface and the raw resource state.
//!
//! The paper's execution strategies assume the middleware can ask a
//! resource "how long would a pilot wait in your queue?" and get a fresh
//! answer. Real pilot systems operate on information that is late,
//! partial, or wrong; strategy quality is highly sensitive to exactly
//! this gap. This module makes the gap explicit:
//!
//! * a **hot pool** — a bounded top-K cache of the most recently queried
//!   resources, each entry carrying its refresh timestamp and a short
//!   wait-sample window. The refresh interval *adapts to queue
//!   volatility*: a resource whose wait estimates swing widely is
//!   re-measured more eagerly than one sitting steady.
//! * a **JIT fetcher** — every query answer is classified as
//!   [`Fresh`](InfoClass::Fresh), [`Stale(age)`](InfoClass::Stale),
//!   [`Corrupt`](InfoClass::Corrupt), or
//!   [`Unavailable`](InfoClass::Unavailable). Degradation is injected by
//!   an optional *disposition* hook (wired by the middleware to the
//!   info-channel fault family), never invented here.
//! * a **typed fallback ladder** — fresh cache → stale cache with
//!   age-discounted (pessimistically inflated) confidence → offline
//!   predictor → conservative static default. Consumers of
//!   `estimate_wait`-shaped answers never panic and never silently use
//!   garbage: a corrupt answer is dropped on the floor and the ladder
//!   says what was used instead.
//!
//! Determinism: with a healthy channel and the default configuration
//! (`base_refresh_secs == 0`), every query performs a live measurement —
//! byte-identical behaviour to the pre-info-plane code, which is what
//! keeps the golden journals pinned. The channel itself draws no RNG;
//! any randomness lives in the injected disposition hook, which the
//! middleware feeds from per-resource forked streams.

use aimes_sim::{MetricsRegistry, Profiler, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Classification of the information behind one answered query.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum InfoClass {
    /// A live measurement, or a cache entry within its refresh interval.
    Fresh,
    /// Served from the hot pool past its refresh interval; carries the
    /// entry's age.
    Stale(SimDuration),
    /// The channel answered garbage; the answer was discarded.
    Corrupt,
    /// The channel did not answer.
    Unavailable,
}

impl InfoClass {
    /// Stable label for journals and tables.
    pub fn label(&self) -> &'static str {
        match self {
            InfoClass::Fresh => "fresh",
            InfoClass::Stale(_) => "stale",
            InfoClass::Corrupt => "corrupt",
            InfoClass::Unavailable => "unavailable",
        }
    }
}

/// Which rung of the fallback ladder produced the answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FallbackRung {
    /// A live measurement against the resource.
    Live,
    /// The hot pool, within the (volatility-adapted) refresh interval.
    CacheHit,
    /// The hot pool, past the refresh interval but within the staleness
    /// horizon; the value is age-discounted.
    StaleCache,
    /// The offline wait predictor (QBETS-style quantile bound).
    Predictor,
    /// The conservative static default — the ladder's floor.
    StaticDefault,
}

impl FallbackRung {
    /// Stable label for journals and tables.
    pub fn label(&self) -> &'static str {
        match self {
            FallbackRung::Live => "live",
            FallbackRung::CacheHit => "cache-hit",
            FallbackRung::StaleCache => "stale-cache",
            FallbackRung::Predictor => "predictor",
            FallbackRung::StaticDefault => "static-default",
        }
    }

    /// True for rungs below the fresh path — the ones counted as
    /// fallbacks.
    pub fn is_fallback(&self) -> bool {
        matches!(
            self,
            FallbackRung::StaleCache | FallbackRung::Predictor | FallbackRung::StaticDefault
        )
    }
}

/// What the channel did for one query (injected; see
/// [`InfoChannel::set_disposition`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InfoDisposition {
    /// The channel answered with a usable value.
    Ok,
    /// The channel answered garbage.
    Corrupt,
    /// The channel did not answer.
    Unavailable,
}

/// Tuning for the information plane. The default configuration is
/// *oracle-equivalent*: zero refresh interval means every healthy query
/// performs a live measurement, so fault-free runs behave byte-for-byte
/// as if the plane were not there.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InfoConfig {
    /// Hot-pool capacity: how many resources keep a cached entry. Must be
    /// positive.
    #[serde(default = "default_hot_pool_k")]
    pub hot_pool_k: usize,
    /// Base refresh interval. Zero (the default) disables caching: every
    /// healthy query measures live.
    #[serde(default)]
    pub base_refresh_secs: f64,
    /// Wait samples kept per entry for the volatility estimate.
    #[serde(default = "default_volatility_window")]
    pub volatility_window: usize,
    /// How strongly volatility shortens the refresh interval:
    /// `effective = base / (1 + gain * cv)` where `cv` is the coefficient
    /// of variation over the sample window.
    #[serde(default = "default_volatility_gain")]
    pub volatility_gain: f64,
    /// Staleness horizon: a cache entry older than this is no longer
    /// served, even degraded. Must not be below `base_refresh_secs`
    /// (inverted thresholds would make every cache hit unusable as a
    /// stale fallback).
    #[serde(default = "default_stale_until")]
    pub stale_until_secs: f64,
    /// Pessimism applied to stale answers: the served wait is inflated by
    /// `1 + discount * age_hours`, so older information claims longer
    /// queues and loses ranking contests against fresher resources.
    #[serde(default = "default_stale_discount")]
    pub stale_discount_per_hour: f64,
    /// The ladder's floor: the wait assumed when nothing else is known.
    /// Deliberately conservative — under total blackout every resource
    /// looks equally slow and selection degrades to name order.
    #[serde(default = "default_static_wait")]
    pub static_default_wait_secs: f64,
}

fn default_hot_pool_k() -> usize {
    8
}
fn default_volatility_window() -> usize {
    8
}
fn default_volatility_gain() -> f64 {
    4.0
}
fn default_stale_until() -> f64 {
    3600.0
}
fn default_stale_discount() -> f64 {
    0.5
}
fn default_static_wait() -> f64 {
    4.0 * 3600.0
}

impl Default for InfoConfig {
    fn default() -> Self {
        InfoConfig {
            hot_pool_k: default_hot_pool_k(),
            base_refresh_secs: 0.0,
            volatility_window: default_volatility_window(),
            volatility_gain: default_volatility_gain(),
            stale_until_secs: default_stale_until(),
            stale_discount_per_hour: default_stale_discount(),
            static_default_wait_secs: default_static_wait(),
        }
    }
}

impl InfoConfig {
    /// Reject configurations that cannot mean what they say, mirroring
    /// `FaultSpec::validate`: callers accepting configs from outside
    /// should refuse to run rather than serve answers from a ladder whose
    /// rungs are out of order.
    pub fn validate(&self) -> Result<(), String> {
        if self.hot_pool_k == 0 {
            return Err("hot_pool_k 0: the hot pool must hold at least one resource".into());
        }
        if self.volatility_window == 0 {
            return Err("volatility_window 0: need at least one sample".into());
        }
        for (v, name) in [
            (self.base_refresh_secs, "base_refresh_secs"),
            (self.volatility_gain, "volatility_gain"),
            (self.stale_until_secs, "stale_until_secs"),
            (self.stale_discount_per_hour, "stale_discount_per_hour"),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} {v}: must be finite and non-negative"));
            }
        }
        if self.stale_until_secs < self.base_refresh_secs {
            return Err(format!(
                "stale_until_secs {} < base_refresh_secs {}: inverted staleness thresholds",
                self.stale_until_secs, self.base_refresh_secs
            ));
        }
        if !(self.static_default_wait_secs.is_finite() && self.static_default_wait_secs > 0.0) {
            return Err(format!(
                "static_default_wait_secs {}: must be finite and positive",
                self.static_default_wait_secs
            ));
        }
        Ok(())
    }
}

/// One degraded (non-fresh) decision, as reported to the sink.
#[derive(Clone, Debug)]
pub struct InfoDecision {
    pub resource: String,
    pub class: InfoClass,
    pub rung: FallbackRung,
    /// Age of the information behind the decision (zero when no cached
    /// value was involved).
    pub age: SimDuration,
    /// The wait actually served, after any discounting.
    pub wait: Option<SimDuration>,
}

/// Monotone counters over one channel's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InfoStats {
    /// Live measurements served.
    pub fresh: u64,
    /// Cache hits within the refresh interval.
    pub cache_hits: u64,
    /// Corrupt answers observed (and discarded).
    pub corrupt: u64,
    /// Queries the channel did not answer.
    pub unavailable: u64,
    /// Decisions served from the stale cache rung.
    pub stale_served: u64,
    /// Decisions served from the offline predictor rung.
    pub predictor_fallbacks: u64,
    /// Decisions served from the static-default rung.
    pub static_fallbacks: u64,
    /// Total information age (seconds) behind non-fresh decisions — the
    /// `stale_decision_secs` accounting surfaced next to Tr/Td.
    pub stale_decision_secs: f64,
}

impl InfoStats {
    /// Total decisions served below the fresh path.
    pub fn info_fallbacks(&self) -> u64 {
        self.stale_served + self.predictor_fallbacks + self.static_fallbacks
    }
}

/// The channel's answer for one query, with its provenance.
#[derive(Clone, Copy, Debug)]
pub struct InfoAnswer {
    /// The wait finally served. `None` means the resource is unusable on
    /// the best information available (e.g. the pilot can never fit).
    pub wait: Option<SimDuration>,
    pub class: InfoClass,
    pub rung: FallbackRung,
}

type DispositionFn = Box<dyn FnMut(&str, SimTime) -> InfoDisposition>;
type InfoSink = Box<dyn FnMut(SimTime, &InfoDecision)>;

struct HotEntry {
    /// Last good answer (`None` = did not fit at refresh time).
    wait: Option<SimDuration>,
    refreshed_at: SimTime,
    /// Recent wait samples (seconds) for the volatility estimate.
    samples: VecDeque<f64>,
}

impl HotEntry {
    /// Coefficient of variation over the sample window; zero until two
    /// samples exist or while the mean is zero.
    fn volatility(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

/// The shared information channel behind every [`ResourceQuery`] in a
/// bundle: hot pool, fetcher, ladder, counters, and the injection hooks.
///
/// [`ResourceQuery`]: crate::query::ResourceQuery
pub struct InfoChannel {
    config: InfoConfig,
    pool: BTreeMap<String, HotEntry>,
    disposition: Option<DispositionFn>,
    sink: Option<InfoSink>,
    metrics: Option<MetricsRegistry>,
    profiler: Profiler,
    stats: InfoStats,
}

impl InfoChannel {
    /// A healthy channel. The configuration is taken as-is; callers
    /// accepting configs from outside should run
    /// [`InfoConfig::validate`] first.
    pub fn new(config: InfoConfig) -> Self {
        InfoChannel {
            config,
            pool: BTreeMap::new(),
            disposition: None,
            sink: None,
            metrics: None,
            profiler: Profiler::disabled(),
            stats: InfoStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &InfoConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> InfoStats {
        self.stats
    }

    /// Install the degradation hook: called once per query with the
    /// resource name and the query time. `None` (the default) means the
    /// channel is healthy.
    pub fn set_disposition(&mut self, f: DispositionFn) {
        self.disposition = Some(f);
    }

    /// Install the decision sink: called for every *degraded* decision
    /// (fresh answers are not reported — in a healthy run the sink is
    /// silent, which is what keeps instrumented journals identical).
    pub fn set_sink(&mut self, f: InfoSink) {
        self.sink = Some(f);
    }

    /// Attach a metrics registry; `bundle.info.*` counters are recorded
    /// through it (one branch per query when disabled).
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = Some(metrics);
    }

    /// Attach a self-profiler; queries accrue to the `bundle.info` label.
    /// The info plane runs inside other components' callbacks rather than
    /// from its own events, so it receives the handle directly (one branch
    /// per query when disabled, like the metrics hook above).
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    fn count(&self, name: &'static str) {
        if let Some(m) = &self.metrics {
            m.inc(|| format!("bundle.info.{name}"));
        }
    }

    /// Volatility-adapted refresh interval for `resource`.
    fn effective_refresh(&self, resource: &str) -> SimDuration {
        let base = self.config.base_refresh_secs;
        if base <= 0.0 {
            return SimDuration::ZERO;
        }
        let cv = self
            .pool
            .get(resource)
            .map(HotEntry::volatility)
            .unwrap_or(0.0);
        SimDuration::from_secs(base / (1.0 + self.config.volatility_gain * cv))
    }

    /// Evict down to the hot-pool capacity: oldest refresh first, name as
    /// the deterministic tie-break.
    fn evict(&mut self) {
        while self.pool.len() > self.config.hot_pool_k {
            let victim = self
                .pool
                .iter()
                .min_by(|a, b| {
                    a.1.refreshed_at
                        .cmp(&b.1.refreshed_at)
                        .then_with(|| a.0.cmp(b.0))
                })
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    self.pool.remove(&name);
                }
                None => break,
            }
        }
    }

    fn record_refresh(&mut self, resource: &str, now: SimTime, wait: Option<SimDuration>) {
        let window = self.config.volatility_window;
        let entry = self.pool.entry(resource.to_string()).or_insert(HotEntry {
            wait: None,
            refreshed_at: now,
            samples: VecDeque::new(),
        });
        entry.wait = wait;
        entry.refreshed_at = now;
        if let Some(w) = wait {
            entry.samples.push_back(w.as_secs());
            while entry.samples.len() > window {
                entry.samples.pop_front();
            }
        }
        self.evict();
    }

    fn report(&mut self, now: SimTime, decision: InfoDecision) {
        if decision.rung.is_fallback() {
            self.stats.stale_decision_secs += decision.age.as_secs();
            if let Some(sink) = &mut self.sink {
                sink(now, &decision);
            }
        }
    }

    /// Answer one setup-time query through the ladder.
    ///
    /// * `fits` — whether the request could ever run on the resource
    ///   (static capacity check; independent of queue state, so it stays
    ///   answerable under any degradation).
    /// * `probe` — the live measurement, invoked only when the channel is
    ///   healthy and the cache entry (if any) is due for refresh.
    /// * `predictor` — the offline rung; consulted only when both cache
    ///   rungs are exhausted.
    pub fn fetch(
        &mut self,
        resource: &str,
        now: SimTime,
        fits: bool,
        probe: impl FnOnce() -> Option<SimDuration>,
        predictor: &mut crate::predictor::QuantileBound,
    ) -> InfoAnswer {
        use crate::predictor::WaitPredictor;

        let _prof = self.profiler.scope("bundle.info");
        let disposition = match &mut self.disposition {
            Some(f) => f(resource, now),
            None => InfoDisposition::Ok,
        };

        if disposition == InfoDisposition::Ok {
            // Healthy channel: hot pool first, live measurement on miss.
            let refresh = self.effective_refresh(resource);
            if !refresh.is_zero() {
                if let Some(entry) = self.pool.get(resource) {
                    let age = now.saturating_since(entry.refreshed_at);
                    if age <= refresh {
                        self.stats.cache_hits += 1;
                        self.count("cache_hit");
                        return InfoAnswer {
                            wait: entry.wait,
                            class: InfoClass::Fresh,
                            rung: FallbackRung::CacheHit,
                        };
                    }
                }
            }
            let wait = probe();
            self.record_refresh(resource, now, wait);
            self.stats.fresh += 1;
            self.count("fresh");
            return InfoAnswer {
                wait,
                class: InfoClass::Fresh,
                rung: FallbackRung::Live,
            };
        }

        // Degraded channel: classify the failure, then walk the ladder.
        let class = match disposition {
            InfoDisposition::Corrupt => {
                self.stats.corrupt += 1;
                self.count("corrupt");
                InfoClass::Corrupt
            }
            InfoDisposition::Unavailable => {
                self.stats.unavailable += 1;
                self.count("unavailable");
                InfoClass::Unavailable
            }
            InfoDisposition::Ok => unreachable!("handled above"),
        };

        // Rung 2: stale cache, age-discounted.
        let stale_until = SimDuration::from_secs(self.config.stale_until_secs);
        if let Some(entry) = self.pool.get(resource) {
            let age = now.saturating_since(entry.refreshed_at);
            if age <= stale_until {
                let wait = entry
                    .wait
                    .map(|w| w * (1.0 + self.config.stale_discount_per_hour * age.as_hours()));
                self.stats.stale_served += 1;
                self.count("fallback_stale_cache");
                let decision = InfoDecision {
                    resource: resource.to_string(),
                    class: InfoClass::Stale(age),
                    rung: FallbackRung::StaleCache,
                    age,
                    wait,
                };
                self.report(now, decision);
                return InfoAnswer {
                    wait,
                    class: InfoClass::Stale(age),
                    rung: FallbackRung::StaleCache,
                };
            }
        }

        // Rungs 3 and 4 need the static capacity check: a pilot that can
        // never fit stays unusable whatever we assume about the queue.
        if !fits {
            return InfoAnswer {
                wait: None,
                class,
                rung: FallbackRung::StaticDefault,
            };
        }

        // Rung 3: offline predictor, when it has learned anything.
        if predictor.observations() > 0 {
            if let Some(wait) = predictor.predict() {
                self.stats.predictor_fallbacks += 1;
                self.count("fallback_predictor");
                let decision = InfoDecision {
                    resource: resource.to_string(),
                    class,
                    rung: FallbackRung::Predictor,
                    age: SimDuration::ZERO,
                    wait: Some(wait),
                };
                self.report(now, decision);
                return InfoAnswer {
                    wait: Some(wait),
                    class,
                    rung: FallbackRung::Predictor,
                };
            }
        }

        // Rung 4: the conservative static floor.
        let wait = SimDuration::from_secs(self.config.static_default_wait_secs);
        self.stats.static_fallbacks += 1;
        self.count("fallback_static");
        let decision = InfoDecision {
            resource: resource.to_string(),
            class,
            rung: FallbackRung::StaticDefault,
            age: SimDuration::ZERO,
            wait: Some(wait),
        };
        self.report(now, decision);
        InfoAnswer {
            wait: Some(wait),
            class,
            rung: FallbackRung::StaticDefault,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{QuantileBound, WaitPredictor};

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }
    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn healthy(config: InfoConfig) -> InfoChannel {
        InfoChannel::new(config)
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(InfoConfig::default().validate().is_ok());
        let zero_pool = InfoConfig {
            hot_pool_k: 0,
            ..InfoConfig::default()
        };
        assert!(zero_pool.validate().unwrap_err().contains("hot_pool_k"));
        let inverted = InfoConfig {
            base_refresh_secs: 600.0,
            stale_until_secs: 100.0,
            ..InfoConfig::default()
        };
        assert!(inverted.validate().unwrap_err().contains("inverted"));
        let bad_floor = InfoConfig {
            static_default_wait_secs: 0.0,
            ..InfoConfig::default()
        };
        assert!(bad_floor.validate().is_err());
    }

    #[test]
    fn default_config_always_probes_live() {
        // base_refresh 0 = oracle equivalence: the cache never answers.
        let mut ch = healthy(InfoConfig::default());
        let mut p = QuantileBound::qbets_default();
        for i in 0..3 {
            let a = ch.fetch("r", t(f64::from(i)), true, || Some(d(100.0)), &mut p);
            assert_eq!(a.rung, FallbackRung::Live);
            assert_eq!(a.class, InfoClass::Fresh);
            assert_eq!(a.wait, Some(d(100.0)));
        }
        let s = ch.stats();
        assert_eq!(s.fresh, 3);
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.info_fallbacks(), 0);
    }

    #[test]
    fn cache_serves_within_refresh_interval() {
        let mut ch = healthy(InfoConfig {
            base_refresh_secs: 300.0,
            ..InfoConfig::default()
        });
        let mut p = QuantileBound::qbets_default();
        let a = ch.fetch("r", t(0.0), true, || Some(d(50.0)), &mut p);
        assert_eq!(a.rung, FallbackRung::Live);
        // Within the interval: served from the pool, probe not invoked.
        let b = ch.fetch("r", t(100.0), true, || panic!("probe must not run"), &mut p);
        assert_eq!(b.rung, FallbackRung::CacheHit);
        assert_eq!(b.wait, Some(d(50.0)));
        // Past the interval: measured live again.
        let c = ch.fetch("r", t(400.0), true, || Some(d(75.0)), &mut p);
        assert_eq!(c.rung, FallbackRung::Live);
        assert_eq!(c.wait, Some(d(75.0)));
        assert_eq!(ch.stats().cache_hits, 1);
    }

    #[test]
    fn volatility_shortens_the_refresh_interval() {
        let config = InfoConfig {
            base_refresh_secs: 300.0,
            volatility_gain: 4.0,
            ..InfoConfig::default()
        };
        let mut steady = healthy(config.clone());
        let mut p = QuantileBound::qbets_default();
        for i in 0..4 {
            steady.fetch(
                "r",
                t(f64::from(i) * 400.0),
                true,
                || Some(d(100.0)),
                &mut p,
            );
        }
        assert_eq!(
            steady.effective_refresh("r"),
            d(300.0),
            "cv 0: full interval"
        );

        let mut choppy = healthy(config);
        let waits = [10.0, 500.0, 20.0, 800.0];
        for (i, w) in waits.iter().enumerate() {
            choppy.fetch("r", t(i as f64 * 400.0), true, || Some(d(*w)), &mut p);
        }
        assert!(
            choppy.effective_refresh("r") < d(150.0),
            "volatile queue must re-measure eagerly, got {:?}",
            choppy.effective_refresh("r")
        );
    }

    #[test]
    fn hot_pool_evicts_oldest_beyond_k() {
        let mut ch = healthy(InfoConfig {
            hot_pool_k: 2,
            base_refresh_secs: 1000.0,
            ..InfoConfig::default()
        });
        let mut p = QuantileBound::qbets_default();
        ch.fetch("a", t(0.0), true, || Some(d(1.0)), &mut p);
        ch.fetch("b", t(10.0), true, || Some(d(2.0)), &mut p);
        ch.fetch("c", t(20.0), true, || Some(d(3.0)), &mut p);
        // "a" (oldest refresh) was evicted; "b" and "c" still serve.
        assert!(!ch.pool.contains_key("a"));
        assert!(ch.pool.contains_key("b"));
        let hit = ch.fetch("c", t(25.0), true, || panic!("cached"), &mut p);
        assert_eq!(hit.rung, FallbackRung::CacheHit);
    }

    #[test]
    fn ladder_walks_stale_predictor_static() {
        let mut ch = healthy(InfoConfig {
            base_refresh_secs: 10.0,
            stale_until_secs: 1000.0,
            stale_discount_per_hour: 1.0,
            ..InfoConfig::default()
        });
        ch.set_disposition(Box::new(|_, _| InfoDisposition::Ok));
        let mut p = QuantileBound::qbets_default();
        // Seed the cache with a live measurement at t=0.
        ch.fetch("r", t(0.0), true, || Some(d(1800.0)), &mut p);

        // Now the channel goes dark: stale cache serves, age-discounted.
        ch.set_disposition(Box::new(|_, _| InfoDisposition::Unavailable));
        let a = ch.fetch("r", t(900.0), true, || panic!("channel is dark"), &mut p);
        assert_eq!(a.rung, FallbackRung::StaleCache);
        assert_eq!(a.class, InfoClass::Stale(d(900.0)));
        // 1800 s * (1 + 1.0 * 0.25 h) = 2250 s: older information claims
        // a longer queue.
        assert_eq!(a.wait, Some(d(2250.0)));

        // Past the staleness horizon, the predictor rung answers.
        for w in [100.0, 200.0, 300.0, 400.0] {
            p.observe(d(w));
        }
        let b = ch.fetch("r", t(5000.0), true, || unreachable!(), &mut p);
        assert_eq!(b.rung, FallbackRung::Predictor);
        assert_eq!(b.class, InfoClass::Unavailable);
        assert!(b.wait.is_some());

        // With no predictor either, the static floor answers.
        let mut empty = QuantileBound::qbets_default();
        let c = ch.fetch("never-seen", t(5000.0), true, || unreachable!(), &mut empty);
        assert_eq!(c.rung, FallbackRung::StaticDefault);
        assert_eq!(c.wait, Some(d(default_static_wait())));

        // Oversized requests stay unusable on every rung.
        let d0 = ch.fetch(
            "never-seen",
            t(5000.0),
            false,
            || unreachable!(),
            &mut empty,
        );
        assert_eq!(d0.wait, None);

        let s = ch.stats();
        assert_eq!(s.stale_served, 1);
        assert_eq!(s.predictor_fallbacks, 1);
        assert_eq!(s.static_fallbacks, 1);
        assert_eq!(s.info_fallbacks(), 3);
        assert_eq!(s.stale_decision_secs, 900.0);
    }

    #[test]
    fn corrupt_answers_are_never_served() {
        // A corrupt answer must not reach the caller even when the probe
        // would have produced one: the ladder substitutes the stale cache.
        let mut ch = healthy(InfoConfig {
            base_refresh_secs: 10.0,
            ..InfoConfig::default()
        });
        let mut p = QuantileBound::qbets_default();
        ch.fetch("r", t(0.0), true, || Some(d(100.0)), &mut p);
        ch.set_disposition(Box::new(|_, _| InfoDisposition::Corrupt));
        let a = ch.fetch("r", t(60.0), true, || Some(d(99999.0)), &mut p);
        assert_eq!(a.rung, FallbackRung::StaleCache);
        assert!(
            a.wait.unwrap() < d(200.0),
            "garbage probe value leaked through"
        );
        assert_eq!(ch.stats().corrupt, 1);
    }

    #[test]
    fn sink_sees_only_degraded_decisions() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let mut ch = healthy(InfoConfig::default());
        ch.set_sink(Box::new(move |_, d| {
            sink.borrow_mut()
                .push(format!("{}:{}", d.resource, d.rung.label()));
        }));
        let mut p = QuantileBound::qbets_default();
        ch.fetch("r", t(0.0), true, || Some(d(10.0)), &mut p);
        assert!(seen.borrow().is_empty(), "fresh answers are not reported");
        ch.set_disposition(Box::new(|_, _| InfoDisposition::Unavailable));
        ch.fetch("r", t(1.0), true, || unreachable!(), &mut p);
        assert_eq!(seen.borrow().as_slice(), ["r:stale-cache"]);
    }
}
