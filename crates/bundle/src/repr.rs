//! Uniform resource representation.
//!
//! §III-B: "the resource bundle models resources across three basic
//! categories: compute, network, and storage. Resource measures that are
//! meaningful across multiple platforms are identified in each category.
//! For example, the property 'setup time' of a compute resource means queue
//! wait time on a HPC cluster or virtual machine startup latency on a
//! cloud."

use aimes_cluster::{Cluster, ClusterMetrics};
use aimes_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Compute category.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComputeInfo {
    pub total_cores: u32,
    pub cores_per_node: u32,
    pub free_cores: u32,
    pub running_jobs: usize,
    pub queued_jobs: usize,
    pub queued_cores: u64,
    /// Time-averaged utilization in [0, 1].
    pub utilization: f64,
}

/// Network category (wide-area, as seen from the middleware host).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkInfo {
    pub ingress_mbps: f64,
    pub egress_mbps: f64,
    pub latency_secs: f64,
}

/// Storage category. The simulated resources model a shared filesystem
/// whose effective bandwidth the staging model uses; capacity is nominal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StorageInfo {
    pub capacity_gb: f64,
    pub shared_fs: bool,
}

/// The uniform characterization of one resource.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceRepresentation {
    pub name: String,
    pub compute: ComputeInfo,
    pub network: NetworkInfo,
    pub storage: StorageInfo,
}

impl ResourceRepresentation {
    /// Build the representation from a live cluster at time `now`.
    pub fn from_cluster(cluster: &Cluster, now: SimTime) -> Self {
        let cfg = cluster.config();
        let m: ClusterMetrics = cluster.metrics(now);
        ResourceRepresentation {
            name: cfg.name.clone(),
            compute: ComputeInfo {
                total_cores: m.total_cores,
                cores_per_node: cfg.cores_per_node,
                free_cores: m.free_cores,
                running_jobs: m.running_jobs,
                queued_jobs: m.queued_jobs,
                queued_cores: m.queued_cores,
                utilization: m.utilization,
            },
            network: NetworkInfo {
                ingress_mbps: cfg.ingress_mbps,
                egress_mbps: cfg.egress_mbps,
                latency_secs: cfg.transfer_latency.as_secs(),
            },
            storage: StorageInfo {
                // Nominal: 1 GB of scratch per core, shared filesystem.
                capacity_gb: f64::from(cfg.total_cores),
                shared_fs: true,
            },
        }
    }

    /// Queue pressure: queued core demand relative to machine size. The
    /// simplest cross-resource congestion signal.
    pub fn queue_pressure(&self) -> f64 {
        self.compute.queued_cores as f64 / f64::from(self.compute.total_cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_cluster::{ClusterConfig, JobRequest};
    use aimes_sim::{SimDuration, Simulation};

    #[test]
    fn representation_mirrors_cluster() {
        let mut sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("res", 128));
        c.submit(
            &mut sim,
            JobRequest::background(
                32,
                SimDuration::from_secs(100.0),
                SimDuration::from_secs(100.0),
            ),
        );
        sim.run_until(sim.now());
        let r = ResourceRepresentation::from_cluster(&c, sim.now());
        assert_eq!(r.name, "res");
        assert_eq!(r.compute.total_cores, 128);
        assert_eq!(r.compute.free_cores, 96);
        assert_eq!(r.compute.running_jobs, 1);
        assert_eq!(r.network.ingress_mbps, 100.0);
        assert!(r.storage.shared_fs);
    }

    #[test]
    fn queue_pressure_scales_with_backlog() {
        let mut sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("res", 16));
        let d = SimDuration::from_secs(1000.0);
        c.submit(&mut sim, JobRequest::background(16, d, d));
        c.submit(&mut sim, JobRequest::background(16, d, d));
        c.submit(&mut sim, JobRequest::background(16, d, d));
        sim.run_until(sim.now());
        let r = ResourceRepresentation::from_cluster(&c, sim.now());
        // One running, two queued → 32 queued cores on a 16-core machine.
        assert_eq!(r.queue_pressure(), 2.0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("res", 8));
        sim.run_until(sim.now());
        let r = ResourceRepresentation::from_cluster(&c, sim.now());
        let json = serde_json::to_string(&r).unwrap();
        let back: ResourceRepresentation = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
