//! The monitoring interface.
//!
//! §III-B: "The monitoring interface can be used to inquire about resource
//! state and to chose system events for which to receive notification. For
//! example, performance variation within a cluster can be monitored so that
//! when the average performance has dropped below a certain threshold for a
//! certain period, subscribers of such an event will be notified."
//!
//! Implemented as periodic sampling of a chosen [`Metric`] with a dwell
//! requirement: the predicate must hold for `dwell` continuous time before
//! a notification fires, and the subscription re-arms once it stops
//! holding.

use aimes_cluster::Cluster;
use aimes_sim::{SimDuration, SimTime, Simulation};
use std::cell::RefCell;
use std::rc::Rc;

/// Observable per-resource metrics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Time-averaged core utilization in [0, 1].
    Utilization,
    /// Number of queued jobs.
    QueueLength,
    /// Currently free cores.
    FreeCores,
    /// Queued core demand relative to machine size.
    QueuePressure,
}

impl Metric {
    fn sample(self, cluster: &Cluster, now: SimTime) -> f64 {
        let m = cluster.metrics(now);
        match self {
            Metric::Utilization => m.utilization,
            Metric::QueueLength => m.queued_jobs as f64,
            Metric::FreeCores => f64::from(m.free_cores),
            Metric::QueuePressure => m.queued_cores as f64 / f64::from(m.total_cores),
        }
    }
}

/// Condition for a subscription.
#[derive(Clone, Copy, Debug)]
pub enum Condition {
    Above(f64),
    Below(f64),
}

impl Condition {
    fn holds(self, v: f64) -> bool {
        match self {
            Condition::Above(t) => v > t,
            Condition::Below(t) => v < t,
        }
    }
}

/// Callback receiving the metric value when a notification fires.
type NotificationCallback = Box<dyn FnMut(&mut Simulation, f64)>;

struct Subscription {
    cluster: Cluster,
    metric: Metric,
    condition: Condition,
    dwell: SimDuration,
    holding_since: Option<SimTime>,
    active: bool,
    fired: u64,
    callback: NotificationCallback,
}

/// Handle to cancel a subscription and inspect its firing count.
#[derive(Clone)]
pub struct MonitorHandle {
    sub: Rc<RefCell<Subscription>>,
}

impl MonitorHandle {
    /// Stop future notifications.
    pub fn cancel(&self) {
        self.sub.borrow_mut().active = false;
    }

    /// How many notifications have fired so far.
    pub fn fired(&self) -> u64 {
        self.sub.borrow().fired
    }
}

/// The monitoring service: owns subscriptions and their sampling events.
#[derive(Default)]
pub struct MonitorService;

impl MonitorService {
    /// Subscribe to `metric` on `cluster`: `callback` fires (with the
    /// current value) once the condition has held for `dwell`, then
    /// re-arms after the condition breaks. Sampling happens every
    /// `interval`.
    pub fn subscribe(
        sim: &mut Simulation,
        cluster: Cluster,
        metric: Metric,
        condition: Condition,
        dwell: SimDuration,
        interval: SimDuration,
        callback: impl FnMut(&mut Simulation, f64) + 'static,
    ) -> MonitorHandle {
        assert!(interval.as_secs() > 0.0, "interval must be positive");
        let sub = Rc::new(RefCell::new(Subscription {
            cluster,
            metric,
            condition,
            dwell,
            holding_since: None,
            active: true,
            fired: 0,
            callback: Box::new(callback),
        }));
        Self::schedule_sample(sim, sub.clone(), interval);
        MonitorHandle { sub }
    }

    fn schedule_sample(
        sim: &mut Simulation,
        sub: Rc<RefCell<Subscription>>,
        interval: SimDuration,
    ) {
        sim.schedule_in(interval, move |sim| {
            let now = sim.now();
            enum Action {
                Stop,
                Continue,
                Fire(f64),
            }
            let action = {
                let mut s = sub.borrow_mut();
                if !s.active {
                    Action::Stop
                } else {
                    let v = s.metric.sample(&s.cluster, now);
                    if s.condition.holds(v) {
                        let since = *s.holding_since.get_or_insert(now);
                        if now.since(since) >= s.dwell {
                            s.fired += 1;
                            // Re-arm: require the condition to break and
                            // dwell again before the next notification.
                            s.holding_since = None;
                            Action::Fire(v)
                        } else {
                            Action::Continue
                        }
                    } else {
                        s.holding_since = None;
                        Action::Continue
                    }
                }
            };
            match action {
                Action::Stop => {}
                Action::Continue => Self::schedule_sample(sim, sub, interval),
                Action::Fire(v) => {
                    // Take the callback out to avoid holding the borrow
                    // while user code runs.
                    let mut cb = {
                        let mut s = sub.borrow_mut();
                        std::mem::replace(
                            &mut s.callback,
                            Box::new(|_: &mut Simulation, _: f64| {}),
                        )
                    };
                    cb(sim, v);
                    sub.borrow_mut().callback = cb;
                    Self::schedule_sample(sim, sub, interval);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_cluster::{ClusterConfig, JobRequest};

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn fires_after_dwell() {
        let mut sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("r", 4));
        // Keep the machine fully busy from t=0 to t=100.
        c.submit(&mut sim, JobRequest::background(4, d(100.0), d(100.0)));
        let fired_at: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![]));
        let f2 = fired_at.clone();
        let h = MonitorService::subscribe(
            &mut sim,
            c.clone(),
            Metric::FreeCores,
            Condition::Below(1.0),
            d(30.0),
            d(10.0),
            move |sim, _v| f2.borrow_mut().push(sim.now().as_secs()),
        );
        sim.run_until(SimTime::from_secs(200.0));
        // Condition holds from t=0; first sample at t=10; dwell of 30 s is
        // satisfied at the t=40 sample.
        assert_eq!(fired_at.borrow().first().copied(), Some(40.0));
        assert!(h.fired() >= 1);
    }

    #[test]
    fn does_not_fire_without_dwell() {
        let mut sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("r", 4));
        // Busy only for 15 s — shorter than the 30 s dwell.
        c.submit(&mut sim, JobRequest::background(4, d(15.0), d(15.0)));
        let h = MonitorService::subscribe(
            &mut sim,
            c.clone(),
            Metric::FreeCores,
            Condition::Below(1.0),
            d(30.0),
            d(5.0),
            |_, _| panic!("must not fire"),
        );
        sim.run_until(SimTime::from_secs(100.0));
        assert_eq!(h.fired(), 0);
        h.cancel();
    }

    #[test]
    fn rearms_after_condition_breaks() {
        let mut sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("r", 4));
        // Two busy periods separated by idleness.
        c.submit(&mut sim, JobRequest::background(4, d(50.0), d(50.0)));
        let c2 = c.clone();
        sim.schedule_at(SimTime::from_secs(100.0), move |sim| {
            c2.submit(sim, JobRequest::background(4, d(50.0), d(50.0)));
        });
        let h = MonitorService::subscribe(
            &mut sim,
            c.clone(),
            Metric::FreeCores,
            Condition::Below(1.0),
            d(20.0),
            d(10.0),
            |_, _| {},
        );
        sim.run_until(SimTime::from_secs(200.0));
        assert_eq!(h.fired(), 2);
    }

    #[test]
    fn cancel_stops_sampling() {
        let mut sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("r", 4));
        c.submit(&mut sim, JobRequest::background(4, d(1000.0), d(1000.0)));
        let h = MonitorService::subscribe(
            &mut sim,
            c,
            Metric::Utilization,
            Condition::Above(0.5),
            d(10.0),
            d(10.0),
            |_, _| {},
        );
        h.cancel();
        sim.run_until(SimTime::from_secs(500.0));
        assert_eq!(h.fired(), 0);
        // The sampling chain stopped: no events besides the job lifecycle.
        assert!(sim.pending_events() <= 1);
    }

    #[test]
    fn queue_metrics_observable() {
        let mut sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("r", 4));
        c.submit(&mut sim, JobRequest::background(4, d(100.0), d(100.0)));
        c.submit(&mut sim, JobRequest::background(4, d(100.0), d(100.0)));
        sim.run_until(sim.now());
        let now = sim.now();
        assert_eq!(Metric::QueueLength.sample(&c, now), 1.0);
        assert_eq!(Metric::QueuePressure.sample(&c, now), 1.0);
        assert_eq!(Metric::FreeCores.sample(&c, now), 0.0);
    }
}
