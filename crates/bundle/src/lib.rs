//! # aimes-bundle — the Bundle resource abstraction
//!
//! §III-B: "Our resource abstraction is called 'Bundle' to connote the
//! characterization of a collection of resources. ... A resource bundle has
//! two components: resource representation and resource interface."
//!
//! * [`repr`] — the uniform resource representation over the compute,
//!   network, and storage categories, with cross-platform measures such as
//!   "setup time" (queue wait on HPC, VM startup on clouds).
//! * [`query`] — the query interface with its two modes: **on-demand**
//!   (real-time measurements) and **predictive** (forecasts from
//!   historical measurements).
//! * [`predictor`] — queue-wait estimators: a QBETS-style binomial
//!   quantile bound, exponential smoothing, and a queue-replay estimator.
//! * [`info`] — the information plane: a hot-pool top-K cache with
//!   volatility-adaptive refresh, a JIT fetcher classifying every answer
//!   as fresh / stale / corrupt / unavailable, and the typed fallback
//!   ladder that keeps `estimate_wait`-driven decisions usable when the
//!   information channel degrades.
//! * [`monitor`] — the monitoring interface: threshold subscriptions with
//!   notification events ("when the average performance has dropped below
//!   a certain threshold for a certain period, subscribers ... will be
//!   notified").
//! * [`discovery`] — the discovery interface (the paper's named future
//!   work): a compact requirements language that tailors a bundle from
//!   abstract constraints.
//! * [`bundle`] — the aggregate: a [`bundle::Bundle`] over many resources
//!   with ranking operations the Execution Manager uses for resource
//!   selection. A resource "may be shared across multiple bundles": bundles
//!   hold cheap handles, never ownership.

pub mod bundle;
pub mod discovery;
pub mod info;
pub mod monitor;
pub mod predictor;
pub mod query;
pub mod repr;

pub use bundle::{Bundle, BundleResource};
pub use discovery::{discover, Requirement};
pub use info::{
    FallbackRung, InfoAnswer, InfoChannel, InfoClass, InfoConfig, InfoDecision, InfoDisposition,
    InfoStats,
};
pub use monitor::{Condition, Metric, MonitorHandle, MonitorService};
pub use predictor::{ExpSmoothing, QuantileBound, WaitPredictor};
pub use query::{QueryMode, ResourceQuery};
pub use repr::{ComputeInfo, NetworkInfo, ResourceRepresentation, StorageInfo};
