//! Queue-wait prediction.
//!
//! §III-B: "Two query modes are supported: on-demand and predictive. ...
//! the predictive mode offers forecasts based on historical measurements of
//! resource utilization instead of queue waiting time, which is extremely
//! hard to predict accurately \[24\], \[25\], \[36\]."
//!
//! [`QuantileBound`] follows the QBETS idea (Nurmi/Brevik/Wolski, the
//! paper's ref \[24\]): rather than predicting the wait, bound a chosen
//! quantile of the wait distribution from history, with a binomial
//! confidence correction. [`ExpSmoothing`] is the naive point-forecast
//! baseline the literature warns about.

use aimes_sim::SimDuration;

/// A predictor of queue waits from a history of observed waits.
pub trait WaitPredictor {
    /// Ingest one observed wait.
    fn observe(&mut self, wait: SimDuration);

    /// Forecast a wait bound/estimate; `None` until enough history exists.
    fn predict(&self) -> Option<SimDuration>;

    /// Number of observations ingested.
    fn observations(&self) -> usize;
}

/// QBETS-style quantile upper bound.
///
/// Keeps the most recent `window` observations; predicts an upper bound on
/// the `quantile`-quantile of the wait distribution at `confidence`
/// confidence, using the normal approximation to the binomial order
/// statistic: the bound is the sample at rank
/// `ceil(n·q + z·sqrt(n·q·(1−q)))`.
#[derive(Clone, Debug)]
pub struct QuantileBound {
    window: usize,
    quantile: f64,
    z: f64,
    samples: Vec<f64>,
    total_seen: usize,
}

impl QuantileBound {
    /// `quantile` in (0,1); `confidence` in (0.5, 1) mapped to a z-score.
    pub fn new(window: usize, quantile: f64, confidence: f64) -> Self {
        assert!(window >= 4, "window too small");
        assert!((0.0..1.0).contains(&quantile) && quantile > 0.0);
        assert!((0.5..1.0).contains(&confidence));
        // Inverse normal CDF at `confidence`, via Acklam-style rational
        // approximation restricted to the upper tail we need.
        let z = inverse_normal_cdf(confidence);
        QuantileBound {
            window,
            quantile,
            z,
            samples: Vec::new(),
            total_seen: 0,
        }
    }

    /// The canonical QBETS configuration: 95th-percentile bound at 95 %
    /// confidence over a 64-observation window.
    pub fn qbets_default() -> Self {
        QuantileBound::new(64, 0.95, 0.95)
    }
}

impl WaitPredictor for QuantileBound {
    fn observe(&mut self, wait: SimDuration) {
        if self.samples.len() == self.window {
            self.samples.remove(0);
        }
        self.samples.push(wait.as_secs());
        self.total_seen += 1;
    }

    fn predict(&self) -> Option<SimDuration> {
        let n = self.samples.len();
        if n < 4 {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("waits are finite"));
        let nf = n as f64;
        let rank = (nf * self.quantile
            + self.z * (nf * self.quantile * (1.0 - self.quantile)).sqrt())
        .ceil() as usize;
        let idx = rank.min(n).saturating_sub(1);
        Some(SimDuration::from_secs(sorted[idx]))
    }

    fn observations(&self) -> usize {
        self.total_seen
    }
}

/// Exponentially smoothed point forecast (the weak baseline).
#[derive(Clone, Debug)]
pub struct ExpSmoothing {
    alpha: f64,
    level: Option<f64>,
    total_seen: usize,
}

impl ExpSmoothing {
    /// `alpha` in (0, 1]: weight of the newest observation.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        ExpSmoothing {
            alpha,
            level: None,
            total_seen: 0,
        }
    }
}

impl WaitPredictor for ExpSmoothing {
    fn observe(&mut self, wait: SimDuration) {
        let w = wait.as_secs();
        self.level = Some(match self.level {
            None => w,
            Some(l) => self.alpha * w + (1.0 - self.alpha) * l,
        });
        self.total_seen += 1;
    }

    fn predict(&self) -> Option<SimDuration> {
        self.level.map(SimDuration::from_secs)
    }

    fn observations(&self) -> usize {
        self.total_seen
    }
}

/// Inverse standard-normal CDF for p in (0.5, 1): Acklam's rational
/// approximation (relative error < 1.15e-9 in this range).
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!((0.5..1.0).contains(&p));
    // Coefficients for the central region.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_HIGH: f64 = 0.97575;
    if p < P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail: mirror of Acklam's lower-tail branch (negated).
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn inverse_normal_known_values() {
        assert!((inverse_normal_cdf(0.95) - 1.6449).abs() < 1e-3);
        assert!((inverse_normal_cdf(0.975) - 1.9600).abs() < 1e-3);
        assert!((inverse_normal_cdf(0.99) - 2.3263).abs() < 1e-3);
        assert!((inverse_normal_cdf(0.5001) - 0.0).abs() < 1e-3);
    }

    #[test]
    fn quantile_bound_needs_history() {
        let mut p = QuantileBound::qbets_default();
        assert!(p.predict().is_none());
        for i in 0..3 {
            p.observe(d(f64::from(i)));
        }
        assert!(p.predict().is_none());
        p.observe(d(3.0));
        assert!(p.predict().is_some());
        assert_eq!(p.observations(), 4);
    }

    #[test]
    fn quantile_bound_is_conservative() {
        // With uniform waits 0..100, the 95 % bound at 95 % confidence
        // should sit near the top of the sample, above the true median.
        let mut p = QuantileBound::new(64, 0.95, 0.95);
        for i in 0..64 {
            p.observe(d(f64::from(i) * 100.0 / 63.0));
        }
        let bound = p.predict().unwrap().as_secs();
        assert!(bound > 90.0, "bound {bound}");
    }

    #[test]
    fn quantile_bound_window_slides() {
        let mut p = QuantileBound::new(8, 0.5, 0.6);
        for _ in 0..8 {
            p.observe(d(1000.0));
        }
        // New regime: much shorter waits displace the old ones.
        for _ in 0..8 {
            p.observe(d(10.0));
        }
        assert_eq!(p.predict().unwrap(), d(10.0));
        assert_eq!(p.observations(), 16);
    }

    #[test]
    fn exp_smoothing_converges() {
        let mut p = ExpSmoothing::new(0.5);
        assert!(p.predict().is_none());
        for _ in 0..20 {
            p.observe(d(100.0));
        }
        assert!((p.predict().unwrap().as_secs() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn exp_smoothing_tracks_changes_gradually() {
        let mut p = ExpSmoothing::new(0.25);
        p.observe(d(0.0));
        p.observe(d(100.0));
        let v = p.predict().unwrap().as_secs();
        assert!((v - 25.0).abs() < 1e-9, "got {v}");
    }

    proptest! {
        /// The quantile bound is always one of the observed samples and at
        /// least the plain empirical quantile.
        #[test]
        fn prop_bound_dominates_empirical_quantile(
            waits in proptest::collection::vec(0.0f64..1e5, 8..64),
        ) {
            let mut p = QuantileBound::new(64, 0.9, 0.9);
            for w in &waits {
                p.observe(d(*w));
            }
            let bound = p.predict().unwrap().as_secs();
            let mut sorted = waits.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(sorted.contains(&bound));
            let emp = sorted[((sorted.len() as f64 * 0.9) as usize).min(sorted.len() - 1)];
            prop_assert!(bound >= emp);
        }

        /// Smoothing output is always within the observed range.
        #[test]
        fn prop_smoothing_in_range(
            waits in proptest::collection::vec(0.0f64..1e5, 1..50),
            alpha in 0.05f64..1.0,
        ) {
            let mut p = ExpSmoothing::new(alpha);
            for w in &waits {
                p.observe(d(*w));
            }
            let v = p.predict().unwrap().as_secs();
            let lo = waits.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = waits.iter().cloned().fold(0.0, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}
