//! The Bundle aggregate.
//!
//! §III-B: "A resource bundle may contain an arbitrary number of resource
//! categories ... but it does not 'own' the resources. In this way, a
//! resource may be shared across multiple bundles and users can be provided
//! with a convenient handle for performing aggregated operations such as
//! querying and monitoring."

use crate::info::{InfoChannel, InfoConfig};
use crate::query::{QueryMode, ResourceQuery};
use crate::repr::ResourceRepresentation;
use aimes_cluster::Cluster;
use aimes_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One resource inside a bundle.
pub struct BundleResource {
    pub query: ResourceQuery,
    pub cluster: Cluster,
}

/// A handle over a collection of resources.
///
/// Iteration order is name-sorted (BTreeMap) so every aggregated operation
/// is deterministic regardless of insertion order.
///
/// ```
/// use aimes_bundle::{Bundle, QueryMode};
/// use aimes_cluster::{Cluster, ClusterConfig};
/// use aimes_sim::{SimDuration, SimTime};
///
/// let mut bundle = Bundle::new();
/// bundle.add(Cluster::new(ClusterConfig::test("alpha", 1024)));
/// bundle.add(Cluster::new(ClusterConfig::test("beta", 256)));
/// // Rank resources for a 512-core, 1-hour pilot: only alpha fits.
/// let ranked = bundle.rank_by_setup_time(
///     SimTime::ZERO, 512, SimDuration::from_hours(1.0), QueryMode::OnDemand);
/// assert_eq!(ranked.len(), 1);
/// assert_eq!(ranked[0].0, "alpha");
/// ```
pub struct Bundle {
    resources: BTreeMap<String, BundleResource>,
    /// The bundle-wide information plane: one hot pool, one staleness
    /// ladder, one set of counters, shared by every resource's query
    /// interface. See [`crate::info`].
    info: Rc<RefCell<InfoChannel>>,
}

impl Default for Bundle {
    fn default() -> Self {
        Bundle::new()
    }
}

impl Bundle {
    /// An empty bundle with the default (oracle-equivalent) information
    /// plane.
    pub fn new() -> Self {
        Bundle::with_info_config(InfoConfig::default())
    }

    /// An empty bundle with an explicit information-plane configuration.
    /// The config is taken as-is; callers accepting configs from outside
    /// should run [`InfoConfig::validate`] first.
    pub fn with_info_config(config: InfoConfig) -> Self {
        Bundle {
            resources: BTreeMap::new(),
            info: Rc::new(RefCell::new(InfoChannel::new(config))),
        }
    }

    /// The shared information channel: the middleware uses this handle to
    /// install degradation hooks, attach metrics, and read the fallback
    /// counters after a run.
    pub fn info_handle(&self) -> Rc<RefCell<InfoChannel>> {
        Rc::clone(&self.info)
    }

    /// Add a resource (a cheap handle; the bundle never owns the cluster).
    pub fn add(&mut self, cluster: Cluster) {
        let name = cluster.name();
        self.resources.insert(
            name,
            BundleResource {
                query: ResourceQuery::with_info(cluster.clone(), Rc::clone(&self.info)),
                cluster,
            },
        );
    }

    /// Names, sorted.
    pub fn resource_names(&self) -> Vec<String> {
        self.resources.keys().cloned().collect()
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// True if the bundle is empty.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Access one resource's query interface.
    pub fn resource_mut(&mut self, name: &str) -> Option<&mut BundleResource> {
        self.resources.get_mut(name)
    }

    /// Access one resource's cluster handle.
    pub fn cluster(&self, name: &str) -> Option<Cluster> {
        self.resources.get(name).map(|r| r.cluster.clone())
    }

    /// Aggregate query: all representations at `now`.
    pub fn representations(&self, now: SimTime) -> Vec<ResourceRepresentation> {
        self.resources
            .values()
            .map(|r| ResourceRepresentation::from_cluster(&r.cluster, now))
            .collect()
    }

    /// Aggregate query: estimated setup time per resource for a pilot of
    /// `cores`×`walltime`. Resources that cannot fit the pilot (or, in
    /// predictive mode, have no history) are omitted.
    pub fn setup_times(
        &mut self,
        now: SimTime,
        cores: u32,
        walltime: SimDuration,
        mode: QueryMode,
    ) -> Vec<(String, SimDuration)> {
        self.resources
            .iter_mut()
            .filter_map(|(name, r)| {
                r.query
                    .setup_time(now, cores, walltime, mode)
                    .map(|w| (name.clone(), w))
            })
            .collect()
    }

    /// Rank resources by estimated setup time, shortest first. Ties break
    /// by name (deterministic).
    pub fn rank_by_setup_time(
        &mut self,
        now: SimTime,
        cores: u32,
        walltime: SimDuration,
        mode: QueryMode,
    ) -> Vec<(String, SimDuration)> {
        let mut est = self.setup_times(now, cores, walltime, mode);
        est.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        est
    }

    /// Discovery interface: names of the resources satisfying a
    /// requirement at `now`.
    pub fn discover(
        &self,
        now: SimTime,
        requirement: &crate::discovery::Requirement,
    ) -> Vec<String> {
        let clusters: Vec<Cluster> = self.resources.values().map(|r| r.cluster.clone()).collect();
        crate::discovery::discover(&clusters, now, requirement)
    }

    /// Discovery interface: a tailored bundle of the matching resources
    /// (handles are shared; see the type docs).
    pub fn tailor(&self, now: SimTime, requirement: &crate::discovery::Requirement) -> Bundle {
        // The tailored bundle shares the parent's information channel,
        // consistent with sharing the cluster handles: the hot pool and
        // counters describe the resources, not the grouping.
        let mut out = Bundle {
            resources: BTreeMap::new(),
            info: Rc::clone(&self.info),
        };
        for name in self.discover(now, requirement) {
            out.add(self.resources[&name].cluster.clone());
        }
        out
    }

    /// Total cores across the bundle.
    pub fn total_cores(&self) -> u64 {
        self.resources
            .values()
            .map(|r| u64::from(r.cluster.config().total_cores))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_cluster::{ClusterConfig, JobRequest};
    use aimes_sim::Simulation;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn bundle_of(sizes: &[(&str, u32)]) -> Bundle {
        let mut b = Bundle::new();
        for (name, cores) in sizes {
            b.add(Cluster::new(ClusterConfig::test(name, *cores)));
        }
        b
    }

    #[test]
    fn names_sorted_and_counts() {
        let b = bundle_of(&[("zeta", 4), ("alpha", 8), ("mid", 16)]);
        assert_eq!(b.resource_names(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.total_cores(), 28);
    }

    #[test]
    fn shared_not_owned() {
        // The same cluster can appear in two bundles; both see its state.
        let mut sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("shared", 8));
        let mut b1 = Bundle::new();
        let mut b2 = Bundle::new();
        b1.add(c.clone());
        b2.add(c.clone());
        c.submit(&mut sim, JobRequest::background(8, d(100.0), d(100.0)));
        sim.run_until(sim.now());
        let r1 = &b1.representations(sim.now())[0];
        let r2 = &b2.representations(sim.now())[0];
        assert_eq!(r1.compute.free_cores, 0);
        assert_eq!(r2.compute.free_cores, 0);
    }

    #[test]
    fn ranking_prefers_idle_resources() {
        let mut sim = Simulation::new(1);
        let b = &mut bundle_of(&[("busy", 8), ("idle", 8)]);
        let busy = b.cluster("busy").unwrap();
        busy.submit(&mut sim, JobRequest::background(8, d(500.0), d(500.0)));
        sim.run_until(sim.now());
        let ranked = b.rank_by_setup_time(sim.now(), 8, d(60.0), QueryMode::OnDemand);
        assert_eq!(ranked[0].0, "idle");
        assert_eq!(ranked[0].1, SimDuration::ZERO);
        assert_eq!(ranked[1].0, "busy");
        assert_eq!(ranked[1].1, d(500.0));
    }

    #[test]
    fn oversized_requests_omitted() {
        let mut b = bundle_of(&[("small", 4), ("large", 64)]);
        let sim = Simulation::new(1);
        let est = b.setup_times(sim.now(), 32, d(60.0), QueryMode::OnDemand);
        assert_eq!(est.len(), 1);
        assert_eq!(est[0].0, "large");
    }

    #[test]
    fn ranking_ties_break_by_name() {
        let mut b = bundle_of(&[("bbb", 8), ("aaa", 8)]);
        let sim = Simulation::new(1);
        let ranked = b.rank_by_setup_time(sim.now(), 4, d(60.0), QueryMode::OnDemand);
        assert_eq!(ranked[0].0, "aaa");
        assert_eq!(ranked[1].0, "bbb");
    }

    #[test]
    fn tailor_builds_shared_subset_bundle() {
        use crate::discovery::Requirement;
        let b = bundle_of(&[("big", 64), ("small", 8)]);
        let req = Requirement::parse("total_cores >= 32").unwrap();
        let now = SimTime::ZERO;
        assert_eq!(b.discover(now, &req), vec!["big"]);
        let tailored = b.tailor(now, &req);
        assert_eq!(tailored.resource_names(), vec!["big"]);
        assert_eq!(tailored.total_cores(), 64);
    }

    #[test]
    fn predictive_mode_needs_history() {
        let mut b = bundle_of(&[("fresh", 8)]);
        let sim = Simulation::new(1);
        assert!(b
            .setup_times(sim.now(), 4, d(60.0), QueryMode::Predictive)
            .is_empty());
    }
}
