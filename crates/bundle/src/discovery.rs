//! The discovery interface.
//!
//! §III-B: "The discovery interface, which is future work, will let the
//! user request resources based on abstract requirements so that a
//! tailored bundle can be created. A language for specifying resource
//! requirements is being developed" (citing the Tiera compact notation).
//!
//! This module implements that language: a conjunction of attribute
//! comparisons such as
//!
//! ```text
//! total_cores >= 2048 && policy == easy_backfill && utilization < 0.95
//! ```
//!
//! parsed into a [`Requirement`] and evaluated against live resource
//! representations to produce a tailored bundle.

use crate::repr::ResourceRepresentation;
use aimes_cluster::{Cluster, SchedulingPolicy};
use aimes_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Attributes the language can constrain.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Attribute {
    TotalCores,
    FreeCores,
    CoresPerNode,
    QueuedJobs,
    RunningJobs,
    Utilization,
    QueuePressure,
    IngressMbps,
    /// Scheduling policy, compared as `fcfs` / `easy_backfill`.
    Policy,
}

impl Attribute {
    fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "total_cores" => Attribute::TotalCores,
            "free_cores" => Attribute::FreeCores,
            "cores_per_node" => Attribute::CoresPerNode,
            "queued_jobs" => Attribute::QueuedJobs,
            "running_jobs" => Attribute::RunningJobs,
            "utilization" => Attribute::Utilization,
            "queue_pressure" => Attribute::QueuePressure,
            "ingress_mbps" => Attribute::IngressMbps,
            "policy" => Attribute::Policy,
            other => return Err(format!("unknown attribute `{other}`")),
        })
    }
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Op {
    Ge,
    Le,
    Gt,
    Lt,
    Eq,
    Ne,
}

impl Op {
    fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            ">=" => Op::Ge,
            "<=" => Op::Le,
            ">" => Op::Gt,
            "<" => Op::Lt,
            "==" => Op::Eq,
            "!=" => Op::Ne,
            other => return Err(format!("unknown operator `{other}`")),
        })
    }

    fn eval_f64(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Op::Ge => lhs >= rhs,
            Op::Le => lhs <= rhs,
            Op::Gt => lhs > rhs,
            Op::Lt => lhs < rhs,
            Op::Eq => lhs == rhs,
            Op::Ne => lhs != rhs,
        }
    }
}

/// The right-hand side of a comparison.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Value {
    Number(f64),
    Symbol(String),
}

/// One `attribute op value` clause.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Constraint {
    pub attribute: Attribute,
    pub op: Op,
    pub value: Value,
}

/// A conjunction of constraints.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Requirement {
    pub constraints: Vec<Constraint>,
}

impl Requirement {
    /// Parse the compact notation: clauses joined by `&&`.
    pub fn parse(input: &str) -> Result<Requirement, String> {
        let input = input.trim();
        if input.is_empty() {
            return Ok(Requirement::default());
        }
        let mut constraints = Vec::new();
        for clause in input.split("&&") {
            let tokens: Vec<&str> = clause.split_whitespace().collect();
            if tokens.len() != 3 {
                return Err(format!(
                    "clause `{}` must be `attribute op value`",
                    clause.trim()
                ));
            }
            let attribute = Attribute::parse(tokens[0])?;
            let op = Op::parse(tokens[1])?;
            let value = match tokens[2].parse::<f64>() {
                Ok(n) => Value::Number(n),
                Err(_) => Value::Symbol(tokens[2].to_string()),
            };
            // Type check: policy compares symbols with ==/!=; numeric
            // attributes need numbers.
            match (attribute, &value, op) {
                (Attribute::Policy, Value::Symbol(_), Op::Eq | Op::Ne) => {}
                (Attribute::Policy, _, _) => {
                    return Err("policy supports only `== symbol` / `!= symbol`".into());
                }
                (_, Value::Symbol(s), _) => {
                    return Err(format!("attribute needs a numeric value, got `{s}`"));
                }
                _ => {}
            }
            constraints.push(Constraint {
                attribute,
                op,
                value,
            });
        }
        Ok(Requirement { constraints })
    }

    /// Does a resource satisfy every constraint?
    pub fn matches(&self, repr: &ResourceRepresentation, policy: SchedulingPolicy) -> bool {
        self.constraints
            .iter()
            .all(|c| match (c.attribute, &c.value) {
                (Attribute::Policy, Value::Symbol(sym)) => {
                    let actual = match policy {
                        SchedulingPolicy::Fcfs => "fcfs",
                        SchedulingPolicy::EasyBackfill => "easy_backfill",
                    };
                    match c.op {
                        Op::Eq => actual == sym,
                        Op::Ne => actual != sym,
                        _ => false,
                    }
                }
                (attr, Value::Number(n)) => {
                    let lhs = match attr {
                        Attribute::TotalCores => f64::from(repr.compute.total_cores),
                        Attribute::FreeCores => f64::from(repr.compute.free_cores),
                        Attribute::CoresPerNode => f64::from(repr.compute.cores_per_node),
                        Attribute::QueuedJobs => repr.compute.queued_jobs as f64,
                        Attribute::RunningJobs => repr.compute.running_jobs as f64,
                        Attribute::Utilization => repr.compute.utilization,
                        Attribute::QueuePressure => repr.queue_pressure(),
                        Attribute::IngressMbps => repr.network.ingress_mbps,
                        Attribute::Policy => return false,
                    };
                    c.op.eval_f64(lhs, *n)
                }
                _ => false,
            })
    }
}

/// Evaluate a requirement against a set of resources at `now`; returns the
/// names that qualify (sorted — deterministic).
///
/// Determinism audit: this path never touches a `HashMap` — matching
/// iterates the caller's slice and the result is name-sorted, so the
/// output is independent of both the pool ordering and the per-process
/// hash seed (the bug class fixed in PR 3 elsewhere).
pub fn discover(clusters: &[Cluster], now: SimTime, requirement: &Requirement) -> Vec<String> {
    let mut names: Vec<String> = clusters
        .iter()
        .filter(|c| {
            let repr = ResourceRepresentation::from_cluster(c, now);
            requirement.matches(&repr, c.config().policy)
        })
        .map(|c| c.name())
        .collect();
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_cluster::{ClusterConfig, JobRequest};
    use aimes_sim::{SimDuration, Simulation};

    fn cluster(name: &str, cores: u32, policy: SchedulingPolicy) -> Cluster {
        let mut cfg = ClusterConfig::test(name, cores);
        cfg.policy = policy;
        Cluster::new(cfg)
    }

    #[test]
    fn parse_single_clause() {
        let r = Requirement::parse("total_cores >= 2048").unwrap();
        assert_eq!(r.constraints.len(), 1);
        assert_eq!(r.constraints[0].attribute, Attribute::TotalCores);
        assert_eq!(r.constraints[0].op, Op::Ge);
        assert_eq!(r.constraints[0].value, Value::Number(2048.0));
    }

    #[test]
    fn parse_conjunction() {
        let r = Requirement::parse(
            "total_cores >= 1024 && policy == easy_backfill && utilization < 0.9",
        )
        .unwrap();
        assert_eq!(r.constraints.len(), 3);
    }

    #[test]
    fn parse_empty_matches_everything() {
        let r = Requirement::parse("   ").unwrap();
        let c = cluster("x", 8, SchedulingPolicy::Fcfs);
        let repr = ResourceRepresentation::from_cluster(&c, SimTime::ZERO);
        assert!(r.matches(&repr, SchedulingPolicy::Fcfs));
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(Requirement::parse("nonsense")
            .unwrap_err()
            .contains("attribute op value"));
        assert!(Requirement::parse("bogus_attr > 1")
            .unwrap_err()
            .contains("unknown attribute"));
        assert!(Requirement::parse("total_cores >> 1")
            .unwrap_err()
            .contains("unknown operator"));
        assert!(Requirement::parse("total_cores >= many")
            .unwrap_err()
            .contains("numeric"));
        assert!(Requirement::parse("policy >= fcfs")
            .unwrap_err()
            .contains("policy supports"));
    }

    #[test]
    fn discover_filters_by_size_and_policy() {
        let clusters = vec![
            cluster("big-bf", 8192, SchedulingPolicy::EasyBackfill),
            cluster("big-fcfs", 8192, SchedulingPolicy::Fcfs),
            cluster("small-bf", 512, SchedulingPolicy::EasyBackfill),
        ];
        let r = Requirement::parse("total_cores >= 1024 && policy == easy_backfill").unwrap();
        assert_eq!(discover(&clusters, SimTime::ZERO, &r), vec!["big-bf"]);
        let r2 = Requirement::parse("policy != easy_backfill").unwrap();
        assert_eq!(discover(&clusters, SimTime::ZERO, &r2), vec!["big-fcfs"]);
    }

    #[test]
    fn discover_sees_live_state() {
        let mut sim = Simulation::new(1);
        let busy = cluster("busy", 64, SchedulingPolicy::EasyBackfill);
        let idle = cluster("idle", 64, SchedulingPolicy::EasyBackfill);
        let d = SimDuration::from_secs(1000.0);
        busy.submit(&mut sim, JobRequest::background(64, d, d));
        sim.run_until(sim.now());
        let clusters = vec![busy, idle];
        let r = Requirement::parse("free_cores >= 32").unwrap();
        assert_eq!(discover(&clusters, sim.now(), &r), vec!["idle"]);
        let r2 = Requirement::parse("queued_jobs == 0 && free_cores < 32").unwrap();
        assert_eq!(discover(&clusters, sim.now(), &r2), vec!["busy"]);
    }

    #[test]
    fn discover_is_insertion_order_independent() {
        let mk = || {
            vec![
                cluster("zeta", 2048, SchedulingPolicy::EasyBackfill),
                cluster("alpha", 2048, SchedulingPolicy::EasyBackfill),
                cluster("mid", 2048, SchedulingPolicy::Fcfs),
            ]
        };
        let mut reversed = mk();
        reversed.reverse();
        let r = Requirement::parse("total_cores >= 1024").unwrap();
        let a = discover(&mk(), SimTime::ZERO, &r);
        let b = discover(&reversed, SimTime::ZERO, &r);
        assert_eq!(a, b, "discovery must not depend on pool ordering");
        assert_eq!(a, vec!["alpha", "mid", "zeta"], "output is name-sorted");
    }

    #[test]
    fn requirement_serde_roundtrip() {
        let r = Requirement::parse("utilization <= 0.85 && ingress_mbps > 50").unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: Requirement = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn testbed_discovery_end_to_end() {
        // Tailor a bundle from the paper testbed: backfill machines big
        // enough for a 2048-core pilot.
        let clusters: Vec<Cluster> = aimes_cluster::paper_testbed()
            .into_iter()
            .map(|s| {
                let mut cfg = s.config;
                cfg.workload = None;
                Cluster::new(cfg)
            })
            .collect();
        let r = Requirement::parse("total_cores >= 4096 && policy == easy_backfill").unwrap();
        let names = discover(&clusters, SimTime::ZERO, &r);
        assert_eq!(names, vec!["gordon", "hopper", "stampede", "trestles"]);
    }
}
