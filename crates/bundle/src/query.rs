//! The bundle query interface.
//!
//! §III-B: "The resource interface exposes information about resources
//! availability and capabilities via an API. Two query modes are supported:
//! on-demand and predictive." The query interface also answers end-to-end
//! questions such as "how long would it take to transfer a file from one
//! location to a resource" — estimates "within an order of magnitude" are
//! still useful (refs \[37\], \[38\]).

use crate::info::{FallbackRung, InfoAnswer, InfoChannel, InfoClass, InfoConfig};
use crate::predictor::{QuantileBound, WaitPredictor};
use crate::repr::ResourceRepresentation;
use aimes_cluster::Cluster;
use aimes_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// Which information source a query uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum QueryMode {
    /// Real-time measurement of the resource's current state.
    OnDemand,
    /// Forecast from historical measurements.
    Predictive,
}

/// Query facade over one resource.
pub struct ResourceQuery {
    cluster: Cluster,
    predictor: QuantileBound,
    /// The shared information plane (hot pool, staleness ladder). Every
    /// on-demand answer flows through it; see [`crate::info`].
    info: Rc<RefCell<InfoChannel>>,
}

impl ResourceQuery {
    /// Wrap a resource with a private, healthy, oracle-equivalent
    /// information channel. The predictive mode learns from the
    /// resource's start history as queries are made.
    pub fn new(cluster: Cluster) -> Self {
        Self::with_info(
            cluster,
            Rc::new(RefCell::new(InfoChannel::new(InfoConfig::default()))),
        )
    }

    /// Wrap a resource sharing an existing information channel (the
    /// normal case inside a [`crate::Bundle`]: one hot pool and one set
    /// of counters across the whole bundle).
    pub fn with_info(cluster: Cluster, info: Rc<RefCell<InfoChannel>>) -> Self {
        ResourceQuery {
            cluster,
            predictor: QuantileBound::qbets_default(),
            info,
        }
    }

    /// The resource's name.
    pub fn name(&self) -> String {
        self.cluster.name()
    }

    /// Uniform representation at `now` (always on-demand: it is a
    /// snapshot by definition).
    pub fn representation(&self, now: SimTime) -> ResourceRepresentation {
        ResourceRepresentation::from_cluster(&self.cluster, now)
    }

    /// Estimated "setup time" (queue wait) for a pilot of `cores` cores
    /// and `walltime`, under the chosen mode.
    ///
    /// * `OnDemand` replays the current queue against the availability
    ///   profile (what the scheduler would do if nothing else arrived).
    /// * `Predictive` returns the QBETS-style quantile bound learned from
    ///   the resource's historical start records, independent of the
    ///   momentary queue state.
    ///
    /// Returns `None` when the job can never fit (oversized) or when the
    /// predictive history is still empty.
    pub fn setup_time(
        &mut self,
        now: SimTime,
        cores: u32,
        walltime: SimDuration,
        mode: QueryMode,
    ) -> Option<SimDuration> {
        self.setup_time_classified(now, cores, walltime, mode).wait
    }

    /// Like [`setup_time`](Self::setup_time), but with the answer's
    /// provenance: which [`InfoClass`] the information was and which
    /// [`FallbackRung`] of the ladder produced it.
    ///
    /// `OnDemand` routes through the shared [`InfoChannel`] — hot pool,
    /// then live measurement on a healthy channel; the staleness ladder
    /// on a degraded one — rather than calling `estimate_wait` directly,
    /// so degradation never panics and never serves garbage.
    pub fn setup_time_classified(
        &mut self,
        now: SimTime,
        cores: u32,
        walltime: SimDuration,
        mode: QueryMode,
    ) -> InfoAnswer {
        match mode {
            QueryMode::OnDemand => {
                // Keep the offline rung current: feed accumulated start
                // records before the ladder might need them.
                self.refresh_history();
                let fits = cores <= self.cluster.config().total_cores;
                let name = self.cluster.name();
                let info = Rc::clone(&self.info);
                let cluster = &self.cluster;
                let predictor = &mut self.predictor;
                let answer = info.borrow_mut().fetch(
                    &name,
                    now,
                    fits,
                    || cluster.estimate_wait(now, cores, walltime),
                    predictor,
                );
                answer
            }
            QueryMode::Predictive => {
                self.refresh_history();
                let wait = if cores > self.cluster.config().total_cores {
                    None
                } else {
                    self.predictor.predict()
                };
                InfoAnswer {
                    wait,
                    class: InfoClass::Fresh,
                    rung: FallbackRung::Predictor,
                }
            }
        }
    }

    /// Feed all start records the cluster has accumulated into the
    /// predictor (idempotent per record because the history is a sliding
    /// window over a monotone log; we track how many we have consumed).
    fn refresh_history(&mut self) {
        let history = self.cluster.wait_history();
        let consumed = self.predictor.observations();
        for rec in history.iter().skip(consumed.min(history.len())) {
            self.predictor.observe(rec.wait);
        }
    }

    /// End-to-end transfer estimate for `megabytes` into (`true`) or out
    /// of the resource.
    pub fn transfer_time(&self, megabytes: f64, ingress: bool) -> SimDuration {
        self.cluster.transfer_time(megabytes, ingress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_cluster::{ClusterConfig, JobRequest};
    use aimes_sim::Simulation;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn on_demand_setup_time_replays_queue() {
        let mut sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("r", 16));
        c.submit(&mut sim, JobRequest::background(16, d(500.0), d(500.0)));
        sim.run_until(sim.now());
        let mut q = ResourceQuery::new(c);
        let w = q
            .setup_time(sim.now(), 16, d(100.0), QueryMode::OnDemand)
            .unwrap();
        assert_eq!(w, d(500.0));
        // An idle-machine-sized request that can never fit:
        assert!(q
            .setup_time(sim.now(), 32, d(100.0), QueryMode::OnDemand)
            .is_none());
    }

    #[test]
    fn predictive_needs_history_then_learns() {
        let mut sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("r", 4));
        let mut q = ResourceQuery::new(c.clone());
        assert!(q
            .setup_time(sim.now(), 2, d(10.0), QueryMode::Predictive)
            .is_none());
        // Generate some waits: serial 4-core jobs.
        for _ in 0..8 {
            c.submit(&mut sim, JobRequest::background(4, d(100.0), d(100.0)));
        }
        sim.run_to_completion();
        let w = q
            .setup_time(sim.now(), 2, d(10.0), QueryMode::Predictive)
            .unwrap();
        // Waits were 0, 100, ..., 700; the 95 % bound is near the top.
        assert!(w >= d(600.0), "bound {w:?}");
        // Oversized requests are still rejected.
        assert!(q
            .setup_time(sim.now(), 8, d(10.0), QueryMode::Predictive)
            .is_none());
    }

    #[test]
    fn transfer_time_passthrough() {
        let c = Cluster::new(ClusterConfig::test("r", 4));
        let q = ResourceQuery::new(c);
        // 100 MB / 100 MBps + 1 s latency.
        assert_eq!(q.transfer_time(100.0, true), d(2.0));
        assert_eq!(q.name(), "r");
    }

    #[test]
    fn representation_snapshot() {
        let sim = Simulation::new(1);
        let c = Cluster::new(ClusterConfig::test("r", 4));
        let q = ResourceQuery::new(c);
        let r = q.representation(sim.now());
        assert_eq!(r.compute.total_cores, 4);
    }
}
