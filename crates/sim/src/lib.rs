//! # aimes-sim — deterministic discrete-event simulation engine
//!
//! The AIMES paper ran its experiments for a year against production XSEDE
//! and NERSC batch systems. This crate provides the substrate that replaces
//! those systems for the reproduction: a deterministic, seedable
//! discrete-event simulation (DES) kernel on top of which the cluster,
//! pilot, and middleware layers are built.
//!
//! Design goals:
//!
//! * **Determinism.** Two runs with the same seed produce bit-identical
//!   event orderings and traces. Ties in event time are broken by a
//!   monotonically increasing sequence number, never by allocation order.
//! * **Virtual time.** All durations are virtual seconds ([`SimTime`],
//!   [`SimDuration`]); a year of simulated queue waits costs milliseconds
//!   of host time, which is what makes many-repetition experiments cheap.
//! * **Introspection.** Every component can emit structured
//!   [`trace::TraceEvent`]s; the paper stresses that AIMES is "instrumented
//!   to produce complete traces of an application execution" and the TTC
//!   decomposition in the evaluation depends on it.
//!
//! The engine is intentionally single-threaded: determinism and
//! reproducibility trump parallel speedup *inside* one simulation.
//! Parallelism is applied across independent experiment repetitions at the
//! harness level (see the `aimes` crate), which is both simpler and faster.

pub mod engine;
pub mod event;
pub mod profile;
pub mod rng;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use engine::{EventContext, Simulation};
pub use event::{EventId, EventQueue, ScheduledEvent};
pub use profile::{EngineStats, LabelProfile, ProfileGuard, ProfileLabel, ProfileReport, Profiler};
pub use rng::{SimRng, StreamId};
pub use telemetry::{MetricsRegistry, MetricsSummary, Span, Telemetry};
pub use time::{SimDuration, SimTime};
pub use trace::{
    ComponentId, DetectorPhase, JobPhase, ManagerPhase, PilotPhase, ResourcePhase, SagaPhase,
    TraceEvent, TraceKind, TraceRecord, TraceSink, Tracer, UnitPhase,
};
