//! The simulation engine: virtual clock + event loop.
//!
//! Components register callbacks; the engine pops the earliest event,
//! advances the clock to its time, and invokes the callback with mutable
//! access to the engine (so it can schedule follow-up events, fork RNG
//! streams, and record trace events). Components themselves live in
//! `Rc<RefCell<_>>` cells captured by the callbacks — the engine is
//! strictly single-threaded by design (see crate docs).

use crate::event::{EventId, EventQueue, ScheduledEvent};
use crate::profile::{EngineStats, ProfileLabel, Profiler};
use crate::rng::SimRng;
use crate::telemetry::MetricsRegistry;
use crate::time::{SimDuration, SimTime};
use crate::trace::Tracer;

/// Callback invoked when an event fires.
pub type Callback = Box<dyn FnOnce(&mut Simulation)>;

/// Alias kept for API clarity: callbacks receive the engine itself.
pub type EventContext = Simulation;

/// Outcome of running the event loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The horizon passed with events still pending beyond it.
    HorizonReached,
    /// The safety event budget was exhausted (likely a scheduling loop).
    BudgetExhausted,
}

/// Deterministic discrete-event simulation.
///
/// ```
/// use aimes_sim::{SimDuration, Simulation};
/// use std::{cell::RefCell, rc::Rc};
///
/// let mut sim = Simulation::new(42);
/// let fired = Rc::new(RefCell::new(Vec::new()));
/// for delay in [30.0, 10.0, 20.0] {
///     let fired = fired.clone();
///     sim.schedule_in(SimDuration::from_secs(delay), move |sim| {
///         fired.borrow_mut().push(sim.now().as_secs());
///     });
/// }
/// sim.run_to_completion();
/// assert_eq!(*fired.borrow(), vec![10.0, 20.0, 30.0]);
/// ```
pub struct Simulation {
    now: SimTime,
    queue: EventQueue<Callback>,
    rng: SimRng,
    tracer: Tracer,
    metrics: MetricsRegistry,
    profiler: Profiler,
    /// Cached `profiler.is_enabled()`: the run loops branch on this once
    /// per run and the single-step path once per event.
    profiled: bool,
    /// Pre-interned dispatch label so the hot loop skips the name lookup.
    dispatch_label: ProfileLabel,
    events_processed: u64,
    /// Safety valve against accidental infinite scheduling loops.
    event_budget: u64,
}

impl Simulation {
    /// Create a simulation with the given experiment seed and a recording
    /// tracer.
    pub fn new(seed: u64) -> Self {
        Self::with_tracer(seed, Tracer::new())
    }

    /// Create a simulation with an explicit tracer (e.g. a disabled one for
    /// benchmarks).
    pub fn with_tracer(seed: u64, tracer: Tracer) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: SimRng::new(seed),
            tracer,
            metrics: MetricsRegistry::disabled(),
            profiler: Profiler::disabled(),
            profiled: false,
            dispatch_label: ProfileLabel::default(),
            events_processed: 0,
            event_budget: u64::MAX,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared tracer handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Shared metrics registry (disabled unless [`Simulation::attach_metrics`]
    /// installed a recording one).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Install a recording metrics registry. Metrics collection is passive
    /// — it schedules no events and draws no randomness — so attaching one
    /// never perturbs the simulated execution.
    pub fn attach_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Shared self-profiler handle (disabled unless
    /// [`Simulation::attach_profiler`] installed a recording one).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Install a self-profiler. Like metrics, profiling is strictly
    /// passive: it schedules no events and draws no randomness, so a
    /// profiled run is bit-identical to an unprofiled one. The per-event
    /// dispatch label is interned here, once, so the hot loop never
    /// hashes a name.
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        self.dispatch_label = profiler.label("engine.dispatch");
        self.profiled = profiler.is_enabled();
        self.profiler = profiler;
    }

    /// Deterministic engine health counters: dispatch/schedule/cancel
    /// totals, the pending-event high-water mark, and compaction count.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            events_processed: self.events_processed,
            events_scheduled: self.queue.scheduled_total(),
            events_cancelled: self.queue.cancelled_total(),
            pending_events_hwm: self.queue.high_water_mark() as u64,
            compactions: self.queue.compactions(),
        }
    }

    /// Publish the engine health counters to the attached metrics registry
    /// (as `sim.engine.*` counters plus a `pending_events_hwm` gauge, so
    /// Perfetto traces show queue pressure) and to the attached profiler.
    /// Call once at end of run; both sinks are passive.
    pub fn publish_engine_stats(&self) {
        let stats = self.engine_stats();
        let now = self.now;
        self.metrics
            .gauge(now, stats.pending_events_hwm as f64, || {
                "sim.engine.pending_events_hwm".into()
            });
        self.metrics
            .inc_by(stats.compactions, || "sim.engine.compactions".into());
        self.metrics.inc_by(stats.events_scheduled, || {
            "sim.engine.events_scheduled".into()
        });
        self.metrics.inc_by(stats.events_cancelled, || {
            "sim.engine.events_cancelled".into()
        });
        self.metrics.inc_by(stats.events_processed, || {
            "sim.engine.events_processed".into()
        });
        self.profiler.record_engine(stats);
    }

    /// Fork a named RNG stream from the experiment seed (stable; see
    /// [`SimRng::fork`]).
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.rng.fork(label)
    }

    /// Fork an indexed RNG stream (per entity).
    pub fn fork_rng_indexed(&self, label: &str, index: u64) -> SimRng {
        self.rng.fork_indexed(label, index)
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Limit the total number of events this simulation may process
    /// (safety valve for tests).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Number of live pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `callback` to fire at absolute time `at`. Panics if `at` is
    /// in the past — time travel would silently corrupt causality.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        callback: impl FnOnce(&mut Simulation) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: now={:?}, at={:?}",
            self.now,
            at
        );
        self.queue.schedule(at, Box::new(callback))
    }

    /// Schedule `callback` to fire `delay` from now.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        callback: impl FnOnce(&mut Simulation) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, callback)
    }

    /// Schedule `callback` to fire immediately after currently queued
    /// same-time events.
    pub fn schedule_now(&mut self, callback: impl FnOnce(&mut Simulation) + 'static) -> EventId {
        self.schedule_at(self.now, callback)
    }

    /// Cancel a pending event. Returns true if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Process a single event, if any. Returns false when the queue is
    /// drained.
    ///
    /// External single-step drivers (the middleware's interruptible run
    /// loop) pay one instrumentation branch per event here; the batch run
    /// loops below hoist that branch out via monomorphization.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                if self.profiled {
                    self.dispatch::<true>(ev);
                } else {
                    self.dispatch::<false>(ev);
                }
                true
            }
            None => false,
        }
    }

    /// How many dispatched events share one clock read in the profiled
    /// batch loops. Reading the TSC costs ~20 ns under some hypervisors;
    /// striding keeps profiled dispatch within the 10% overhead gate on
    /// sub-µs event workloads while leaving per-label totals exact (the
    /// stride lands in the histogram as STRIDE observations at their
    /// average — see [`crate::profile`]).
    const PROFILE_STRIDE: u64 = 8;

    #[inline(always)]
    fn dispatch<const PROFILED: bool>(&mut self, ev: ScheduledEvent<Callback>) {
        debug_assert!(ev.time >= self.now, "event queue yielded past event");
        self.now = ev.time;
        self.events_processed += 1;
        if PROFILED {
            // The guard holds its own handle to the profiler state, so the
            // borrow of `self` ends before the callback takes `&mut self`.
            let _scope = self.profiler.enter(self.dispatch_label);
            (ev.payload)(self);
        } else {
            (ev.payload)(self);
        }
    }

    /// The batch-loop profiled dispatch: the dispatch frame opened once
    /// by the run loop is settled in place every `PROFILE_STRIDE` events,
    /// so the steady-state per-event cost is a counter increment plus
    /// 1/STRIDE of a clock read — a small fraction of the per-event cost
    /// of the guard-based path `step()` takes.
    #[inline(always)]
    fn dispatch_marked(&mut self, ev: ScheduledEvent<Callback>, mark: &mut u64, pending: &mut u64) {
        debug_assert!(ev.time >= self.now, "event queue yielded past event");
        self.now = ev.time;
        self.events_processed += 1;
        (ev.payload)(self);
        *pending += 1;
        if *pending == Self::PROFILE_STRIDE {
            self.profiler.finish_root_n(mark, Self::PROFILE_STRIDE);
            *pending = 0;
        }
    }

    /// Run until the queue drains or the clock would pass `horizon`.
    /// Events at exactly `horizon` are processed.
    ///
    /// The instrumentation check is resolved once per run, not once per
    /// event: the loop monomorphizes into a plain variant (no profiler
    /// code in the dispatch path at all) and an instrumented one.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        if self.profiled {
            self.run_until_impl::<true>(horizon)
        } else {
            self.run_until_impl::<false>(horizon)
        }
    }

    fn run_until_impl<const PROFILED: bool>(&mut self, horizon: SimTime) -> RunOutcome {
        let mut mark = 0;
        let mut pending = 0;
        if PROFILED {
            mark = self.profiler.mark();
            self.profiler.open_root(self.dispatch_label);
        }
        let outcome = loop {
            if self.events_processed >= self.event_budget {
                break RunOutcome::BudgetExhausted;
            }
            match self.queue.peek_time() {
                None => break RunOutcome::Drained,
                Some(t) if t > horizon => break RunOutcome::HorizonReached,
                Some(_) => {
                    let ev = self.queue.pop().expect("peeked event exists");
                    if PROFILED {
                        self.dispatch_marked(ev, &mut mark, &mut pending);
                    } else {
                        self.dispatch::<false>(ev);
                    }
                }
            }
        };
        if PROFILED {
            if pending > 0 {
                self.profiler.finish_root_n(&mut mark, pending);
            }
            self.profiler.close_root();
        }
        outcome
    }

    /// Run until the queue drains. Branches on instrumentation once per
    /// run, like [`Simulation::run_until`].
    pub fn run_to_completion(&mut self) -> RunOutcome {
        if self.profiled {
            self.run_to_completion_impl::<true>()
        } else {
            self.run_to_completion_impl::<false>()
        }
    }

    fn run_to_completion_impl<const PROFILED: bool>(&mut self) -> RunOutcome {
        let mut mark = 0;
        let mut pending = 0;
        if PROFILED {
            mark = self.profiler.mark();
            self.profiler.open_root(self.dispatch_label);
        }
        let outcome = loop {
            if self.events_processed >= self.event_budget {
                break RunOutcome::BudgetExhausted;
            }
            match self.queue.pop() {
                Some(ev) => {
                    if PROFILED {
                        self.dispatch_marked(ev, &mut mark, &mut pending);
                    } else {
                        self.dispatch::<false>(ev);
                    }
                }
                None => break RunOutcome::Drained,
            }
        };
        if PROFILED {
            if pending > 0 {
                self.profiler.finish_root_n(&mut mark, pending);
            }
            self.profiler.close_root();
        }
        outcome
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn clock_advances_to_event_times() {
        let mut sim = Simulation::new(1);
        let seen = Rc::new(RefCell::new(vec![]));
        for &at in &[5.0, 1.0, 3.0] {
            let seen = seen.clone();
            sim.schedule_at(t(at), move |s| seen.borrow_mut().push(s.now().as_secs()));
        }
        assert_eq!(sim.run_to_completion(), RunOutcome::Drained);
        assert_eq!(*seen.borrow(), vec![1.0, 3.0, 5.0]);
        assert_eq!(sim.now(), t(5.0));
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn events_can_schedule_followups() {
        let mut sim = Simulation::new(1);
        let hits = Rc::new(RefCell::new(0u32));
        let hits2 = hits.clone();
        sim.schedule_in(d(1.0), move |s| {
            *hits2.borrow_mut() += 1;
            let hits3 = hits2.clone();
            s.schedule_in(d(2.0), move |_| {
                *hits3.borrow_mut() += 1;
            });
        });
        sim.run_to_completion();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.now(), t(3.0));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new(1);
        let hits = Rc::new(RefCell::new(0u32));
        for at in [1.0, 2.0, 3.0, 10.0] {
            let hits = hits.clone();
            sim.schedule_at(t(at), move |_| *hits.borrow_mut() += 1);
        }
        assert_eq!(sim.run_until(t(3.0)), RunOutcome::HorizonReached);
        assert_eq!(*hits.borrow(), 3);
        // Clock does not advance past the last processed event.
        assert_eq!(sim.now(), t(3.0));
        assert_eq!(sim.pending_events(), 1);
        assert_eq!(sim.run_until(t(100.0)), RunOutcome::Drained);
        assert_eq!(*hits.borrow(), 4);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new(1);
        sim.schedule_at(t(5.0), |s| {
            s.schedule_at(t(1.0), |_| {});
        });
        sim.run_to_completion();
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut sim = Simulation::new(1);
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        let id = sim.schedule_at(t(1.0), move |_| *h.borrow_mut() += 1);
        assert!(sim.cancel(id));
        sim.run_to_completion();
        assert_eq!(*hits.borrow(), 0);
    }

    #[test]
    fn event_budget_stops_loops() {
        let mut sim = Simulation::new(1);
        fn reschedule(s: &mut Simulation) {
            s.schedule_in(SimDuration::from_secs(1.0), reschedule);
        }
        sim.schedule_now(reschedule);
        sim.set_event_budget(100);
        assert_eq!(sim.run_to_completion(), RunOutcome::BudgetExhausted);
        assert_eq!(sim.events_processed(), 100);
    }

    #[test]
    fn same_time_events_fire_in_schedule_order() {
        let mut sim = Simulation::new(1);
        let order = Rc::new(RefCell::new(vec![]));
        for i in 0..10 {
            let order = order.clone();
            sim.schedule_at(t(1.0), move |_| order.borrow_mut().push(i));
        }
        sim.run_to_completion();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rng_forks_are_deterministic_across_runs() {
        let run = |seed| {
            let sim = Simulation::new(seed);
            let mut r = sim.fork_rng("component");
            (0..10).map(|_| r.uniform01()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn profiler_counts_every_dispatch() {
        let mut sim = Simulation::new(1);
        sim.attach_profiler(Profiler::new());
        for at in [1.0, 2.0, 3.0] {
            sim.schedule_at(t(at), |_| {});
        }
        // Mix batch and single-step drivers: both must attribute dispatches.
        sim.run_until(t(2.0));
        while sim.step() {}
        sim.publish_engine_stats();
        let report = sim.profiler().report();
        let dispatch = report
            .labels
            .iter()
            .find(|l| l.label == "engine.dispatch")
            .expect("dispatch label present");
        assert_eq!(dispatch.count, 3);
        assert_eq!(report.engine.events_processed, 3);
        assert_eq!(report.engine.events_scheduled, 3);
    }

    #[test]
    fn engine_stats_track_queue_health() {
        let mut sim = Simulation::new(1);
        let ids: Vec<_> = (0..6)
            .map(|i| sim.schedule_at(t(i as f64), |_| {}))
            .collect();
        for id in &ids[..4] {
            sim.cancel(*id);
        }
        sim.run_to_completion();
        let stats = sim.engine_stats();
        assert_eq!(stats.events_scheduled, 6);
        assert_eq!(stats.events_cancelled, 4);
        assert_eq!(stats.events_processed, 2);
        assert_eq!(stats.pending_events_hwm, 6);
        assert!(stats.compactions >= 1);
    }

    #[test]
    fn engine_stats_publish_to_metrics() {
        let mut sim = Simulation::new(1);
        sim.attach_metrics(MetricsRegistry::new());
        sim.schedule_at(t(1.0), |_| {});
        sim.run_to_completion();
        sim.publish_engine_stats();
        let summary = sim.metrics().summary();
        assert_eq!(
            summary.counters.get("sim.engine.events_processed"),
            Some(&1)
        );
        assert_eq!(
            summary.counters.get("sim.engine.events_scheduled"),
            Some(&1)
        );
        assert!(summary.gauges.contains_key("sim.engine.pending_events_hwm"));
    }

    #[test]
    fn tracer_reachable_from_callbacks() {
        let mut sim = Simulation::new(1);
        sim.schedule_in(d(2.0), |s| {
            let now = s.now();
            s.tracer().record(now, "c", "fired", "");
        });
        sim.run_to_completion();
        assert_eq!(sim.tracer().len(), 1);
        assert_eq!(sim.tracer().snapshot()[0].time, t(2.0));
    }
}
