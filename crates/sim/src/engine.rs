//! The simulation engine: virtual clock + event loop.
//!
//! Components register callbacks; the engine pops the earliest event,
//! advances the clock to its time, and invokes the callback with mutable
//! access to the engine (so it can schedule follow-up events, fork RNG
//! streams, and record trace events). Components themselves live in
//! `Rc<RefCell<_>>` cells captured by the callbacks — the engine is
//! strictly single-threaded by design (see crate docs).

use crate::event::{EventId, EventQueue};
use crate::rng::SimRng;
use crate::telemetry::MetricsRegistry;
use crate::time::{SimDuration, SimTime};
use crate::trace::Tracer;

/// Callback invoked when an event fires.
pub type Callback = Box<dyn FnOnce(&mut Simulation)>;

/// Alias kept for API clarity: callbacks receive the engine itself.
pub type EventContext = Simulation;

/// Outcome of running the event loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The horizon passed with events still pending beyond it.
    HorizonReached,
    /// The safety event budget was exhausted (likely a scheduling loop).
    BudgetExhausted,
}

/// Deterministic discrete-event simulation.
///
/// ```
/// use aimes_sim::{SimDuration, Simulation};
/// use std::{cell::RefCell, rc::Rc};
///
/// let mut sim = Simulation::new(42);
/// let fired = Rc::new(RefCell::new(Vec::new()));
/// for delay in [30.0, 10.0, 20.0] {
///     let fired = fired.clone();
///     sim.schedule_in(SimDuration::from_secs(delay), move |sim| {
///         fired.borrow_mut().push(sim.now().as_secs());
///     });
/// }
/// sim.run_to_completion();
/// assert_eq!(*fired.borrow(), vec![10.0, 20.0, 30.0]);
/// ```
pub struct Simulation {
    now: SimTime,
    queue: EventQueue<Callback>,
    rng: SimRng,
    tracer: Tracer,
    metrics: MetricsRegistry,
    events_processed: u64,
    /// Safety valve against accidental infinite scheduling loops.
    event_budget: u64,
}

impl Simulation {
    /// Create a simulation with the given experiment seed and a recording
    /// tracer.
    pub fn new(seed: u64) -> Self {
        Self::with_tracer(seed, Tracer::new())
    }

    /// Create a simulation with an explicit tracer (e.g. a disabled one for
    /// benchmarks).
    pub fn with_tracer(seed: u64, tracer: Tracer) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: SimRng::new(seed),
            tracer,
            metrics: MetricsRegistry::disabled(),
            events_processed: 0,
            event_budget: u64::MAX,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared tracer handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Shared metrics registry (disabled unless [`Simulation::attach_metrics`]
    /// installed a recording one).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Install a recording metrics registry. Metrics collection is passive
    /// — it schedules no events and draws no randomness — so attaching one
    /// never perturbs the simulated execution.
    pub fn attach_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Fork a named RNG stream from the experiment seed (stable; see
    /// [`SimRng::fork`]).
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.rng.fork(label)
    }

    /// Fork an indexed RNG stream (per entity).
    pub fn fork_rng_indexed(&self, label: &str, index: u64) -> SimRng {
        self.rng.fork_indexed(label, index)
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Limit the total number of events this simulation may process
    /// (safety valve for tests).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Number of live pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `callback` to fire at absolute time `at`. Panics if `at` is
    /// in the past — time travel would silently corrupt causality.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        callback: impl FnOnce(&mut Simulation) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: now={:?}, at={:?}",
            self.now,
            at
        );
        self.queue.schedule(at, Box::new(callback))
    }

    /// Schedule `callback` to fire `delay` from now.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        callback: impl FnOnce(&mut Simulation) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, callback)
    }

    /// Schedule `callback` to fire immediately after currently queued
    /// same-time events.
    pub fn schedule_now(&mut self, callback: impl FnOnce(&mut Simulation) + 'static) -> EventId {
        self.schedule_at(self.now, callback)
    }

    /// Cancel a pending event. Returns true if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Process a single event, if any. Returns false when the queue is
    /// drained.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.time >= self.now, "event queue yielded past event");
                self.now = ev.time;
                self.events_processed += 1;
                (ev.payload)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains or the clock would pass `horizon`.
    /// Events at exactly `horizon` are processed.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.events_processed >= self.event_budget {
                return RunOutcome::BudgetExhausted;
            }
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Run until the queue drains.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        loop {
            if self.events_processed >= self.event_budget {
                return RunOutcome::BudgetExhausted;
            }
            if !self.step() {
                return RunOutcome::Drained;
            }
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn clock_advances_to_event_times() {
        let mut sim = Simulation::new(1);
        let seen = Rc::new(RefCell::new(vec![]));
        for &at in &[5.0, 1.0, 3.0] {
            let seen = seen.clone();
            sim.schedule_at(t(at), move |s| seen.borrow_mut().push(s.now().as_secs()));
        }
        assert_eq!(sim.run_to_completion(), RunOutcome::Drained);
        assert_eq!(*seen.borrow(), vec![1.0, 3.0, 5.0]);
        assert_eq!(sim.now(), t(5.0));
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn events_can_schedule_followups() {
        let mut sim = Simulation::new(1);
        let hits = Rc::new(RefCell::new(0u32));
        let hits2 = hits.clone();
        sim.schedule_in(d(1.0), move |s| {
            *hits2.borrow_mut() += 1;
            let hits3 = hits2.clone();
            s.schedule_in(d(2.0), move |_| {
                *hits3.borrow_mut() += 1;
            });
        });
        sim.run_to_completion();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.now(), t(3.0));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new(1);
        let hits = Rc::new(RefCell::new(0u32));
        for at in [1.0, 2.0, 3.0, 10.0] {
            let hits = hits.clone();
            sim.schedule_at(t(at), move |_| *hits.borrow_mut() += 1);
        }
        assert_eq!(sim.run_until(t(3.0)), RunOutcome::HorizonReached);
        assert_eq!(*hits.borrow(), 3);
        // Clock does not advance past the last processed event.
        assert_eq!(sim.now(), t(3.0));
        assert_eq!(sim.pending_events(), 1);
        assert_eq!(sim.run_until(t(100.0)), RunOutcome::Drained);
        assert_eq!(*hits.borrow(), 4);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new(1);
        sim.schedule_at(t(5.0), |s| {
            s.schedule_at(t(1.0), |_| {});
        });
        sim.run_to_completion();
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut sim = Simulation::new(1);
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        let id = sim.schedule_at(t(1.0), move |_| *h.borrow_mut() += 1);
        assert!(sim.cancel(id));
        sim.run_to_completion();
        assert_eq!(*hits.borrow(), 0);
    }

    #[test]
    fn event_budget_stops_loops() {
        let mut sim = Simulation::new(1);
        fn reschedule(s: &mut Simulation) {
            s.schedule_in(SimDuration::from_secs(1.0), reschedule);
        }
        sim.schedule_now(reschedule);
        sim.set_event_budget(100);
        assert_eq!(sim.run_to_completion(), RunOutcome::BudgetExhausted);
        assert_eq!(sim.events_processed(), 100);
    }

    #[test]
    fn same_time_events_fire_in_schedule_order() {
        let mut sim = Simulation::new(1);
        let order = Rc::new(RefCell::new(vec![]));
        for i in 0..10 {
            let order = order.clone();
            sim.schedule_at(t(1.0), move |_| order.borrow_mut().push(i));
        }
        sim.run_to_completion();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rng_forks_are_deterministic_across_runs() {
        let run = |seed| {
            let sim = Simulation::new(seed);
            let mut r = sim.fork_rng("component");
            (0..10).map(|_| r.uniform01()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn tracer_reachable_from_callbacks() {
        let mut sim = Simulation::new(1);
        sim.schedule_in(d(2.0), |s| {
            let now = s.now();
            s.tracer().record(now, "c", "fired", "");
        });
        sim.run_to_completion();
        assert_eq!(sim.tracer().len(), 1);
        assert_eq!(sim.tracer().snapshot()[0].time, t(2.0));
    }
}
