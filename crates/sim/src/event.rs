//! The pending-event set: a time-ordered priority queue with stable
//! tie-breaking and O(log n) cancellation.
//!
//! Determinism requires that events scheduled for the same instant fire in
//! the order they were scheduled, regardless of heap internals. Each event
//! therefore carries a monotonically increasing sequence number that breaks
//! ties.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event; used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

/// An event in the queue: a firing time plus an arbitrary payload.
#[derive(Debug)]
pub struct ScheduledEvent<T> {
    pub time: SimTime,
    pub id: EventId,
    seq: u64,
    pub payload: T,
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for ScheduledEvent<T> {}

// BinaryHeap is a max-heap; invert the ordering so the earliest event (and
// among equals, the earliest-scheduled) pops first.
impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Time-ordered event queue with lazy cancellation.
///
/// Cancelled events stay in the heap but are skipped on pop; the set of
/// cancelled ids is pruned as they surface. This keeps cancellation O(log n)
/// amortized without heap surgery.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    /// Ids of pending (scheduled, not yet fired or cancelled) events.
    /// Bounded by the heap size; the O(1) source of truth for liveness,
    /// which tombstone compaction would otherwise erase.
    live: HashSet<EventId>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    next_id: u64,
    /// High-water mark of live pending events (queue-pressure diagnostic).
    hwm: usize,
    /// Number of eager heap compactions performed.
    compactions: u64,
    /// Number of successful cancellations.
    cancels: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            next_id: 0,
            hwm: 0,
            compactions: 0,
            cancels: 0,
        }
    }

    /// Schedule `payload` to fire at `time`. Returns a handle usable with
    /// [`EventQueue::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: T) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(id);
        if self.live.len() > self.hwm {
            self.hwm = self.live.len();
        }
        self.heap.push(ScheduledEvent {
            time,
            id,
            seq,
            payload,
        });
        id
    }

    /// Cancel a previously scheduled event. Returns true if the event was
    /// still pending (i.e., not yet fired or cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id) {
            return false;
        }
        self.cancels += 1;
        self.cancelled.insert(id);
        // Eager compaction: once cancelled entries outnumber live ones,
        // rebuild the heap without them. O(n) here, amortized O(1) per
        // cancellation, and it bounds the garbage pop/peek must skip —
        // the invariant cancelled.len() * 2 <= heap.len() holds on exit.
        if self.cancelled.len() * 2 > self.heap.len() {
            self.compact();
        }
        true
    }

    /// Rebuild the heap without cancelled events, draining the cancelled
    /// set of every id that was actually still in the heap.
    fn compact(&mut self) {
        self.compactions += 1;
        let mut events = std::mem::take(&mut self.heap).into_vec();
        events.retain(|ev| !self.cancelled.remove(&ev.id));
        self.heap = BinaryHeap::from(events);
    }

    /// Remove and return the earliest live event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            self.live.remove(&ev.id);
            return Some(ev);
        }
        None
    }

    /// Firing time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Prune cancelled events at the head so the reported time is live.
        while let Some(ev) = self.heap.peek() {
            if self.cancelled.contains(&ev.id) {
                let ev = self.heap.pop().expect("peeked event exists");
                self.cancelled.remove(&ev.id);
                continue;
            }
            return Some(ev.time);
        }
        None
    }

    /// Number of events in the heap, including not-yet-pruned cancellations.
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of not-yet-pruned cancelled events still in the heap
    /// (diagnostics; the compaction bound keeps this ≤ `raw_len` / 2).
    pub fn cancelled_len(&self) -> usize {
        self.cancelled.len()
    }

    /// High-water mark of live pending events over the queue's lifetime.
    pub fn high_water_mark(&self) -> usize {
        self.hwm
    }

    /// Number of eager heap compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Total events ever scheduled (fired, pending, or cancelled).
    pub fn scheduled_total(&self) -> u64 {
        self.next_id
    }

    /// Total successful cancellations over the queue's lifetime.
    pub fn cancelled_total(&self) -> u64 {
        self.cancels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(a), "a fired event is no longer pending");
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_bounds_cancelled_backlog() {
        // Cancel-heavy workload: the lazily-cancelled backlog must never
        // exceed half the heap, at every step — the eager-compaction bound.
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..1_000).map(|i| q.schedule(t(i as f64), i)).collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                assert!(q.cancel(*id));
            }
            assert!(
                q.cancelled_len() * 2 <= q.raw_len(),
                "tombstones {} exceed half of heap {} after {} cancels",
                q.cancelled_len(),
                q.raw_len(),
                i / 2 + 1
            );
        }
        assert_eq!(q.len(), 500);
        // Survivors still pop complete and in order.
        let mut got = Vec::new();
        while let Some(ev) = q.pop() {
            got.push(ev.payload);
        }
        let expect: Vec<usize> = (0..1_000).filter(|i| i % 2 == 1).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn health_counters_track_queue_churn() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..8).map(|i| q.schedule(t(i as f64), i)).collect();
        assert_eq!(q.high_water_mark(), 8);
        assert_eq!(q.scheduled_total(), 8);
        // Pop below the high-water mark: the mark must not recede.
        q.pop();
        q.pop();
        assert_eq!(q.high_water_mark(), 8);
        // Cancel past the eager-compaction threshold and check the tallies.
        let mut cancelled = 0;
        for id in &ids[2..] {
            if q.cancel(*id) {
                cancelled += 1;
            }
        }
        assert_eq!(cancelled, 6);
        assert_eq!(q.cancelled_total(), 6);
        assert!(
            q.compactions() >= 1,
            "cancelling 6 of 6 live events must trigger eager compaction"
        );
        assert!(!q.cancel(ids[0]), "already-fired cancel must not count");
        assert_eq!(q.cancelled_total(), 6);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        q.schedule(t(2.0), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.raw_len(), 2); // lazy: still in the heap
    }

    proptest! {
        /// Events always pop in non-decreasing time order, and equal-time
        /// events pop in scheduling order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u32..100, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &tt) in times.iter().enumerate() {
                q.schedule(t(tt as f64), i);
            }
            let mut last_time = None;
            let mut last_seq_at_time: Option<(f64, usize)> = None;
            while let Some(ev) = q.pop() {
                if let Some(lt) = last_time {
                    prop_assert!(ev.time >= lt);
                }
                if let Some((lt, ls)) = last_seq_at_time {
                    if ev.time.as_secs() == lt {
                        prop_assert!(ev.payload > ls, "FIFO violated for ties");
                    }
                }
                last_seq_at_time = Some((ev.time.as_secs(), ev.payload));
                last_time = Some(ev.time);
            }
        }

        /// Cancelling a random subset removes exactly those events.
        #[test]
        fn prop_cancellation(n in 1usize..100, cancel_mask in proptest::collection::vec(any::<bool>(), 100)) {
            let mut q = EventQueue::new();
            let ids: Vec<_> = (0..n).map(|i| q.schedule(t(i as f64), i)).collect();
            let mut expect: Vec<usize> = vec![];
            for (i, id) in ids.iter().enumerate() {
                if cancel_mask[i] {
                    q.cancel(*id);
                } else {
                    expect.push(i);
                }
            }
            let mut got = vec![];
            while let Some(ev) = q.pop() {
                got.push(ev.payload);
            }
            prop_assert_eq!(got, expect);
        }
    }
}
