//! Chrome trace-event exporter (Perfetto-loadable).
//!
//! Emits the JSON object format `{"traceEvents": [...]}` described by the
//! Trace Event Format spec: `"M"` metadata events name the per-resource
//! process tracks and per-pilot/unit thread lanes, `"X"` complete events
//! render spans (pilot lifetimes, unit `Executing` windows), and `"C"`
//! counter events render the gauge timelines (core utilization, queue
//! depth). Open the file at <https://ui.perfetto.dev> or
//! `chrome://tracing`.
//!
//! Timestamps are simulated microseconds. Output ordering is deterministic:
//! metadata first, then spans sorted by start time, then counters sorted by
//! metric name and time.

use crate::time::SimTime;
use std::collections::BTreeMap;
use std::io;

/// One horizontal bar on the timeline: a state interval of a pilot or unit,
/// placed on a `track` (Chrome "process", here a resource) and a `lane`
/// (Chrome "thread", here one pilot or unit).
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Process track, e.g. the resource name `stampede`.
    pub track: String,
    /// Thread lane within the track, e.g. `pilot.0` or `unit.00042`.
    pub lane: String,
    /// Span name shown on the bar, e.g. `pilot lifetime`, `Executing`.
    pub name: String,
    /// Category (Chrome `cat` field), e.g. `pilot`, `unit`.
    pub category: String,
    pub start: SimTime,
    pub end: SimTime,
    /// Extra key/value args shown in the span's detail pane.
    pub args: Vec<(String, String)>,
}

fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape(s, &mut out);
    out.push('"');
    out
}

fn micros(t: SimTime) -> u64 {
    (t.as_secs().max(0.0) * 1e6).round() as u64
}

/// Stream spans and gauge timelines as a Chrome trace-event JSON object.
pub fn write_chrome_trace<W: io::Write>(
    out: &mut W,
    spans: &[Span],
    gauges: &BTreeMap<String, Vec<(SimTime, f64)>>,
) -> io::Result<()> {
    // Deterministic track/lane numbering: sorted track names get pids
    // 1..=N; lanes get tids 1..=M within their track in sorted order.
    let mut tracks: BTreeMap<&str, BTreeMap<&str, u64>> = BTreeMap::new();
    for span in spans {
        tracks.entry(&span.track).or_default().insert(&span.lane, 0);
    }
    let mut pids: BTreeMap<&str, u64> = BTreeMap::new();
    for (i, (track, lanes)) in tracks.iter_mut().enumerate() {
        pids.insert(track, i as u64 + 1);
        for (t, (_, tid)) in lanes.iter_mut().enumerate() {
            *tid = t as u64 + 1;
        }
    }
    // Counters live on their own process track after the resources.
    let counter_pid = tracks.len() as u64 + 1;

    out.write_all(b"{\"traceEvents\":[")?;
    let mut first = true;
    let mut emit = |out: &mut W, line: &str| -> io::Result<()> {
        if !first {
            out.write_all(b",")?;
        }
        first = false;
        out.write_all(b"\n")?;
        out.write_all(line.as_bytes())
    };

    for (track, lanes) in &tracks {
        let pid = pids[track];
        emit(
            out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                quoted(track)
            ),
        )?;
        for (lane, tid) in lanes {
            emit(
                out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    quoted(lane)
                ),
            )?;
        }
    }
    if !gauges.is_empty() {
        emit(
            out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{counter_pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"metrics\"}}}}"
            ),
        )?;
    }

    let mut ordered: Vec<&Span> = spans.iter().collect();
    ordered.sort_by(|a, b| {
        (a.start, &a.track, &a.lane, a.end).cmp(&(b.start, &b.track, &b.lane, b.end))
    });
    for span in ordered {
        let pid = pids[span.track.as_str()];
        let tid = tracks[span.track.as_str()][span.lane.as_str()];
        let ts = micros(span.start);
        let dur = micros(span.end).saturating_sub(ts);
        let mut args = String::new();
        for (i, (k, v)) in span.args.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            args.push_str(&quoted(k));
            args.push(':');
            args.push_str(&quoted(v));
        }
        emit(
            out,
            &format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                 \"name\":{},\"cat\":{},\"args\":{{{args}}}}}",
                quoted(&span.name),
                quoted(&span.category)
            ),
        )?;
    }

    for (metric, samples) in gauges {
        for (time, value) in samples {
            let v = if value.is_finite() { *value } else { 0.0 };
            emit(
                out,
                &format!(
                    "{{\"ph\":\"C\",\"pid\":{counter_pid},\"tid\":0,\"ts\":{},\
                     \"name\":{},\"args\":{{\"value\":{v}}}}}",
                    micros(*time),
                    quoted(metric)
                ),
            )?;
        }
    }

    out.write_all(b"\n],\"displayTimeUnit\":\"ms\"}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn span(track: &str, lane: &str, name: &str, start: f64, end: f64) -> Span {
        Span {
            track: track.into(),
            lane: lane.into(),
            name: name.into(),
            category: "pilot".into(),
            start: t(start),
            end: t(end),
            args: vec![("cores".into(), "16".into())],
        }
    }

    fn render(spans: &[Span], gauges: &BTreeMap<String, Vec<(SimTime, f64)>>) -> String {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, spans, gauges).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn emits_metadata_spans_and_counters() {
        let spans = vec![
            span("stampede", "pilot.0", "pilot lifetime", 10.0, 50.0),
            span("gordon", "pilot.1", "pilot lifetime", 5.0, 40.0),
        ];
        let mut gauges = BTreeMap::new();
        gauges.insert(
            "cluster.stampede.queue_depth".to_string(),
            vec![(t(0.0), 1.0), (t(10.0), 0.0)],
        );
        let text = render(&spans, &gauges);
        assert!(text.contains("\"process_name\""));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"displayTimeUnit\":\"ms\""));
        // gordon sorts before stampede → pid 1; the counter track follows
        // the two resource tracks.
        assert!(text.contains(
            "\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"gordon\"}"
        ));
        assert!(text.contains(
            "\"pid\":3,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"metrics\"}"
        ));
        // 40 s span → 40e6 µs duration.
        assert!(text.contains("\"ts\":5000000,\"dur\":35000000"));
    }

    #[test]
    fn output_is_valid_json_and_deterministic() {
        let spans = vec![
            span("b", "pilot.1", "x", 2.0, 3.0),
            span("a", "pilot.0", "x", 1.0, 4.0),
        ];
        let gauges = BTreeMap::new();
        let one = render(&spans, &gauges);
        let two = render(&spans, &gauges);
        assert_eq!(one, two);
        let value: serde::Value = serde_json::from_str(&one).unwrap();
        let events = value.get("traceEvents").unwrap().as_array().unwrap();
        // 2 process_name + 2 thread_name + 2 spans.
        assert_eq!(events.len(), 6);
        // Spans are sorted by start time.
        let ts: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .map(|e| e.get("ts").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ts, vec![1_000_000, 2_000_000]);
    }

    #[test]
    fn escapes_names() {
        let spans = vec![span("a\"b", "pilot.0", "x", 0.0, 1.0)];
        let text = render(&spans, &BTreeMap::new());
        assert!(text.contains("a\\\"b"));
        assert!(serde_json::from_str::<serde::Value>(&text).is_ok());
    }
}
