//! Typed telemetry layer: metrics registry, span timelines, exporters.
//!
//! The trace module records *what happened*; this module records *how
//! much, how long, and how busy*. Three primitives, all against simulated
//! time:
//!
//! * **Counters** — monotone event totals (`saga.alpha.retries_submit`).
//! * **Gauges** — step-function timelines (`cluster.alpha.busy_cores`).
//! * **Log-scale histograms** — dwell-time distributions
//!   (`unit.dwell.executing`) with bucket-interpolated p50/p95/p99.
//!
//! Metric names follow `layer.component.metric`. Recording is strictly
//! passive: no events are scheduled and no RNG streams are drawn, so an
//! instrumented run produces bit-identical journals and traces to an
//! uninstrumented one. A disabled registry costs one branch per call —
//! the same contract as [`crate::trace::Tracer::record_with`].
//!
//! A [`Telemetry`] handle bundles the registry with a span list assembled
//! after the run (pilot lifetimes, unit `Executing` windows) and exposes
//! the exporters: a serializable [`MetricsSummary`], a CSV timeline dump,
//! and a Perfetto-loadable Chrome trace (see [`chrome`]).

pub mod chrome;
pub mod metrics;

pub use chrome::{write_chrome_trace, Span};
pub use metrics::{GaugeSummary, HistogramSummary, LogHistogram, MetricsRegistry, MetricsSummary};

use parking_lot::Mutex;
use std::io;
use std::sync::Arc;

/// Everything one instrumented run collects: the live metrics registry
/// plus the spans assembled at the end of the run. Cheaply cloneable;
/// clones share state.
#[derive(Clone, Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    spans: Arc<Mutex<Vec<Span>>>,
}

impl Telemetry {
    /// A recording telemetry handle.
    pub fn new() -> Self {
        Telemetry {
            registry: MetricsRegistry::new(),
            spans: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The metrics registry to attach to a `Simulation`.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Add one span to the timeline.
    pub fn add_span(&self, span: Span) {
        self.spans.lock().push(span);
    }

    /// Snapshot of all spans added so far.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().clone()
    }

    /// Condensed metrics (counters, gauge summaries, histogram quantiles).
    pub fn summary(&self) -> MetricsSummary {
        self.registry.summary()
    }

    /// Write the Perfetto-loadable Chrome trace: spans on per-resource
    /// tracks plus gauge timelines as counter tracks.
    pub fn write_chrome_trace<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        chrome::write_chrome_trace(out, &self.spans.lock(), &self.registry.gauge_series())
    }

    /// Write the gauge timelines as CSV (`metric,time_secs,value`).
    pub fn write_metrics_csv<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        self.registry.write_csv(out)
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn telemetry_bundles_registry_and_spans() {
        let tel = Telemetry::new();
        assert!(tel.registry().is_enabled());
        tel.registry().inc(|| "middleware.run.replans".into());
        tel.registry().gauge(SimTime::from_secs(1.0), 4.0, || {
            "cluster.a.busy_cores".into()
        });
        tel.add_span(Span {
            track: "a".into(),
            lane: "pilot.0".into(),
            name: "pilot lifetime".into(),
            category: "pilot".into(),
            start: SimTime::from_secs(0.0),
            end: SimTime::from_secs(10.0),
            args: vec![],
        });
        assert_eq!(tel.spans().len(), 1);
        let summary = tel.summary();
        assert_eq!(summary.counters["middleware.run.replans"], 1);

        let mut chrome = Vec::new();
        tel.write_chrome_trace(&mut chrome).unwrap();
        assert!(
            serde_json::from_str::<serde::Value>(std::str::from_utf8(&chrome).unwrap()).is_ok()
        );

        let mut csv = Vec::new();
        tel.write_metrics_csv(&mut csv).unwrap();
        assert!(csv.starts_with(b"metric,time_secs,value"));
    }

    #[test]
    fn clones_share_spans() {
        let tel = Telemetry::new();
        let tel2 = tel.clone();
        tel2.add_span(Span {
            track: "a".into(),
            lane: "l".into(),
            name: "n".into(),
            category: "c".into(),
            start: SimTime::from_secs(0.0),
            end: SimTime::from_secs(1.0),
            args: vec![],
        });
        assert_eq!(tel.spans().len(), 1);
    }
}
