//! Metrics registry: counters, gauges, and log-scale histograms recorded
//! against *simulated* time.
//!
//! The registry mirrors the [`crate::trace::Tracer`] cost model: a disabled
//! registry is one branch per call, and every recording method takes a
//! name-building closure so hot paths never pay for `format!` when metrics
//! are off. Metric names follow the `layer.component.metric` scheme
//! (e.g. `cluster.stampede.busy_cores`, `unit.dwell.executing`).

use crate::time::SimTime;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

/// Lower bound of the first histogram bucket, in the histogram's unit
/// (seconds for the dwell-time histograms): everything at or below it lands
/// in bucket 0.
const HISTOGRAM_MIN: f64 = 1e-3;
/// Power-of-two buckets above [`HISTOGRAM_MIN`]; bucket `i >= 1` covers
/// `(MIN * 2^(i-1), MIN * 2^i]`. 64 doublings of 1 ms reach ~584 years,
/// far past any simulated duration.
const HISTOGRAM_BUCKETS: usize = 64;

/// Log-scale histogram: power-of-two buckets, exact count/sum/min/max.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: vec![0; HISTOGRAM_BUCKETS + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl LogHistogram {
    fn bucket(value: f64) -> usize {
        if value <= HISTOGRAM_MIN {
            return 0;
        }
        let idx = (value / HISTOGRAM_MIN).log2().ceil() as usize;
        idx.min(HISTOGRAM_BUCKETS)
    }

    /// Bucket value range: bucket 0 is `[0, MIN]`, bucket `i >= 1` is
    /// `(MIN * 2^(i-1), MIN * 2^i]`.
    fn bucket_bounds(idx: usize) -> (f64, f64) {
        if idx == 0 {
            (0.0, HISTOGRAM_MIN)
        } else {
            (
                HISTOGRAM_MIN * 2f64.powi(idx as i32 - 1),
                HISTOGRAM_MIN * 2f64.powi(idx as i32),
            )
        }
    }

    /// Record one observation. Non-finite values are dropped.
    pub fn observe(&mut self, value: f64) {
        self.observe_n(value, 1);
    }

    /// Record `n` observations of `value` at once — the bulk form used
    /// when re-bucketing pre-aggregated data (e.g. the profiler's tick
    /// buckets). Non-finite values are dropped.
    pub fn observe_n(&mut self, value: f64, n: u64) {
        if !value.is_finite() || n == 0 {
            return;
        }
        self.counts[Self::bucket(value)] += n;
        self.count += n;
        self.sum += value * n as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Fold another histogram into this one: bucket counts add, exact
    /// min/max/sum/count combine. Both sides must use the same unit.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Quantile estimate by linear interpolation inside the target bucket,
    /// clamped to the observed `[min, max]`. `q` is in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                let (lo, hi) = Self::bucket_bounds(idx);
                let frac = if c == 0 {
                    0.0
                } else {
                    ((rank - cum as f64) / c as f64).clamp(0.0, 1.0)
                };
                let est = lo + frac * (hi - lo);
                return est.clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<(SimTime, f64)>>,
    histograms: BTreeMap<String, LogHistogram>,
}

/// Cheaply cloneable handle to a shared metrics store.
///
/// `MetricsRegistry::default()` is disabled — a `Simulation` always carries
/// a registry, and runs that do not ask for telemetry pay one branch per
/// recording call, exactly like a disabled [`crate::trace::Tracer`].
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<MetricsInner>>,
    enabled: bool,
}

impl MetricsRegistry {
    /// A recording registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(Mutex::new(MetricsInner::default())),
            enabled: true,
        }
    }

    /// A registry that drops everything.
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Increment a counter by 1. The name closure only runs when enabled.
    #[inline]
    pub fn inc(&self, name: impl FnOnce() -> String) {
        self.inc_by(1, name);
    }

    /// Increment a counter by `delta`.
    #[inline]
    pub fn inc_by(&self, delta: u64, name: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        *self.inner.lock().counters.entry(name()).or_insert(0) += delta;
    }

    /// Append one sample to a gauge timeline (a step function over
    /// simulated time).
    #[inline]
    pub fn gauge(&self, time: SimTime, value: f64, name: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        self.inner
            .lock()
            .gauges
            .entry(name())
            .or_default()
            .push((time, value));
    }

    /// Record one observation into a log-scale histogram.
    #[inline]
    pub fn observe(&self, value: f64, name: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        self.inner
            .lock()
            .histograms
            .entry(name())
            .or_default()
            .observe(value);
    }

    /// Snapshot of every gauge timeline (exporters render these as Chrome
    /// counter tracks and CSV rows).
    pub fn gauge_series(&self) -> BTreeMap<String, Vec<(SimTime, f64)>> {
        self.inner.lock().gauges.clone()
    }

    /// Condense everything recorded so far into a serializable summary.
    pub fn summary(&self) -> MetricsSummary {
        let inner = self.inner.lock();
        MetricsSummary {
            counters: inner.counters.clone(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, samples)| (name.clone(), GaugeSummary::of(samples)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistogramSummary {
                            count: h.count(),
                            mean: h.mean(),
                            min: h.min(),
                            max: h.max(),
                            p50: h.quantile(0.50),
                            p95: h.quantile(0.95),
                            p99: h.quantile(0.99),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Dump every gauge timeline as CSV: `metric,time_secs,value`.
    /// Metric names embed resource names, which are user-controlled via
    /// config, so the name field is RFC-4180 quoted when it contains a
    /// comma, quote, or newline.
    pub fn write_csv<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        writeln!(out, "metric,time_secs,value")?;
        for (name, samples) in self.inner.lock().gauges.iter() {
            let name = csv_field(name);
            for (time, value) in samples {
                writeln!(out, "{name},{},{value}", time.as_secs())?;
            }
        }
        Ok(())
    }
}

/// RFC-4180-quote one CSV field: fields containing a comma, double quote,
/// or line break are wrapped in double quotes, with embedded quotes
/// doubled. Anything else passes through unchanged.
pub fn csv_field(raw: &str) -> String {
    if raw.contains(',') || raw.contains('"') || raw.contains('\n') || raw.contains('\r') {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_string()
    }
}

/// Parse one RFC-4180 CSV record into its fields — the inverse of
/// [`csv_field`] joined with commas. Used by the round-trip tests and by
/// downstream consumers of [`MetricsRegistry::write_csv`] output.
pub fn parse_csv_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' && field.is_empty() {
            in_quotes = true;
        } else if c == ',' {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    fields.push(field);
    fields
}

/// Condensed view of one gauge timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSummary {
    pub samples: u64,
    pub last: f64,
    pub min: f64,
    pub max: f64,
    /// Mean of the step function weighted by how long each value held
    /// (equal to `last` for a single-sample timeline).
    pub time_weighted_mean: f64,
}

impl GaugeSummary {
    fn of(samples: &[(SimTime, f64)]) -> GaugeSummary {
        let n = samples.len() as u64;
        let last = samples.last().map(|(_, v)| *v).unwrap_or(0.0);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, v) in samples {
            min = min.min(*v);
            max = max.max(*v);
        }
        if samples.is_empty() {
            return GaugeSummary {
                samples: 0,
                last: 0.0,
                min: 0.0,
                max: 0.0,
                time_weighted_mean: 0.0,
            };
        }
        let span = samples
            .last()
            .unwrap()
            .0
            .saturating_since(samples.first().unwrap().0);
        let time_weighted_mean = if span.as_secs() <= 0.0 {
            last
        } else {
            let mut area = 0.0;
            for pair in samples.windows(2) {
                let held = pair[1].0.saturating_since(pair[0].0);
                area += pair[0].1 * held.as_secs();
            }
            area / span.as_secs()
        };
        GaugeSummary {
            samples: n,
            last,
            min,
            max,
            time_weighted_mean,
        }
    }
}

/// Condensed view of one log-scale histogram.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

/// Everything the registry recorded, in serializable form. Embedded into
/// `RunResult` and rendered by the report layer.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, GaugeSummary>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSummary {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_registry_never_builds_names() {
        let m = MetricsRegistry::disabled();
        m.inc(|| panic!("name closure must not run when disabled"));
        m.gauge(t(1.0), 2.0, || panic!("disabled"));
        m.observe(3.0, || panic!("disabled"));
        assert!(m.summary().is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.inc(|| "a.b.c".into());
        m.inc_by(4, || "a.b.c".into());
        m.inc(|| "x.y.z".into());
        let s = m.summary();
        assert_eq!(s.counters["a.b.c"], 5);
        assert_eq!(s.counters["x.y.z"], 1);
    }

    #[test]
    fn gauge_summary_is_time_weighted() {
        let m = MetricsRegistry::new();
        // Value 10 held for 1s, then 0 held for 3s → mean (10*1 + 0*3)/4.
        m.gauge(t(0.0), 10.0, || "g".into());
        m.gauge(t(1.0), 0.0, || "g".into());
        m.gauge(t(4.0), 0.0, || "g".into());
        let g = &m.summary().gauges["g"];
        assert_eq!(g.samples, 3);
        assert_eq!(g.last, 0.0);
        assert_eq!(g.max, 10.0);
        assert!((g.time_weighted_mean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_bracket_known_distribution() {
        let mut h = LogHistogram::default();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Log-bucket interpolation is coarse: require the right octave, not
        // the exact order statistic.
        let p50 = h.quantile(0.50);
        assert!((250.0..=1000.0).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((500.0..=1000.0).contains(&p99), "p99={p99}");
        assert!(h.quantile(0.0) >= 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn histogram_handles_tiny_and_huge_values() {
        let mut h = LogHistogram::default();
        h.observe(0.0);
        h.observe(1e-9);
        h.observe(1e30);
        h.observe(f64::NAN); // dropped
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1e30);
    }

    #[test]
    fn csv_dump_has_header_and_rows() {
        let m = MetricsRegistry::new();
        m.gauge(t(0.0), 1.0, || "cluster.a.queue_depth".into());
        m.gauge(t(2.5), 3.0, || "cluster.a.queue_depth".into());
        let mut buf = Vec::new();
        m.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "metric,time_secs,value");
        assert_eq!(lines[1], "cluster.a.queue_depth,0,1");
        assert_eq!(lines[2], "cluster.a.queue_depth,2.5,3");
    }

    #[test]
    fn csv_quotes_hostile_metric_names_and_round_trips() {
        // Resource names come from user config, so metric names can carry
        // CSV metacharacters; the dump must stay machine-parsable.
        let hostile = [
            "cluster.node,rack=1.busy_cores",
            "cluster.\"quoted\".busy_cores",
            "plain.name.busy_cores",
        ];
        let m = MetricsRegistry::new();
        for name in hostile {
            m.gauge(t(1.0), 7.0, || name.into());
        }
        let mut buf = Vec::new();
        m.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut seen = Vec::new();
        for line in text.lines().skip(1) {
            let fields = parse_csv_record(line);
            assert_eq!(fields.len(), 3, "line did not parse as 3 fields: {line}");
            assert_eq!(fields[1], "1");
            assert_eq!(fields[2], "7");
            seen.push(fields[0].clone());
        }
        let mut expect: Vec<String> = hostile.iter().map(|s| s.to_string()).collect();
        expect.sort();
        seen.sort();
        assert_eq!(seen, expect, "names must round-trip exactly");
        // The comma-bearing raw name must not appear unquoted.
        assert!(!text.contains("\ncluster.node,rack=1.busy_cores,"));
    }

    #[test]
    fn csv_field_quotes_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
        for raw in ["plain", "a,b", "say \"hi\""] {
            assert_eq!(parse_csv_record(&csv_field(raw)), vec![raw.to_string()]);
        }
    }

    #[test]
    fn clones_share_store() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m2.inc(|| "shared".into());
        assert_eq!(m.summary().counters["shared"], 1);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let m = MetricsRegistry::new();
        m.inc(|| "c".into());
        m.gauge(t(1.0), 2.0, || "g".into());
        m.observe(0.5, || "h".into());
        let s = m.summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
